"""``repro.rocc`` — the Resource OCCupancy model of the Paradyn IS.

This package is the paper's primary contribution: a discrete-event
implementation of the ROCC queueing model (Figures 2 and 5) covering
NOW, SMP, and MPP architectures, the CF and BF data-forwarding
policies, direct and binary-tree forwarding topologies, finite
application→daemon pipes, and global synchronization barriers.

Entry point::

    from repro.rocc import SimulationConfig, simulate

    results = simulate(SimulationConfig(nodes=8, batch_size=32))
    print(results.pd_cpu_seconds_per_node, results.monitoring_latency_total_ms)
"""

from .adaptive import (
    AdaptiveSampler,
    OverheadRegulator,
    RegulatorConfig,
    RegulatorDecision,
)
from .aggregate import AggregatedParadynISSystem, simulate_aggregated
from .application import ApplicationProcess
from .config import (
    Architecture,
    DaemonCostModel,
    ForwardingTopology,
    MainCostModel,
    NetworkMode,
    SimulationConfig,
)
from .cpu import CPUJob, ProcessorSharingCPU, RoundRobinCPU
from .daemon import ParadynDaemon
from .forwarding import (
    children_indices,
    expected_hops,
    is_leaf,
    live_ancestor,
    parent_index,
    tree_depth,
)
from .main_process import MainParadynProcess
from .metrics import Metrics, SimulationResults
from .network import BaseNetwork, ContentionFreeNetwork, FIFONetwork
from .node import CyclicBarrier, NodeContext
from .other import OtherProcesses, PVMDaemon
from .perturbation import PerturbationReport, measure_perturbation
from .pipes import SamplePipe
from .requests import Batch, Sample
from .system import ParadynISSystem, simulate
from .tuning import BatchRecommendation, BatchSweepPoint, recommend_batch_size

__all__ = [
    "Architecture",
    "ForwardingTopology",
    "NetworkMode",
    "SimulationConfig",
    "DaemonCostModel",
    "MainCostModel",
    "simulate",
    "simulate_aggregated",
    "ParadynISSystem",
    "AggregatedParadynISSystem",
    "SimulationResults",
    "Metrics",
    "RoundRobinCPU",
    "ProcessorSharingCPU",
    "CPUJob",
    "FIFONetwork",
    "ContentionFreeNetwork",
    "BaseNetwork",
    "SamplePipe",
    "Sample",
    "Batch",
    "ApplicationProcess",
    "ParadynDaemon",
    "MainParadynProcess",
    "PVMDaemon",
    "OtherProcesses",
    "NodeContext",
    "CyclicBarrier",
    "RegulatorConfig",
    "RegulatorDecision",
    "OverheadRegulator",
    "AdaptiveSampler",
    "PerturbationReport",
    "measure_perturbation",
    "recommend_batch_size",
    "BatchRecommendation",
    "BatchSweepPoint",
    "parent_index",
    "children_indices",
    "is_leaf",
    "tree_depth",
    "expected_hops",
    "live_ancestor",
]
