"""Aggregated large-n mode: one detailed node + superposed phantom load.

The paper's own modeling assumption (§2.1) is that "the subnetworks at
every node ... show identical behavior" during SPMD execution.  This
module exploits that symmetry so 64–256-node MPP experiments stay
laptop-scale: **one node is simulated in full detail** (CPU round
robin, pipes, daemon, background load) while the remaining ``n - 1``
nodes are replaced by *phantom traffic*:

* a superposed Poisson stream of forwarded batches into the main
  Paradyn process at the per-node forwarding rate ``apps / (T · b)``
  times ``n - 1``, each paying the usual network occupancy; and
* (tree forwarding) a stream of en-route child batches into the
  detailed daemon's inbox at the system-average merge-arrival rate
  ``λ · (n - 1)/n`` (§3.3's accounting), whose relays are sunk rather
  than re-delivered so main-process load is not double counted.

Per-node metrics come from the detailed node; main-process and
latency metrics see the full phantom load.  The agreement between this
mode and the full simulation at small n is checked by
``benchmarks/test_bench_ablation.py`` and ``tests/rocc/test_aggregate.py``.
"""

from __future__ import annotations

from ..variates.distributions import Exponential
from ..workload.records import ProcessType
from .config import ForwardingTopology, SimulationConfig
from .metrics import SimulationResults
from .requests import Batch, Sample
from .system import ParadynISSystem

__all__ = ["AggregatedParadynISSystem", "simulate_aggregated"]


class AggregatedParadynISSystem(ParadynISSystem):
    """ROCC system with one detailed node and ``n - 1`` phantom nodes."""

    def __init__(self, config: SimulationConfig):
        if config.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if config.faults is not None and len(config.faults) > 0:
            raise ValueError(
                "fault injection requires the full simulation: the "
                "aggregated model has no per-node daemons/pipes to fail "
                "(set faults=None or use repro.rocc.system.simulate)"
            )
        if config.traffic is not None:
            raise ValueError(
                "open-workload traffic requires the full simulation: the "
                "aggregated model's phantom nodes cannot serve external "
                "requests (set traffic=None or use repro.rocc.system.simulate)"
            )
        if (
            config.effective_network_mode.value == "shared"
            and config.nodes > 1
        ):
            import warnings

            warnings.warn(
                "aggregated mode models phantom nodes' IS traffic but not "
                "their application traffic; on a *shared* interconnect "
                "(NOW Ethernet / SMP bus) contention is therefore "
                "understated — use the full simulation there",
                RuntimeWarning,
                stacklevel=3,
            )
        self.true_nodes = config.nodes
        # Build the single detailed node.  Tree forwarding is flagged on
        # the original config; the detailed daemon acts as an *average*
        # non-leaf node.
        self._tree = config.forwarding is ForwardingTopology.TREE
        detail = config.with_(nodes=1, forwarding=ForwardingTopology.DIRECT)
        super().__init__(detail)
        self.config_true = config

        if self.true_nodes > 1 and config.instrumented:
            apps = config.app_processes_per_node
            #: Per-node batch-forwarding rate, batches/µs.
            self._lambda_batches = apps / (
                config.sampling_period * config.batch_size
            )
            self.env.process(self._phantom_mains(), name="phantom-forwarders")
            if self._tree:
                daemon = self.daemons[0]
                daemon.enable_tree_inbox()
                daemon.merge_deliver = lambda batch: None  # sink relays
                self.env.process(self._phantom_children(), name="phantom-children")

    # ------------------------------------------------------------------
    def _make_phantom_batch(self, node: int) -> Batch:
        """A batch as an average phantom node would have produced it."""
        cfg = self.config_true
        env = self.env
        b = cfg.batch_size
        apps = cfg.app_processes_per_node
        period = cfg.sampling_period
        samples = [
            Sample(
                created_at=max(0.0, env.now - (b - 1 - j) * period / apps),
                node=node,
                pid=0,
            )
            for j in range(b)
        ]
        self.metrics.samples_generated += b
        batch = Batch(samples=samples, origin=node)
        batch.sent_at = samples[0].created_at if b == 1 else env.now
        return batch

    def _phantom_mains(self):
        """Forwarded batches from the n-1 phantom nodes to the main process."""
        cfg = self.config_true
        env = self.env
        rate = self._lambda_batches * (self.true_nodes - 1)
        inter = self.streams.variates("phantom/main_inter", Exponential(1.0 / rate))
        net = self.streams.variates("phantom/main_net", cfg.workload.pd_network)
        while True:
            yield env.hold(inter())
            batch = self._make_phantom_batch(node=1)
            # Fire-and-forget: phantom nodes transfer concurrently.
            self.network.transfer(
                net(),
                ProcessType.PARADYN_DAEMON,
                payload=batch,
                deliver=self.main.deliver,
            )

    def _phantom_children(self):
        """En-route child batches merged by the detailed (average) daemon."""
        cfg = self.config_true
        env = self.env
        n = self.true_nodes
        # System-average merge arrivals per node: λ (n-1)/n (see §3.3).
        rate = self._lambda_batches * (n - 1) / n
        inter = self.streams.variates("phantom/child_inter", Exponential(1.0 / rate))
        daemon = self.daemons[0]
        while True:
            yield env.hold(inter())
            batch = self._make_phantom_batch(node=2)
            daemon.deliver(batch)

    # ------------------------------------------------------------------
    def _results(self) -> SimulationResults:
        res = super()._results()
        n = self.true_nodes
        duration = res.duration
        # Per-node values already describe the single detailed node; the
        # report should present them as the per-node average of the
        # n-node system (symmetry assumption).
        res.nodes = n
        res.config_summary = (
            res.config_summary.replace("n=1", f"n={n}") + " [aggregated]"
        )
        res.main_cpu_utilization = res.main_cpu_time / duration
        # Throughput per daemon: detailed daemon only (phantoms bypass
        # daemon accounting); received throughput covers the full load.
        return res


def simulate_aggregated(config: SimulationConfig) -> SimulationResults:
    """Run the aggregated large-n approximation of *config*."""
    return AggregatedParadynISSystem(config).run()
