"""Background load: the PVM daemon and other user/system processes.

Both are *open* workloads in the ROCC model (Figure 5): their resource
occupancy requests arrive on independent exponential clocks (Table 2)
regardless of what the instrumented application is doing.  They matter
because the direct-overhead metrics are defined against a realistically
loaded node, and the validation run (Table 3) reproduces the measured
Pd CPU time only when this background contention is present.
"""

from __future__ import annotations

from ..workload.records import ProcessType
from .node import NodeContext

__all__ = ["PVMDaemon", "OtherProcesses"]


class PVMDaemon:
    """PVM message-passing daemon: CPU + network transaction per arrival."""

    def __init__(self, ctx: NodeContext):
        self.ctx = ctx
        wl = ctx.config.workload
        prefix = f"node{ctx.node_id}/pvmd"
        self._inter = ctx.streams.variates(f"{prefix}/inter", wl.pvmd_interarrival)
        self._cpu = ctx.streams.variates(f"{prefix}/cpu", wl.pvmd_cpu)
        self._net = ctx.streams.variates(f"{prefix}/network", wl.pvmd_network)
        ctx.env.process(self._run(), name=prefix)

    def _run(self):
        env = self.ctx.env
        hold = env.hold
        cpu = self.ctx.cpu
        network = self.ctx.network
        while True:
            yield hold(self._inter())
            yield cpu.execute(self._cpu(), ProcessType.PVM_DAEMON)
            yield network.transfer(self._net(), ProcessType.PVM_DAEMON)


class OtherProcesses:
    """Aggregate of other user/system processes on a node.

    CPU and network requests arrive on separate clocks (Table 2 lists
    distinct inter-arrival distributions for the two resources).
    """

    def __init__(self, ctx: NodeContext):
        self.ctx = ctx
        wl = ctx.config.workload
        prefix = f"node{ctx.node_id}/other"
        self._cpu_inter = ctx.streams.variates(
            f"{prefix}/cpu_inter", wl.other_cpu_interarrival
        )
        self._cpu = ctx.streams.variates(f"{prefix}/cpu", wl.other_cpu)
        self._net_inter = ctx.streams.variates(
            f"{prefix}/net_inter", wl.other_network_interarrival
        )
        self._net = ctx.streams.variates(f"{prefix}/network", wl.other_network)
        ctx.env.process(self._cpu_loop(), name=f"{prefix}/cpu")
        ctx.env.process(self._net_loop(), name=f"{prefix}/network")

    def _cpu_loop(self):
        env = self.ctx.env
        hold = env.hold
        cpu = self.ctx.cpu
        while True:
            yield hold(self._cpu_inter())
            yield cpu.execute(self._cpu(), ProcessType.OTHER)

    def _net_loop(self):
        env = self.ctx.env
        hold = env.hold
        network = self.ctx.network
        while True:
            yield hold(self._net_inter())
            yield network.transfer(self._net(), ProcessType.OTHER)
