"""Adaptive instrumentation-system management (the paper's §6 outlook).

The paper closes by arguing that "with an appropriate model for the IS,
users can specify tolerable limits for IS overheads ... The IS can use
the model to adapt its behavior in order to regulate overheads", citing
Paradyn's dynamic cost model (Hollingsworth & Miller, EuroPar '96) as
initial work.  This module implements that loop on top of the ROCC
simulator:

:class:`OverheadRegulator` periodically observes the daemon's direct
CPU overhead over a sliding window and adjusts the **sampling period**
(and optionally the **batch size**) to keep the overhead near a
user-specified budget — multiplicative increase of the period when over
budget, gentle decrease when comfortably under, within configured
bounds.  The regulated entity is the per-node Paradyn daemon; the
controller itself costs CPU (it is instrumentation too), which is
charged to the daemon's account.

This is an *extension beyond the paper's experiments* (flagged as such
in DESIGN.md §5); the `adaptive` example and the ablation benchmark
demonstrate it holding a 1 % budget across workload changes that would
drive the static CF configuration to 3–5×.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..workload.records import ProcessType
from .node import NodeContext

__all__ = ["RegulatorConfig", "RegulatorDecision", "OverheadRegulator"]


@dataclass
class RegulatorConfig:
    """Policy of the overhead regulator.

    All times in µs; ``budget`` is a CPU-utilization fraction.
    """

    #: Target ceiling for the daemon's CPU utilization on its node.
    budget: float = 0.01
    #: Controller wake-up interval.
    control_interval: float = 250_000.0
    #: Hysteresis: only act outside [low_water, 1.0] x budget.
    low_water: float = 0.5
    #: Multiplicative factor applied to the sampling period when over
    #: budget (period grows -> fewer samples).
    backoff: float = 1.5
    #: Factor applied when far enough under budget (period shrinks).
    recovery: float = 0.8
    #: Sampling-period bounds.
    min_period: float = 1_000.0
    max_period: float = 1_000_000.0
    #: Whether the regulator may also grow the batch size (towards
    #: ``max_batch``) before slowing sampling down.
    adapt_batch: bool = False
    max_batch: int = 128
    #: CPU cost of one control decision, µs (charged to the daemon).
    decision_cost: float = 50.0

    def __post_init__(self) -> None:
        if not 0 < self.budget < 1:
            raise ValueError("budget must be a fraction in (0, 1)")
        if self.control_interval <= 0:
            raise ValueError("control_interval must be positive")
        if not 0 <= self.low_water < 1:
            raise ValueError("low_water must lie in [0, 1)")
        if self.backoff <= 1.0:
            raise ValueError("backoff must exceed 1")
        if not 0 < self.recovery < 1.0:
            raise ValueError("recovery must lie in (0, 1)")
        if self.min_period <= 0 or self.max_period < self.min_period:
            raise ValueError("bad period bounds")


@dataclass(frozen=True)
class RegulatorDecision:
    """One control action, for post-run inspection."""

    time: float
    observed_utilization: float
    old_period: float
    new_period: float
    old_batch: int
    new_batch: int

    @property
    def acted(self) -> bool:
        return self.new_period != self.old_period or self.new_batch != self.old_batch


class OverheadRegulator:
    """Keeps a node's daemon CPU overhead near a budget.

    Attach to a node by constructing it with the node's context and the
    mutable knobs it may adjust.  The regulator reads the daemon's CPU
    busy counter differentially over each control interval, compares
    the window utilization against the budget, and updates the
    ``sampling`` object's ``period`` (the per-node sampler exposes one)
    and optionally the daemon's batch size.
    """

    def __init__(
        self,
        ctx: NodeContext,
        sampler: "AdaptiveSampler",
        config: Optional[RegulatorConfig] = None,
        daemon=None,
    ):
        self.ctx = ctx
        self.sampler = sampler
        self.config = config or RegulatorConfig()
        self.daemon = daemon
        self.decisions: List[RegulatorDecision] = []
        self._last_busy = 0.0
        ctx.env.process(self._run(), name=f"node{ctx.node_id}/regulator")

    # ------------------------------------------------------------------
    def _observe(self) -> float:
        """Daemon CPU utilization over the last control window."""
        busy = self.ctx.cpu.busy_time(ProcessType.PARADYN_DAEMON)
        window = busy - self._last_busy
        self._last_busy = busy
        return window / (self.config.control_interval * self.ctx.cpu.n_cpus)

    def _run(self):
        env = self.ctx.env
        cfg = self.config
        while True:
            yield env.hold(cfg.control_interval)
            util = self._observe()
            old_period = self.sampler.period
            old_batch = self._batch()
            new_period, new_batch = old_period, old_batch

            if util > cfg.budget:
                if (
                    cfg.adapt_batch
                    and self.daemon is not None
                    and old_batch < cfg.max_batch
                ):
                    new_batch = min(cfg.max_batch, max(old_batch * 2, 2))
                else:
                    new_period = min(cfg.max_period, old_period * cfg.backoff)
            elif util < cfg.low_water * cfg.budget:
                new_period = max(cfg.min_period, old_period * cfg.recovery)

            if new_period != old_period:
                self.sampler.period = new_period
            if new_batch != old_batch and self.daemon is not None:
                self._set_batch(new_batch)
            self.decisions.append(
                RegulatorDecision(
                    time=env.now,
                    observed_utilization=util,
                    old_period=old_period,
                    new_period=new_period,
                    old_batch=old_batch,
                    new_batch=new_batch,
                )
            )
            # The controller is instrumentation too: charge its work.
            if cfg.decision_cost > 0:
                yield self.ctx.cpu.execute(
                    cfg.decision_cost, ProcessType.PARADYN_DAEMON
                )

    def _batch(self) -> int:
        if self.daemon is None:
            return self.ctx.config.batch_size
        return getattr(self.daemon, "batch_size", self.ctx.config.batch_size)

    def _set_batch(self, value: int) -> None:
        self.daemon.batch_size = value


@dataclass
class AdaptiveSampler:
    """A mutable sampling-period holder shared by samplers and regulator.

    The stock :class:`~repro.rocc.application.ApplicationProcess` reads
    the period from the frozen config; adaptive runs use this object so
    the regulator can change the rate mid-run.
    """

    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")


__all__.append("AdaptiveSampler")
