"""Topology partitioning for the parallel in-cell kernel.

:func:`partition_topology` splits one :class:`SimulationConfig` topology
into ``k`` *logical processes* (LPs): contiguous node ranges, each run
as an independent kernel instance, plus one extra LP for the main
Paradyn process (and its host workstation).  Edges of the ROCC
forwarding graph that connect nodes in different LPs — daemon uplinks
to the main process, and child→parent hops under tree forwarding —
become :class:`CutEdge` records carrying *lookahead*: a conservative
lower bound on the link's forwarding latency, derived from the
``support_min`` of the workload's network-cost distribution.  Pipes are
never cut: an application's sample pipe and its draining daemon always
share a node, so the only latency on a cut edge is the network hop.

Contiguous ranges make the LP graph **acyclic**: under tree forwarding
``parent_index(i) < i``, so every cut edge points from a
higher-indexed LP to a lower-indexed one (and every LP forwards to the
main LP).  A feed-forward DAG needs no deadlock avoidance — even with
zero lookahead (the paper's exponential network costs have support
infimum 0), horizon messages alone guarantee progress.

:func:`parallel_ineligibility` is the execution gate: configurations
whose dynamics couple nodes globally (a shared FIFO network, barriers,
fault injection, adaptive regulation, SMP CPU pooling) fall back to the
sequential kernel.  The partitioner itself handles any NOW/MPP
topology, including tree forwarding; the executor currently runs only
direct (flat) forwarding in parallel.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from math import inf
from typing import List, Optional, Tuple

from .config import (
    Architecture,
    ForwardingTopology,
    NetworkMode,
    SimulationConfig,
)
from .forwarding import parent_index
from .network import ContentionFreeNetwork

__all__ = [
    "MAIN_NODE",
    "CutEdge",
    "PartitionPlan",
    "LPRole",
    "RemoteSink",
    "LPBoundaryNetwork",
    "partition_topology",
    "parallel_ineligibility",
    "lp_workers_from_env",
]

#: Pseudo node id of the main Paradyn process (its host workstation).
MAIN_NODE = -1


@dataclass(frozen=True)
class CutEdge:
    """One forwarding edge crossing an LP boundary."""

    src_node: int
    dst_node: int  #: receiving node, or :data:`MAIN_NODE`
    src_lp: int
    dst_lp: int
    #: Conservative lower bound on the edge's forwarding latency, µs:
    #: a batch sent at time *t* cannot be delivered before
    #: ``t + lookahead``.
    lookahead: float


@dataclass(frozen=True)
class PartitionPlan:
    """K contiguous node LPs plus the main LP, with their cut edges."""

    nodes: int
    lp_count: int  #: number of *node* LPs (the main LP is one more)
    ranges: Tuple[Tuple[int, int], ...]  #: LP i owns nodes ``[lo, hi)``
    cut_edges: Tuple[CutEdge, ...]

    @property
    def main_lp(self) -> int:
        """Index of the LP running the main Paradyn process."""
        return self.lp_count

    def lp_of(self, node: int) -> int:
        """The LP owning *node* (:data:`MAIN_NODE` maps to the main LP)."""
        if node == MAIN_NODE:
            return self.main_lp
        for lp, (lo, hi) in enumerate(self.ranges):
            if lo <= node < hi:
                return lp
        raise ValueError(f"node {node} outside topology of {self.nodes}")

    def lookahead_into(self, lp: int) -> dict:
        """Per-source-LP lookahead of the cut edges entering *lp*.

        When several edges share a source LP, the safe bound is set by
        the *smallest* lookahead among them.
        """
        out: dict = {}
        for e in self.cut_edges:
            if e.dst_lp == lp:
                cur = out.get(e.src_lp)
                if cur is None or e.lookahead < cur:
                    out[e.src_lp] = e.lookahead
        return out

    @property
    def min_lookahead(self) -> float:
        """Smallest cut-edge lookahead (``inf`` with no cut edges)."""
        return min((e.lookahead for e in self.cut_edges), default=inf)


@dataclass
class LPRole:
    """What one kernel instance simulates in a partitioned run.

    Handed to :class:`~repro.rocc.system.ParadynISSystem` to build a
    *subset* of the topology: the nodes in ``[node_lo, node_hi)`` and,
    for the main LP, the host workstation with the main process.
    Stream names and metric node ids stay *global*, which is what makes
    per-node variate draws bit-identical to the sequential kernel.
    """

    lp_index: int
    node_lo: int
    node_hi: int
    include_main: bool
    plan: PartitionPlan
    #: Cut-edge sends recorded by :class:`LPBoundaryNetwork`:
    #: ``(deliver_at, dst_lp, dst_node, payload, seq)``.
    outbox: List[tuple] = field(default_factory=list)

    @property
    def node_ids(self) -> range:
        return range(self.node_lo, self.node_hi)


class RemoteSink:
    """Marker delivery target for a cut edge.

    Wherever the sequential builder would wire a deliver callback into
    another LP's territory, the partitioned builder wires a
    ``RemoteSink`` naming the remote destination instead.
    :class:`LPBoundaryNetwork` recognises it at ``transfer()`` time and
    records the delivery into the LP outbox; the sink itself is never
    invoked.
    """

    __slots__ = ("dst_lp", "dst_node")

    def __init__(self, dst_lp: int, dst_node: int = MAIN_NODE):
        self.dst_lp = dst_lp
        self.dst_node = dst_node

    def __call__(self, payload) -> None:  # pragma: no cover - guard
        raise RuntimeError(
            "cut-edge delivery must be intercepted at send time by "
            "LPBoundaryNetwork, not invoked"
        )


class LPBoundaryNetwork(ContentionFreeNetwork):
    """Contention-free network that exports cut-edge sends at *send* time.

    Recording at send time — not completion time — is what makes the
    conservative window protocol sound.  Under the contention-free
    model the completion time ``now + amount`` is known the moment
    ``transfer()`` is called, so the delivery can be emitted
    immediately with its final timestamp.  Were deliveries emitted at
    completion instead, a transfer sent at ``h - lookahead + ε`` would
    still be in flight when the LP reports horizon ``h`` and would
    later complete at ``h + ε`` — *inside* the receiver's supposedly
    safe window ``(h, h + lookahead]``.  With send-time recording,
    every delivery not yet reported at horizon ``h`` has send time
    ``> h`` and therefore delivery time ``> h + lookahead``, which is
    exactly the bound the receiver advances on.

    The underlying transfer still runs locally with ``deliver=None``,
    so sender blocking, occupancy accounting, and ``in_flight`` match
    the sequential kernel exactly.
    """

    def __init__(self, env, outbox: List[tuple], name: str = "cf-net"):
        super().__init__(env, name=name)
        self._outbox = outbox

    def transfer(self, amount, owner, payload=None, deliver=None):
        if type(deliver) is RemoteSink:
            outbox = self._outbox
            outbox.append((
                self.env.now + (float(amount) if amount > 0.0 else 0.0),
                deliver.dst_lp,
                deliver.dst_node,
                payload,
                len(outbox),
            ))
            deliver = None
        return super().transfer(amount, owner, payload, deliver)


def _edge_lookahead(config: SimulationConfig) -> float:
    """Lower bound on one daemon uplink's network cost, µs.

    The daemon's forwarding cost is ``pd_network() + per_sample_network
    · (n−1)`` with ``n ≥ 1`` samples per batch, so the distribution's
    support infimum bounds every possible draw.  Clamped at zero:
    lookahead may be loose, never optimistic.
    """
    return max(0.0, config.workload.pd_network.support_min)


def partition_topology(config: SimulationConfig, k: int) -> PartitionPlan:
    """Split *config*'s topology into *k* node LPs plus the main LP.

    Nodes are assigned as contiguous, maximally balanced ranges (the
    first ``nodes % k`` LPs take one extra node); *k* is clamped to the
    node count so no LP is empty.  Every forwarding edge whose
    endpoints land in different LPs becomes a :class:`CutEdge` with
    conservative lookahead (see :func:`_edge_lookahead`).
    """
    if k < 1:
        raise ValueError(f"lp count must be >= 1, got {k}")
    nodes = config.nodes
    k = min(k, nodes)
    base, extra = divmod(nodes, k)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for lp in range(k):
        hi = lo + base + (1 if lp < extra else 0)
        ranges.append((lo, hi))
        lo = hi

    def lp_of(node: int) -> int:
        for lp, (rlo, rhi) in enumerate(ranges):
            if rlo <= node < rhi:
                return lp
        return k  # MAIN_NODE

    tree = config.forwarding is ForwardingTopology.TREE
    la = _edge_lookahead(config)
    edges: List[CutEdge] = []
    for i in range(nodes):
        dst = parent_index(i) if tree and i > 0 else MAIN_NODE
        src_lp = lp_of(i)
        dst_lp = k if dst == MAIN_NODE else lp_of(dst)
        if src_lp != dst_lp:
            edges.append(CutEdge(
                src_node=i, dst_node=dst,
                src_lp=src_lp, dst_lp=dst_lp, lookahead=la,
            ))
    return PartitionPlan(
        nodes=nodes, lp_count=k,
        ranges=tuple(ranges), cut_edges=tuple(edges),
    )


def parallel_ineligibility(config: SimulationConfig) -> Optional[str]:
    """Why *config* cannot run on the partitioned kernel (``None`` = can).

    The gate admits exactly the configurations whose cross-node
    dynamics are feed-forward: NOW/MPP topologies on a contention-free
    network with direct forwarding and no global couplers.  Everything
    else falls back to the sequential kernel, which remains the
    calibration reference (`differential.parallel_kernel` exercises
    both the parallel path and this fallback).
    """
    if config.architecture is Architecture.SMP:
        return "SMP pools every process on one CPU set (no cut exists)"
    if config.effective_network_mode is not NetworkMode.CONTENTION_FREE:
        return (
            "shared network: one FIFO server couples all nodes "
            "(zero lookahead on every edge)"
        )
    if config.forwarding is ForwardingTopology.TREE:
        return "tree forwarding: daemon-to-daemon cut edges not yet run in parallel"
    if config.barrier_period is not None:
        return "synchronization barrier couples all application processes"
    if config.faults is not None and len(config.faults) > 0:
        return "fault injection draws from one global injector stream"
    if config.recovery is not None:
        return "recovery policy state is not partitioned"
    if config.adaptive is not None:
        return "adaptive overhead regulation is a global control loop"
    if config.traffic is not None:
        return "open-workload traffic is one global arrival stream"
    return None


def lp_workers_from_env() -> Optional[int]:
    """Parse ``REPRO_DES_PARALLEL`` (unset / empty / ``1`` → ``None``).

    A zero or negative LP count is a configuration error, not a
    request for the sequential kernel, and raises :class:`ValueError`
    instead of silently falling back.
    """
    raw = os.environ.get("REPRO_DES_PARALLEL", "").strip()
    if not raw:
        return None
    try:
        k = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_DES_PARALLEL={raw!r} is not an integer LP count"
        ) from None
    if k < 1:
        raise ValueError(
            f"REPRO_DES_PARALLEL={raw!r}: LP count must be >= 1"
        )
    return k if k >= 2 else None
