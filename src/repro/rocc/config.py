"""Configuration of a ROCC / Paradyn-IS simulation run.

:class:`SimulationConfig` gathers every factor the paper's experiments
vary — architecture, node count, sampling period, forwarding policy
(batch size), forwarding topology, application mix, barrier frequency —
plus the cost decompositions that make the CF/BF comparison meaningful
(per-sample collection vs. per-call forwarding work; see DESIGN.md §2).

All times are microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from ..faults.recovery import RecoveryPolicy
from ..faults.spec import FaultPlan
from ..variates.distributions import Distribution, Exponential
from ..workload.generators import TrafficSpec
from ..workload.parameters import (
    TYPICAL_SAMPLING_PERIOD_US,
    WorkloadParameters,
)

__all__ = [
    "Architecture",
    "ForwardingTopology",
    "NetworkMode",
    "DaemonCostModel",
    "MainCostModel",
    "SimulationConfig",
]


class Architecture(str, Enum):
    """The three system classes of the study (§4)."""

    NOW = "now"
    SMP = "smp"
    MPP = "mpp"


class ForwardingTopology(str, Enum):
    """How daemons route data to the main process (MPP options, §2.1)."""

    DIRECT = "direct"
    TREE = "tree"


class NetworkMode(str, Enum):
    """Interconnect contention model."""

    SHARED = "shared"  # single FIFO server: Ethernet (NOW) or bus (SMP)
    CONTENTION_FREE = "contention_free"  # MPP scalable network


@dataclass
class DaemonCostModel:
    """CPU cost decomposition of the Paradyn daemon.

    Table 2 gives a single Exponential(267) CPU request per sample under
    the (then-only) CF policy.  Splitting it into a per-sample
    *collection* part and a per-call *forwarding* (system call + send)
    part is what makes batching pay off: under BF the forwarding part is
    amortized over the batch.  The 1/3–2/3 split reproduces the >60 %
    overhead reduction measured in Section 5; the total under CF stays
    Exponential-with-mean-267 either way.
    """

    collection_cpu: Distribution = field(
        default_factory=lambda: Exponential(267.0 / 3.0)
    )
    forward_cpu: Distribution = field(
        default_factory=lambda: Exponential(267.0 * 2.0 / 3.0)
    )
    #: Marginal CPU cost of adding one sample to an outgoing batch, µs
    #: (copying into the send buffer); zero keeps the analytic 1/b law.
    per_sample_batch_cpu: float = 0.0
    #: CPU cost of merging one received en-route batch (tree forwarding);
    #: ``None`` means "same as forward_cpu", matching D_Pdm = D_Pd.
    merge_cpu: Optional[Distribution] = None
    #: Marginal network occupancy per extra sample in a batch, µs.  The
    #: paper's model keeps network occupancy per forward constant
    #: ("the network occupancy needed for forwarding a merged sample is
    #: the same as for forwarding a local sample"), hence 0.
    per_sample_network: float = 0.0
    #: Maximum samples the daemon drains from the pipe per CPU
    #: acquisition.  The real daemon reads every available sample per
    #: wakeup; 1 degenerates to one-scheduling-round-per-sample, which
    #: starves the daemon behind CPU-bound applications under strict RR.
    collection_burst: int = 64


@dataclass
class MainCostModel:
    """CPU cost decomposition of the main Paradyn process.

    Receipt of a message costs ``receive_cpu`` (system call, wakeup);
    each sample in it costs ``per_sample_cpu`` (metric distribution to
    Data Manager threads).  The 80/20 split reproduces the ~80 %
    main-process overhead reduction of Figure 30; the absolute scale
    (500 µs per CF sample) is chosen so the main process's CPU
    utilization matches the paper's Figure 18/19 operating range —
    Table 1's 3208 µs is the distribution of the main process's CPU
    *bursts* (which cover UI and Performance Consultant work), not its
    marginal per-sample cost, and would saturate the host at the
    paper's own node counts.
    """

    receive_cpu: Distribution = field(default_factory=lambda: Exponential(400.0))
    per_sample_cpu: Distribution = field(default_factory=lambda: Exponential(100.0))


@dataclass
class SimulationConfig:
    """Every knob of one ROCC simulation experiment."""

    # -- architecture ----------------------------------------------------
    architecture: Architecture = Architecture.NOW
    #: Node count (NOW/MPP) or CPU count (SMP).
    nodes: int = 8
    #: CPUs per node (NOW/MPP; the SMP pools ``nodes`` CPUs).
    cpus_per_node: int = 1
    #: Interconnect model; ``None`` selects the architecture default
    #: (NOW/SMP shared, MPP contention-free).
    network_mode: Optional[NetworkMode] = None

    # -- IS configuration --------------------------------------------------
    #: Performance-data sampling period, µs.
    sampling_period: float = TYPICAL_SAMPLING_PERIOD_US
    #: Samples per forwarding call: 1 = CF policy, >1 = BF policy.
    batch_size: int = 1
    #: Optional BF flush interval, µs: a partial batch older than this is
    #: forwarded anyway (extension beyond the paper; ``None`` = off).
    batch_flush_timeout: Optional[float] = None
    #: Data-forwarding topology (MPP supports TREE).
    forwarding: ForwardingTopology = ForwardingTopology.DIRECT
    #: Paradyn daemons. NOW/MPP run one per node (this field is ignored);
    #: the SMP shares ``daemons`` daemons among all CPUs (§4.3.2).
    daemons: int = 1
    #: Pipe capacity per application process, samples.
    pipe_capacity: int = 128
    #: Mean service time (µs) of a FIFO ingress stage at the main
    #: process's host — the "single server buffer" of the paper's
    #: Figure 2 that serializes arrivals from all daemons.  ``None``
    #: stamps receipt at network delivery (the default model).  Enabling
    #: it makes monitoring latency sensitive to the total arrival rate
    #: (node count), at the cost of unbounded latency when the central
    #: stage saturates; see EXPERIMENTS.md figure25.
    central_ingress: Optional[float] = None

    # -- application -----------------------------------------------------
    #: Application processes per node (NOW/MPP) or in total (SMP).
    app_processes_per_node: int = 1
    #: Whether application processes are instrumented at all (False
    #: simulates the uninstrumented baseline curves of Figs 17–27).
    instrumented: bool = True
    #: Barrier period: amount of per-process CPU work between global
    #: synchronization barriers, µs (``None`` = no barriers; Figure 28).
    barrier_period: Optional[float] = None
    #: Include PVM daemon background load.
    include_pvmd: bool = True
    #: Include other user/system background load.
    include_other: bool = True

    # -- workload and costs ------------------------------------------------
    workload: WorkloadParameters = field(default_factory=WorkloadParameters)
    daemon_costs: DaemonCostModel = field(default_factory=DaemonCostModel)
    main_costs: MainCostModel = field(default_factory=MainCostModel)
    #: Optional open-workload traffic driving externally-arriving
    #: requests into the monitored nodes, alongside the closed per-node
    #: application loops (a :class:`~repro.workload.generators.TrafficSpec`,
    #: a CLI string ``NAME[:k=v,...]``, or a ``{"name": ...}`` dict,
    #: coerced).  ``None`` = the paper's closed model only.
    traffic: Optional[TrafficSpec] = None

    # -- adaptive IS management (§6 extension; see repro.rocc.adaptive) ----
    #: A ``RegulatorConfig`` enabling per-node overhead regulation, or
    #: ``None`` for the paper's static policies.
    adaptive: Optional[object] = None

    # -- fault injection and recovery (repro.faults) -----------------------
    #: A :class:`~repro.faults.spec.FaultPlan` (or a single spec / list
    #: of specs, coerced) of faults to inject; ``None`` = ideal IS.
    faults: Optional[FaultPlan] = None
    #: How daemons react to lost / timed-out forwards; ``None`` applies
    #: :meth:`RecoveryPolicy.drop_only` semantics (no retries).
    recovery: Optional[RecoveryPolicy] = None

    # -- run control --------------------------------------------------------
    #: Simulated duration, µs (paper runs 100 s; sweeps here use less).
    duration: float = 10_000_000.0
    #: Statistics are discarded before this time, µs.
    warmup: float = 0.0
    seed: int = 0
    replication: int = 0
    #: Watchdog: abort the run with ``SimulationStalled`` after this many
    #: kernel events (``None`` = unlimited).
    max_events: Optional[int] = None
    #: Watchdog: abort after this much host wall-clock time, seconds.
    max_wall_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.cpus_per_node < 1:
            raise ValueError("cpus_per_node must be >= 1")
        if self.sampling_period <= 0:
            raise ValueError("sampling_period must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_flush_timeout is not None and self.batch_flush_timeout <= 0:
            raise ValueError("batch_flush_timeout must be positive (or None)")
        if self.daemons < 1:
            raise ValueError("daemons must be >= 1")
        if self.pipe_capacity < 1:
            raise ValueError("pipe_capacity must be >= 1 sample")
        if self.central_ingress is not None and self.central_ingress <= 0:
            raise ValueError(
                "central_ingress mean service time must be positive (or None)"
            )
        if self.app_processes_per_node < 1:
            raise ValueError("app_processes_per_node must be >= 1")
        if self.workload.cpu_quantum <= 0:
            raise ValueError("workload.cpu_quantum must be positive")
        if self.daemon_costs.per_sample_batch_cpu < 0:
            raise ValueError("daemon_costs.per_sample_batch_cpu must be >= 0")
        if self.daemon_costs.per_sample_network < 0:
            raise ValueError("daemon_costs.per_sample_network must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must lie in [0, duration)")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError("max_events must be >= 1 (or None)")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive (or None)")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            self.faults = FaultPlan.coerce(self.faults)
        if self.traffic is not None:
            if not isinstance(self.traffic, TrafficSpec):
                self.traffic = TrafficSpec.coerce(self.traffic)
            self.traffic.validate()  # unknown name / bad params fail here
        if self.recovery is not None and not isinstance(self.recovery, RecoveryPolicy):
            raise TypeError("recovery must be a RecoveryPolicy (or None)")
        if (
            self.forwarding is ForwardingTopology.TREE
            and self.architecture is not Architecture.MPP
        ):
            raise ValueError("tree forwarding is modeled for the MPP case only")

    @property
    def is_cf(self) -> bool:
        """Collect-and-forward policy (batch size 1)."""
        return self.batch_size == 1

    @property
    def is_bf(self) -> bool:
        """Batch-and-forward policy (batch size > 1)."""
        return self.batch_size > 1

    @property
    def effective_network_mode(self) -> NetworkMode:
        if self.network_mode is not None:
            return self.network_mode
        if self.architecture is Architecture.MPP:
            return NetworkMode.CONTENTION_FREE
        return NetworkMode.SHARED

    @property
    def measured_duration(self) -> float:
        """Duration over which statistics are gathered, µs."""
        return self.duration - self.warmup

    def with_(self, **changes) -> "SimulationConfig":
        """Functional update (convenience for parameter sweeps)."""
        return replace(self, **changes)
