"""The main Paradyn process: central sample consumer.

Receives batches from daemons (via its inbox, fed by network delivery
callbacks), pays a per-message receive cost plus a per-sample
processing cost on its host CPU, and records receipt metrics.
Monitoring latency is stamped at *delivery* time — "receipt at a
logically central collection facility" — independent of how long the
main process then takes to digest the batch.

When ``config.central_ingress`` is set, deliveries first pass through a
single-server FIFO stage at the host (the buffer drawn in the paper's
Figure 2); receipt is then stamped when the ingress stage finishes, so
latency becomes sensitive to the aggregate arrival rate.
"""

from __future__ import annotations

from ..des.stores import Store
from ..variates.distributions import Exponential
from ..workload.records import ProcessType
from .config import MainCostModel
from .network import FIFONetwork
from .node import NodeContext
from .requests import Batch

__all__ = ["MainParadynProcess"]


class MainParadynProcess:
    """The multithreaded main Paradyn tool process."""

    def __init__(self, ctx: NodeContext):
        self.ctx = ctx
        costs: MainCostModel = ctx.config.main_costs
        self.inbox: Store = Store(ctx.env)
        self._receive_cpu = ctx.streams.variates("main/receive_cpu", costs.receive_cpu)
        self._per_sample_rng = ctx.streams.generator("main/per_sample_cpu")
        self._per_sample_dist = costs.per_sample_cpu
        self._ingress = None
        self._ingress_var = None
        if ctx.config.central_ingress is not None:
            self._ingress = FIFONetwork(ctx.env, name="main.ingress")
            self._ingress_var = ctx.streams.variates(
                "main/ingress", Exponential(ctx.config.central_ingress)
            )
        ctx.env.process(self._run(), name="paradyn-main")

    # ------------------------------------------------------------------
    def deliver(self, batch: Batch) -> None:
        """Network delivery sink: route through the optional ingress
        stage, stamp receipt metrics, enqueue processing work."""
        if self._ingress is None:
            self._receive(batch)
        else:
            self._ingress.transfer(
                self._ingress_var(),
                ProcessType.PARADYN_MAIN,
                payload=batch,
                deliver=self._receive,
            )

    def _receive(self, batch: Batch) -> None:
        now = self.ctx.env.now
        metrics = self.ctx.metrics
        if batch.corrupted:
            # Checksum failure: the message arrived but its payload is
            # garbage.  Discard with accounting — the sender believes
            # the forward succeeded, so nobody retransmits.
            metrics.note_drop_samples(batch.origin, batch.samples, "corrupt")
            self.inbox.put(batch)  # still pays the receive system call
            return
        counted = 0
        for sample in batch.samples:
            if metrics.note_receipt(now, sample.created_at, batch.sent_at):
                counted += 1
        # A batch made entirely of pre-warmup samples belongs to the
        # discarded transient, like its samples.
        if counted:
            metrics.batches_received += 1
        self.inbox.put(batch)

    def _run(self):
        cpu = self.ctx.cpu
        while True:
            batch = yield self.inbox.get()
            # A corrupted batch is discarded after the receive system
            # call — no per-sample distribution work.
            n = 0 if batch.corrupted else len(batch.samples)
            cost = self._receive_cpu()
            if n > 0:
                # One aggregate draw for the per-sample work: the sum of
                # n iid costs, drawn vectorized (hot path under BF).
                cost += float(
                    self._per_sample_dist.sample(self._per_sample_rng, n).sum()
                    if n > 1
                    else self._per_sample_dist.sample(self._per_sample_rng)
                )
            yield cpu.execute(cost, ProcessType.PARADYN_MAIN)
