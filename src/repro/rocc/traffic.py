"""External open-workload traffic feeding the ROCC model.

The paper's model is *closed*: each node runs a fixed set of
application processes that loop forever (compute → communicate).
:class:`OpenArrivalSource` adds the complementary *open* model on top:
a lazy :class:`~repro.workload.generators.TrafficGenerator` (selected
by ``config.traffic``) drives externally-arriving requests into the
monitored nodes, each request costing one application compute burst
plus one communication burst — the marginal load one more user
interaction places on the monitored system.

Wiring per served station (one per node on NOW/MPP; the SMP's pooled
CPU is a single station):

* an unbounded :class:`~repro.des.stores.Store` inbox — arrivals never
  block the source, they queue (open models have no admission control);
* one server process that drains the inbox FIFO: CPU burst drawn from
  ``workload.app_cpu``, then a network transfer drawn from
  ``workload.app_network``, both charged as ``APPLICATION`` work so
  open load contends with the closed loops and the IS daemons on the
  same round-robin CPUs and interconnect.

Determinism: the generator's seed derives from the cell's
:class:`~repro.variates.streams.StreamFactory` (stream name
``workload/arrivals``), the per-station service variates from streams
``node{i}/open/cpu|network`` — all functions of ``(seed,
replication)``, so a seeded open-workload cell replays bit-identically
and its cache fingerprint (which covers ``config.traffic``) is sound.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..des.stores import Store
from ..workload.generators import USERS_MARKER
from ..workload.records import ProcessType

__all__ = ["OpenArrivalSource"]


class OpenArrivalSource:
    """DES arrival process replaying one traffic generator into a system.

    Parameters
    ----------
    system:
        The fully-built :class:`~repro.rocc.system.ParadynISSystem`;
        the source attaches one inbox + server per entry in
        ``system.worker_cpus``.
    """

    def __init__(self, system) -> None:
        cfg = system.config
        env = system.env
        self.env = env
        self.metrics = system.metrics
        self.stations = len(system.worker_cpus)
        self.generator = cfg.traffic.build(
            nodes=self.stations,
            seed_seq=system.streams.seed_sequence("workload/arrivals"),
        )
        self.inboxes: List[Store] = []
        wl = cfg.workload
        for idx, cpu in enumerate(system.worker_cpus):
            node = system._node_ids[idx]
            inbox = Store(env)
            self.inboxes.append(inbox)
            cpu_var = system.streams.variates(f"node{node}/open/cpu", wl.app_cpu)
            net_var = system.streams.variates(
                f"node{node}/open/network", wl.app_network
            )
            env.process(
                self._server(inbox, cpu, system.network, cpu_var, net_var),
                name=f"node{node}/open/server",
            )
        # Active-user level integral (time-weighted), fed by the open
        # model's USERS_MARKER events; NaN level until the first marker.
        self._users_level = math.nan
        self._users_since = 0.0
        self._users_integral = 0.0
        self._users_seen = False
        self._window_start = 0.0
        env.process(self._arrivals(), name="workload/arrivals")

    # ------------------------------------------------------------------
    def _arrivals(self):
        """Replay the generator's event stream in simulation time."""
        env = self.env
        hold = env.hold
        metrics = self.metrics
        inboxes = self.inboxes
        n = self.stations
        for t, node, users in self.generator:
            delay = t - env.now
            if delay > 0.0:
                yield hold(delay)
            if node == USERS_MARKER:
                self._note_users(env.now, users)
            else:
                metrics.note_open_arrival(node)
                inboxes[node % n].put(env.now)

    def _server(self, inbox: Store, cpu, network, cpu_var, net_var):
        """Serve queued open requests FIFO: CPU burst, then transfer."""
        env = self.env
        metrics = self.metrics
        while True:
            arrived = yield inbox.get()
            yield cpu.execute(cpu_var(), ProcessType.APPLICATION)
            yield network.transfer(net_var(), ProcessType.APPLICATION)
            metrics.note_open_completion(env.now, arrived)

    # ------------------------------------------------------------------
    # Active-user accounting
    # ------------------------------------------------------------------
    def _note_users(self, now: float, users: float) -> None:
        if self._users_seen:
            self._users_integral += self._users_level * (now - self._users_since)
        self._users_level = users
        self._users_since = now
        self._users_seen = True

    def warmup_snapshot(self, now: float) -> None:
        """Restart the user-level integral at the warmup boundary.

        The current level persists across the boundary (the population
        does not reset when measurement starts) — only the integral and
        its window restart.
        """
        self._users_integral = 0.0
        self._users_since = now
        self._window_start = now

    def users_mean(self, now: float) -> float:
        """Time-averaged active-user level over the measured window.

        NaN when the workload never reported a user level (generators
        without a user model) or the window is empty.
        """
        if not self._users_seen:
            return math.nan
        window = now - self._window_start
        if window <= 0.0:
            return math.nan
        integral = self._users_integral + self._users_level * (
            now - self._users_since
        )
        return integral / window
