"""Metric collection for ROCC simulations.

Two latency definitions coexist in the paper (reconciled here, see
EXPERIMENTS.md):

* **forwarding latency** — residence time of a forwarding unit (sample
  under CF, batch under BF) in the daemon-CPU + network tandem, i.e.
  equation (4)'s R(λ).  This is what the NOW/SMP figures plot: it is
  *lower* under BF (fewer forwarding operations → less contention).
* **total latency** — sample creation to receipt at the main process,
  *including* batch accumulation wait (≈ b·T/2 under BF).  This is what
  the MPP figures plot: it is *higher* under BF, the trade-off §4.4.2
  discusses.

:class:`Metrics` accumulates raw counters during the run;
:class:`SimulationResults` is the frozen outcome with every metric the
paper reports, already averaged/normalized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..des.monitor import P2Quantile, ReservoirSample, Tally
from ..workload.records import ProcessType

__all__ = ["Metrics", "NodeCounter", "SimulationResults"]

#: Latency observations kept as an exact raw series.  Below this cap,
#: percentiles are exact ``np.percentile`` order statistics; past it the
#: recorder switches to O(1)-memory streaming estimators (P² for
#: p50/p90/p99, a reservoir for other quantiles), keeping peak RSS flat
#: for arbitrarily long runs.
RAW_LATENCY_CAP = 65536

#: Reservoir size once the raw series overflows.
_RESERVOIR_SIZE = 4096


class NodeCounter:
    """Per-node event counter backed by one growing list.

    Struct-of-arrays replacement for the former per-metric dicts: node
    ids are small dense integers, so a list indexed by node is both
    smaller and faster than hashing the id on every count.  The mapping
    interface (:meth:`values`, :meth:`items`, indexing) matches how the
    results aggregation consumed the dicts.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: List[int] = []

    def add(self, node: int, n: int = 1) -> None:
        """Add *n* to *node*'s count, growing the table as needed."""
        counts = self._counts
        grow = node + 1 - len(counts)
        if grow > 0:
            counts.extend([0] * grow)
        counts[node] += n

    def __getitem__(self, node: int) -> int:
        if 0 <= node < len(self._counts):
            return self._counts[node]
        return 0

    def get(self, node: int, default: int = 0) -> int:
        if 0 <= node < len(self._counts):
            return self._counts[node]
        return default

    def values(self) -> List[int]:
        return list(self._counts)

    def items(self):
        return list(enumerate(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return any(self._counts)

    def to_dict(self) -> Dict[int, int]:
        """Sparse mapping view (zero counts omitted), the old dict shape."""
        return {i: c for i, c in enumerate(self._counts) if c}

    def __eq__(self, other) -> bool:
        if isinstance(other, NodeCounter):
            return self.to_dict() == other.to_dict()
        if isinstance(other, dict):
            return self.to_dict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeCounter({self.to_dict()!r})"


class Metrics:
    """Mutable accumulator attached to one simulation run.

    The receipt path is the busiest metric site, so latencies are
    buffered as raw floats (one list append each) and folded into their
    :class:`~repro.des.monitor.Tally` objects lazily, the first time a
    tally is read.  The fold replays values in arrival order, so means
    and variances are bit-identical to eager observation.  The raw
    series also makes order statistics (:meth:`latency_percentiles`)
    available at finalize time, which a streaming tally cannot provide.
    """

    def __init__(self) -> None:
        #: Measurement epoch: samples created before this simulation time
        #: are invisible to receipt/drop accounting.  Set by
        #: :meth:`reset` at the warmup boundary so that samples generated
        #: before warmup but delivered after it are counted on *neither*
        #: side of the conservation equation (generated = received +
        #: dropped + in-flight).
        self.epoch = 0.0
        #: Forwarding-unit residence time (ready → receipt), µs.
        self._lat_fwd = Tally("latency_forwarding")
        #: Sample creation → receipt, incl. batch accumulation, µs.
        self._lat_total = Tally("latency_total")
        self._lat_fwd_raw: List[float] = []
        self._lat_total_raw: List[float] = []
        self._lat_fwd_flushed = 0
        self._lat_total_flushed = 0
        #: Exact-retention cap for the raw latency series (see
        #: :data:`RAW_LATENCY_CAP`; tests shrink it to exercise the
        #: streaming path cheaply).
        self.raw_cap = RAW_LATENCY_CAP
        self._lat_fwd_p2: Optional[List[P2Quantile]] = None
        self._lat_fwd_res: Optional[ReservoirSample] = None
        self._lat_fwd_streamed = 0
        self._lat_total_streamed = 0
        self.samples_generated = 0
        self.samples_received = 0
        self.batches_received = 0
        #: Samples forwarded per daemon node (local throughput numerator).
        self.forwarded_by_node = NodeCounter()
        #: Forwarding calls (system calls) per daemon node.
        self.forward_calls_by_node = NodeCounter()
        #: Merge operations performed by tree daemons, per node.
        self.merges_by_node = NodeCounter()
        #: Total time application writers spent blocked on full pipes, µs.
        self.pipe_blocked_time = 0.0
        self.pipe_blocked_puts = 0
        #: Completed application compute/communicate cycles.
        self.app_cycles = 0
        #: Barrier waits observed (sum of per-process wait time), µs.
        self.barrier_wait_time = 0.0
        self.barrier_rounds = 0
        # -- fault / recovery accounting (repro.faults) -------------------
        #: Samples dropped (never delivered), total and by reason
        #: ("loss" = retries exhausted, "overflow" = resend queue full,
        #: "crash" = lost in a crashing daemon, "corrupt" = discarded at
        #: the receiver).
        self.samples_dropped = 0
        self.drops_by_reason: Dict[str, int] = {}
        #: Batch retransmission attempts performed by daemons.
        self.retransmissions = 0
        #: Messages the network lost / corrupted.
        self.messages_lost = 0
        self.messages_corrupted = 0
        #: Forward attempts abandoned by the policy's forwarding timeout.
        self.forward_timeouts = 0
        #: Daemon crash count and accumulated downtime, µs.
        self.daemon_crashes = 0
        self.daemon_downtime = 0.0
        #: Crash → first successful forward after restart, µs.
        self.recovery_latency = Tally("recovery_latency")
        # -- open-workload traffic (repro.workload.generators) ------------
        #: Externally-driven requests that arrived / finished service.
        self.open_arrivals = 0
        self.open_completed = 0
        #: Request arrival → service completion, µs.
        self.open_latency = Tally("open_latency")

    def reset(self, now: float = 0.0) -> None:
        """Restart all accumulators (used at the end of warmup).

        *now* becomes the new measurement :attr:`epoch`: samples created
        before it no longer count as received or dropped.
        """
        self.__init__()
        self.epoch = float(now)

    # -- lazily-folded latency tallies ---------------------------------
    def _flush_fwd(self) -> None:
        raw = self._lat_fwd_raw
        i = self._lat_fwd_flushed
        if i < len(raw):
            observe = self._lat_fwd.observe
            for k in range(i, len(raw)):
                observe(raw[k])
            self._lat_fwd_flushed = len(raw)

    def _flush_total(self) -> None:
        raw = self._lat_total_raw
        i = self._lat_total_flushed
        if i < len(raw):
            observe = self._lat_total.observe
            for k in range(i, len(raw)):
                observe(raw[k])
            self._lat_total_flushed = len(raw)

    @property
    def latency_forwarding(self) -> Tally:
        self._flush_fwd()
        return self._lat_fwd

    @latency_forwarding.setter
    def latency_forwarding(self, tally: Tally) -> None:
        # Values buffered so far belong to the tally being replaced, and
        # so does the raw series: restarting it keeps
        # :meth:`latency_percentiles` consistent with the new tally
        # instead of mixing observations across the replacement.
        self._flush_fwd()
        self._lat_fwd = tally
        self._lat_fwd_raw = []
        self._lat_fwd_flushed = 0
        self._lat_fwd_p2 = None
        self._lat_fwd_res = None
        self._lat_fwd_streamed = 0

    @property
    def latency_total(self) -> Tally:
        self._flush_total()
        return self._lat_total

    @latency_total.setter
    def latency_total(self, tally: Tally) -> None:
        self._flush_total()
        self._lat_total = tally
        self._lat_total_raw = []
        self._lat_total_flushed = 0
        self._lat_total_streamed = 0

    def _stream_fwd(self, value: float) -> None:
        """Fold one forwarding latency past the raw cap (O(1) memory)."""
        p2 = self._lat_fwd_p2
        if p2 is None:
            # First overflow: flush the exact prefix into the tally (so
            # later direct observes keep arrival order) and seed the
            # streaming estimators with it, so they describe the whole
            # stream, not just the tail.
            self._flush_fwd()
            p2 = [P2Quantile(0.5), P2Quantile(0.9), P2Quantile(0.99)]
            res = ReservoirSample(_RESERVOIR_SIZE, name="latency_forwarding")
            for v in self._lat_fwd_raw:
                p2[0].observe(v)
                p2[1].observe(v)
                p2[2].observe(v)
                res.observe(v)
            self._lat_fwd_p2 = p2
            self._lat_fwd_res = res
        self._lat_fwd.observe(value)
        p2[0].observe(value)
        p2[1].observe(value)
        p2[2].observe(value)
        self._lat_fwd_res.observe(value)
        self._lat_fwd_streamed += 1

    def latency_percentiles(self, qs=(50.0, 90.0, 99.0)) -> Dict[float, float]:
        """Order statistics of the forwarding latency, from the raw series.

        Raises :class:`ValueError` instead of silently returning garbage
        when the raw series cannot support the request: quantiles outside
        [0, 100], a series containing non-finite values, or a series that
        has fallen out of sync with the forwarding tally (someone observed
        the tally directly, bypassing :meth:`note_receipt`).  An empty
        series (no samples received) yields NaNs, the explicit
        "no data" flag.
        """
        if any(not 0.0 <= q <= 100.0 for q in qs):
            raise ValueError(f"quantiles must lie in [0, 100]: {qs}")
        if not self._lat_fwd_raw:
            if self._lat_fwd.count > 0:
                raise ValueError(
                    "forwarding-latency tally holds observations the raw "
                    "series never saw; percentiles would not describe the "
                    "same data (observe via note_receipt, not the tally)"
                )
            return {q: math.nan for q in qs}
        self._flush_fwd()
        observed = len(self._lat_fwd_raw) + self._lat_fwd_streamed
        if self._lat_fwd.count != observed:
            raise ValueError(
                "raw latency series out of sync with the forwarding tally "
                f"({observed} raw vs {self._lat_fwd.count} "
                "tallied); percentiles would mix data sets"
            )
        arr = np.asarray(self._lat_fwd_raw)
        if not np.all(np.isfinite(arr)):
            raise ValueError("non-finite forwarding latency observed")
        if self._lat_fwd_p2 is None:
            # Exact path: the whole stream is retained.
            values = np.percentile(arr, qs)
            return {q: float(v) for q, v in zip(qs, values)}
        # Streaming path: P² estimates for the canonical percentiles,
        # reservoir order statistics for anything else.
        res_arr = np.asarray(self._lat_fwd_res.items)
        if not np.all(np.isfinite(res_arr)):
            raise ValueError("non-finite forwarding latency observed")
        p2_by_q = {50.0: self._lat_fwd_p2[0], 90.0: self._lat_fwd_p2[1],
                   99.0: self._lat_fwd_p2[2]}
        out: Dict[float, float] = {}
        for q in qs:
            est = p2_by_q.get(float(q))
            if est is not None:
                out[q] = est.value
            else:
                out[q] = float(np.percentile(res_arr, q))
        return out

    def note_forward(self, node: int, n_samples: int) -> None:
        self.forwarded_by_node.add(node, n_samples)
        self.forward_calls_by_node.add(node)

    def note_merge(self, node: int) -> None:
        self.merges_by_node.add(node)

    def note_receipt(self, now: float, created_at: float, ready_at: float) -> bool:
        """Record one sample's receipt; returns whether it was counted.

        Samples created before the measurement :attr:`epoch` (i.e. before
        the warmup boundary) are ignored — they were never counted as
        generated, so counting their receipt would break conservation.

        The first :attr:`raw_cap` latencies are buffered exactly (one
        list append); past the cap the recorder streams into O(1)-memory
        estimators so long runs stay memory-flat.
        """
        if created_at < self.epoch:
            return False
        self.samples_received += 1
        raw = self._lat_total_raw
        if len(raw) < self.raw_cap:
            raw.append(now - created_at)
        else:
            self._flush_total()
            self._lat_total.observe(now - created_at)
            self._lat_total_streamed += 1
        raw = self._lat_fwd_raw
        if len(raw) < self.raw_cap:
            raw.append(now - ready_at)
        else:
            self._stream_fwd(now - ready_at)
        return True

    def _has_receipts(self) -> bool:
        return bool(
            self.samples_received
            or self._lat_fwd_raw
            or self._lat_fwd.count
            or self._lat_total_raw
            or self._lat_total.count
        )

    def merge(self, other: "Metrics") -> None:
        """Fold another kernel fragment's accumulators into this one.

        Used by the parallel in-cell kernel (:mod:`repro.des.parallel`)
        to combine per-LP metrics into one run total.  Counters sum;
        per-node counters add node-wise (node ids are global across
        LPs, so the key spaces are disjoint in practice).

        The latency recorders (raw series, tallies, streaming
        estimators) are *adopted*, not merged: receipt order determines
        their bit-exact state, and only the LP hosting the main Paradyn
        process ever observes receipts.  Merging two fragments that
        both saw receipts would silently discard ordering information,
        so that case raises :class:`ValueError`.
        """
        if other.epoch != self.epoch:
            raise ValueError(
                f"cannot merge metrics with different epochs "
                f"({self.epoch} vs {other.epoch}); run warmup in every LP"
            )
        if other._has_receipts():
            if self._has_receipts():
                raise ValueError(
                    "both metric fragments hold receipt/latency series; "
                    "only the main-process LP may observe receipts"
                )
            self.samples_received = other.samples_received
            self.batches_received = other.batches_received
            self._lat_fwd = other._lat_fwd
            self._lat_total = other._lat_total
            self._lat_fwd_raw = other._lat_fwd_raw
            self._lat_total_raw = other._lat_total_raw
            self._lat_fwd_flushed = other._lat_fwd_flushed
            self._lat_total_flushed = other._lat_total_flushed
            self._lat_fwd_p2 = other._lat_fwd_p2
            self._lat_fwd_res = other._lat_fwd_res
            self._lat_fwd_streamed = other._lat_fwd_streamed
            self._lat_total_streamed = other._lat_total_streamed
        self.samples_generated += other.samples_generated
        for node, n in other.forwarded_by_node.items():
            if n:
                self.forwarded_by_node.add(node, n)
        for node, n in other.forward_calls_by_node.items():
            if n:
                self.forward_calls_by_node.add(node, n)
        for node, n in other.merges_by_node.items():
            if n:
                self.merges_by_node.add(node, n)
        self.pipe_blocked_time += other.pipe_blocked_time
        self.pipe_blocked_puts += other.pipe_blocked_puts
        self.app_cycles += other.app_cycles
        self.barrier_wait_time += other.barrier_wait_time
        self.barrier_rounds += other.barrier_rounds
        self.samples_dropped += other.samples_dropped
        for reason, n in other.drops_by_reason.items():
            self.drops_by_reason[reason] = (
                self.drops_by_reason.get(reason, 0) + n
            )
        self.retransmissions += other.retransmissions
        self.messages_lost += other.messages_lost
        self.messages_corrupted += other.messages_corrupted
        self.forward_timeouts += other.forward_timeouts
        self.daemon_crashes += other.daemon_crashes
        self.daemon_downtime += other.daemon_downtime
        self.recovery_latency.merge(other.recovery_latency)
        self.open_arrivals += other.open_arrivals
        self.open_completed += other.open_completed
        self.open_latency.merge(other.open_latency)

    def note_open_arrival(self, node: int) -> None:
        """Account one open-workload request arriving at *node*."""
        self.open_arrivals += 1

    def note_open_completion(self, now: float, arrived_at: float) -> bool:
        """Record one open request's completion; returns whether counted.

        Epoch-filtered exactly like :meth:`note_receipt`: requests that
        arrived before the warmup boundary were never counted as
        arrivals, so their completion must not count either.
        """
        if arrived_at < self.epoch:
            return False
        self.open_completed += 1
        self.open_latency.observe(now - arrived_at)
        return True

    def note_drop(self, node: int, n_samples: int, reason: str) -> None:
        """Account *n_samples* dropped at *node* for *reason*."""
        self.samples_dropped += n_samples
        self.drops_by_reason[reason] = (
            self.drops_by_reason.get(reason, 0) + n_samples
        )

    def note_drop_samples(self, node: int, samples, reason: str) -> None:
        """Account dropped *samples* (epoch-filtered, see note_receipt)."""
        epoch = self.epoch
        n = sum(1 for s in samples if s.created_at >= epoch)
        if n:
            self.note_drop(node, n, reason)


@dataclass
class SimulationResults:
    """Frozen outcome of one ROCC simulation run.

    Times are in µs unless stated; utilizations are fractions in [0, 1].
    "Per node" quantities are averaged over nodes for the global level
    of detail; ``node0_*`` fields give the arbitrarily-selected single
    node used by the paper's local level of detail.
    """

    # Run identity.
    config_summary: str
    duration: float  # measured duration (post-warmup), µs
    nodes: int

    # Direct IS overhead (per node averages).
    pd_cpu_time_per_node: float
    main_cpu_time: float
    pvmd_cpu_time_per_node: float = 0.0
    other_cpu_time_per_node: float = 0.0
    app_cpu_time_per_node: float = 0.0

    # Single-node (local detail) values.
    node0_pd_cpu_time: float = 0.0
    node0_app_cpu_time: float = 0.0

    # Utilizations.
    pd_cpu_utilization_per_node: float = 0.0
    app_cpu_utilization_per_node: float = 0.0
    main_cpu_utilization: float = 0.0
    is_cpu_utilization_per_node: float = 0.0
    network_utilization: float = 0.0
    pd_network_utilization: float = 0.0

    # Latency / throughput.
    monitoring_latency_forwarding: float = float("nan")
    monitoring_latency_total: float = float("nan")
    # Order statistics of the forwarding latency (µs), computed from the
    # raw receipt series at finalize time.
    monitoring_latency_p50: float = float("nan")
    monitoring_latency_p90: float = float("nan")
    monitoring_latency_p99: float = float("nan")
    throughput_per_daemon: float = 0.0  # samples forwarded / sec / daemon
    received_throughput: float = 0.0  # samples received at main / sec

    # Counters.
    samples_generated: int = 0
    samples_received: int = 0
    batches_received: int = 0
    forward_calls_per_node: float = 0.0
    merges_total: int = 0

    # Pipe / barrier diagnostics.
    pipe_blocked_time: float = 0.0
    pipe_blocked_puts: int = 0
    barrier_wait_time: float = 0.0
    barrier_rounds: int = 0
    app_cycles: int = 0

    # Fault / recovery outcome (zero / NaN when no faults injected).
    samples_dropped: int = 0
    drops_by_reason: Dict = field(default_factory=dict)
    retransmissions: int = 0
    messages_lost: int = 0
    messages_corrupted: int = 0
    forward_timeouts: int = 0
    daemon_crashes: int = 0
    daemon_downtime: float = 0.0  # µs, summed over daemons
    recovery_latency: float = float("nan")  # mean crash → first forward, µs

    # Open-workload traffic outcome (zeros / NaN when the run carried no
    # external traffic spec).
    open_arrivals: int = 0
    open_completed: int = 0
    open_offered_rate: float = 0.0  # arrivals / sec over measured duration
    open_active_users: float = float("nan")  # time-averaged user level
    open_latency_mean: float = float("nan")  # arrival → completion, µs

    # Raw per-node CPU busy breakdown (µs), keyed by (node, process type).
    cpu_busy: Dict = field(default_factory=dict, repr=False)

    # Observability provenance (repro.obs): empty dict when the run was
    # untraced; span/counter-sample counts for this run when traced.
    observability: Dict = field(default_factory=dict, repr=False)

    # -- convenience -----------------------------------------------------
    @property
    def duration_seconds(self) -> float:
        return self.duration / 1e6

    @property
    def pd_cpu_seconds_per_node(self) -> float:
        """Direct Pd overhead as CPU-seconds (Table 4/5/6 units)."""
        return self.pd_cpu_time_per_node / 1e6

    @property
    def main_cpu_seconds(self) -> float:
        return self.main_cpu_time / 1e6

    @property
    def is_cpu_seconds_per_node(self) -> float:
        """IS (daemons + main) CPU-seconds per node — Table 5 units."""
        return (self.pd_cpu_time_per_node + self.main_cpu_time / self.nodes) / 1e6

    @property
    def monitoring_latency_forwarding_ms(self) -> float:
        return self.monitoring_latency_forwarding / 1e3

    @property
    def monitoring_latency_total_ms(self) -> float:
        return self.monitoring_latency_total / 1e3

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated samples that reached the main process."""
        if self.samples_generated == 0:
            return float("nan")
        return self.samples_received / self.samples_generated

    @property
    def drop_ratio(self) -> float:
        """Fraction of generated samples dropped by faults/policy."""
        if self.samples_generated == 0:
            return float("nan")
        return self.samples_dropped / self.samples_generated

    @property
    def daemon_downtime_seconds(self) -> float:
        return self.daemon_downtime / 1e6

    @property
    def recovery_latency_ms(self) -> float:
        return self.recovery_latency / 1e3
