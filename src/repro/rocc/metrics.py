"""Metric collection for ROCC simulations.

Two latency definitions coexist in the paper (reconciled here, see
EXPERIMENTS.md):

* **forwarding latency** — residence time of a forwarding unit (sample
  under CF, batch under BF) in the daemon-CPU + network tandem, i.e.
  equation (4)'s R(λ).  This is what the NOW/SMP figures plot: it is
  *lower* under BF (fewer forwarding operations → less contention).
* **total latency** — sample creation to receipt at the main process,
  *including* batch accumulation wait (≈ b·T/2 under BF).  This is what
  the MPP figures plot: it is *higher* under BF, the trade-off §4.4.2
  discusses.

:class:`Metrics` accumulates raw counters during the run;
:class:`SimulationResults` is the frozen outcome with every metric the
paper reports, already averaged/normalized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..des.monitor import Tally
from ..workload.records import ProcessType

__all__ = ["Metrics", "SimulationResults"]


class Metrics:
    """Mutable accumulator attached to one simulation run.

    The receipt path is the busiest metric site, so latencies are
    buffered as raw floats (one list append each) and folded into their
    :class:`~repro.des.monitor.Tally` objects lazily, the first time a
    tally is read.  The fold replays values in arrival order, so means
    and variances are bit-identical to eager observation.  The raw
    series also makes order statistics (:meth:`latency_percentiles`)
    available at finalize time, which a streaming tally cannot provide.
    """

    def __init__(self) -> None:
        #: Measurement epoch: samples created before this simulation time
        #: are invisible to receipt/drop accounting.  Set by
        #: :meth:`reset` at the warmup boundary so that samples generated
        #: before warmup but delivered after it are counted on *neither*
        #: side of the conservation equation (generated = received +
        #: dropped + in-flight).
        self.epoch = 0.0
        #: Forwarding-unit residence time (ready → receipt), µs.
        self._lat_fwd = Tally("latency_forwarding")
        #: Sample creation → receipt, incl. batch accumulation, µs.
        self._lat_total = Tally("latency_total")
        self._lat_fwd_raw: List[float] = []
        self._lat_total_raw: List[float] = []
        self._lat_fwd_flushed = 0
        self._lat_total_flushed = 0
        self.samples_generated = 0
        self.samples_received = 0
        self.batches_received = 0
        #: Samples forwarded per daemon node (local throughput numerator).
        self.forwarded_by_node: Dict[int, int] = {}
        #: Forwarding calls (system calls) per daemon node.
        self.forward_calls_by_node: Dict[int, int] = {}
        #: Merge operations performed by tree daemons, per node.
        self.merges_by_node: Dict[int, int] = {}
        #: Total time application writers spent blocked on full pipes, µs.
        self.pipe_blocked_time = 0.0
        self.pipe_blocked_puts = 0
        #: Completed application compute/communicate cycles.
        self.app_cycles = 0
        #: Barrier waits observed (sum of per-process wait time), µs.
        self.barrier_wait_time = 0.0
        self.barrier_rounds = 0
        # -- fault / recovery accounting (repro.faults) -------------------
        #: Samples dropped (never delivered), total and by reason
        #: ("loss" = retries exhausted, "overflow" = resend queue full,
        #: "crash" = lost in a crashing daemon, "corrupt" = discarded at
        #: the receiver).
        self.samples_dropped = 0
        self.drops_by_reason: Dict[str, int] = {}
        #: Batch retransmission attempts performed by daemons.
        self.retransmissions = 0
        #: Messages the network lost / corrupted.
        self.messages_lost = 0
        self.messages_corrupted = 0
        #: Forward attempts abandoned by the policy's forwarding timeout.
        self.forward_timeouts = 0
        #: Daemon crash count and accumulated downtime, µs.
        self.daemon_crashes = 0
        self.daemon_downtime = 0.0
        #: Crash → first successful forward after restart, µs.
        self.recovery_latency = Tally("recovery_latency")

    def reset(self, now: float = 0.0) -> None:
        """Restart all accumulators (used at the end of warmup).

        *now* becomes the new measurement :attr:`epoch`: samples created
        before it no longer count as received or dropped.
        """
        self.__init__()
        self.epoch = float(now)

    # -- lazily-folded latency tallies ---------------------------------
    def _flush_fwd(self) -> None:
        raw = self._lat_fwd_raw
        i = self._lat_fwd_flushed
        if i < len(raw):
            observe = self._lat_fwd.observe
            for k in range(i, len(raw)):
                observe(raw[k])
            self._lat_fwd_flushed = len(raw)

    def _flush_total(self) -> None:
        raw = self._lat_total_raw
        i = self._lat_total_flushed
        if i < len(raw):
            observe = self._lat_total.observe
            for k in range(i, len(raw)):
                observe(raw[k])
            self._lat_total_flushed = len(raw)

    @property
    def latency_forwarding(self) -> Tally:
        self._flush_fwd()
        return self._lat_fwd

    @latency_forwarding.setter
    def latency_forwarding(self, tally: Tally) -> None:
        # Values buffered so far belong to the tally being replaced, and
        # so does the raw series: restarting it keeps
        # :meth:`latency_percentiles` consistent with the new tally
        # instead of mixing observations across the replacement.
        self._flush_fwd()
        self._lat_fwd = tally
        self._lat_fwd_raw = []
        self._lat_fwd_flushed = 0

    @property
    def latency_total(self) -> Tally:
        self._flush_total()
        return self._lat_total

    @latency_total.setter
    def latency_total(self, tally: Tally) -> None:
        self._flush_total()
        self._lat_total = tally
        self._lat_total_raw = []
        self._lat_total_flushed = 0

    def latency_percentiles(self, qs=(50.0, 90.0, 99.0)) -> Dict[float, float]:
        """Order statistics of the forwarding latency, from the raw series.

        Raises :class:`ValueError` instead of silently returning garbage
        when the raw series cannot support the request: quantiles outside
        [0, 100], a series containing non-finite values, or a series that
        has fallen out of sync with the forwarding tally (someone observed
        the tally directly, bypassing :meth:`note_receipt`).  An empty
        series (no samples received) yields NaNs, the explicit
        "no data" flag.
        """
        if any(not 0.0 <= q <= 100.0 for q in qs):
            raise ValueError(f"quantiles must lie in [0, 100]: {qs}")
        if not self._lat_fwd_raw:
            if self._lat_fwd.count > 0:
                raise ValueError(
                    "forwarding-latency tally holds observations the raw "
                    "series never saw; percentiles would not describe the "
                    "same data (observe via note_receipt, not the tally)"
                )
            return {q: math.nan for q in qs}
        self._flush_fwd()
        if self._lat_fwd.count != len(self._lat_fwd_raw):
            raise ValueError(
                "raw latency series out of sync with the forwarding tally "
                f"({len(self._lat_fwd_raw)} raw vs {self._lat_fwd.count} "
                "tallied); percentiles would mix data sets"
            )
        arr = np.asarray(self._lat_fwd_raw)
        if not np.all(np.isfinite(arr)):
            raise ValueError("non-finite forwarding latency observed")
        values = np.percentile(arr, qs)
        return {q: float(v) for q, v in zip(qs, values)}

    def note_forward(self, node: int, n_samples: int) -> None:
        self.forwarded_by_node[node] = self.forwarded_by_node.get(node, 0) + n_samples
        self.forward_calls_by_node[node] = self.forward_calls_by_node.get(node, 0) + 1

    def note_merge(self, node: int) -> None:
        self.merges_by_node[node] = self.merges_by_node.get(node, 0) + 1

    def note_receipt(self, now: float, created_at: float, ready_at: float) -> bool:
        """Record one sample's receipt; returns whether it was counted.

        Samples created before the measurement :attr:`epoch` (i.e. before
        the warmup boundary) are ignored — they were never counted as
        generated, so counting their receipt would break conservation.
        """
        if created_at < self.epoch:
            return False
        self.samples_received += 1
        self._lat_total_raw.append(now - created_at)
        self._lat_fwd_raw.append(now - ready_at)
        return True

    def note_drop(self, node: int, n_samples: int, reason: str) -> None:
        """Account *n_samples* dropped at *node* for *reason*."""
        self.samples_dropped += n_samples
        self.drops_by_reason[reason] = (
            self.drops_by_reason.get(reason, 0) + n_samples
        )

    def note_drop_samples(self, node: int, samples, reason: str) -> None:
        """Account dropped *samples* (epoch-filtered, see note_receipt)."""
        epoch = self.epoch
        n = sum(1 for s in samples if s.created_at >= epoch)
        if n:
            self.note_drop(node, n, reason)


@dataclass
class SimulationResults:
    """Frozen outcome of one ROCC simulation run.

    Times are in µs unless stated; utilizations are fractions in [0, 1].
    "Per node" quantities are averaged over nodes for the global level
    of detail; ``node0_*`` fields give the arbitrarily-selected single
    node used by the paper's local level of detail.
    """

    # Run identity.
    config_summary: str
    duration: float  # measured duration (post-warmup), µs
    nodes: int

    # Direct IS overhead (per node averages).
    pd_cpu_time_per_node: float
    main_cpu_time: float
    pvmd_cpu_time_per_node: float = 0.0
    other_cpu_time_per_node: float = 0.0
    app_cpu_time_per_node: float = 0.0

    # Single-node (local detail) values.
    node0_pd_cpu_time: float = 0.0
    node0_app_cpu_time: float = 0.0

    # Utilizations.
    pd_cpu_utilization_per_node: float = 0.0
    app_cpu_utilization_per_node: float = 0.0
    main_cpu_utilization: float = 0.0
    is_cpu_utilization_per_node: float = 0.0
    network_utilization: float = 0.0
    pd_network_utilization: float = 0.0

    # Latency / throughput.
    monitoring_latency_forwarding: float = float("nan")
    monitoring_latency_total: float = float("nan")
    # Order statistics of the forwarding latency (µs), computed from the
    # raw receipt series at finalize time.
    monitoring_latency_p50: float = float("nan")
    monitoring_latency_p90: float = float("nan")
    monitoring_latency_p99: float = float("nan")
    throughput_per_daemon: float = 0.0  # samples forwarded / sec / daemon
    received_throughput: float = 0.0  # samples received at main / sec

    # Counters.
    samples_generated: int = 0
    samples_received: int = 0
    batches_received: int = 0
    forward_calls_per_node: float = 0.0
    merges_total: int = 0

    # Pipe / barrier diagnostics.
    pipe_blocked_time: float = 0.0
    pipe_blocked_puts: int = 0
    barrier_wait_time: float = 0.0
    barrier_rounds: int = 0
    app_cycles: int = 0

    # Fault / recovery outcome (zero / NaN when no faults injected).
    samples_dropped: int = 0
    drops_by_reason: Dict = field(default_factory=dict)
    retransmissions: int = 0
    messages_lost: int = 0
    messages_corrupted: int = 0
    forward_timeouts: int = 0
    daemon_crashes: int = 0
    daemon_downtime: float = 0.0  # µs, summed over daemons
    recovery_latency: float = float("nan")  # mean crash → first forward, µs

    # Raw per-node CPU busy breakdown (µs), keyed by (node, process type).
    cpu_busy: Dict = field(default_factory=dict, repr=False)

    # Observability provenance (repro.obs): empty dict when the run was
    # untraced; span/counter-sample counts for this run when traced.
    observability: Dict = field(default_factory=dict, repr=False)

    # -- convenience -----------------------------------------------------
    @property
    def duration_seconds(self) -> float:
        return self.duration / 1e6

    @property
    def pd_cpu_seconds_per_node(self) -> float:
        """Direct Pd overhead as CPU-seconds (Table 4/5/6 units)."""
        return self.pd_cpu_time_per_node / 1e6

    @property
    def main_cpu_seconds(self) -> float:
        return self.main_cpu_time / 1e6

    @property
    def is_cpu_seconds_per_node(self) -> float:
        """IS (daemons + main) CPU-seconds per node — Table 5 units."""
        return (self.pd_cpu_time_per_node + self.main_cpu_time / self.nodes) / 1e6

    @property
    def monitoring_latency_forwarding_ms(self) -> float:
        return self.monitoring_latency_forwarding / 1e3

    @property
    def monitoring_latency_total_ms(self) -> float:
        return self.monitoring_latency_total / 1e3

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated samples that reached the main process."""
        if self.samples_generated == 0:
            return float("nan")
        return self.samples_received / self.samples_generated

    @property
    def drop_ratio(self) -> float:
        """Fraction of generated samples dropped by faults/policy."""
        if self.samples_generated == 0:
            return float("nan")
        return self.samples_dropped / self.samples_generated

    @property
    def daemon_downtime_seconds(self) -> float:
        return self.daemon_downtime / 1e6

    @property
    def recovery_latency_ms(self) -> float:
        return self.recovery_latency / 1e3
