"""Forwarding topologies: direct and binary-tree (Figure 4).

Under **direct** forwarding every daemon sends straight to the main
Paradyn process.  Under **binary-tree** forwarding the nodes are
logically arranged as a binary heap: node *i*'s parent is
``(i - 1) // 2``; node 0's daemon forwards to the main process, and
every non-leaf daemon receives, merges, and relays its children's
batches (§2.1, §3.3).
"""

from __future__ import annotations

from typing import Callable, List

__all__ = [
    "parent_index",
    "children_indices",
    "is_leaf",
    "tree_depth",
    "expected_hops",
    "live_ancestor",
]


def parent_index(i: int) -> int:
    """Heap parent of node *i* (node 0 forwards to the main process)."""
    if i <= 0:
        raise ValueError("node 0 has no parent daemon (it sends to Paradyn)")
    return (i - 1) // 2


def children_indices(i: int, n: int) -> List[int]:
    """Heap children of node *i* that exist in an *n*-node system."""
    if i < 0 or i >= n:
        raise ValueError(f"node {i} outside system of {n} nodes")
    return [c for c in (2 * i + 1, 2 * i + 2) if c < n]


def is_leaf(i: int, n: int) -> bool:
    """Whether node *i* has no children in an *n*-node system."""
    return 2 * i + 1 >= n


def tree_depth(n: int) -> int:
    """Depth of the binary tree over *n* nodes (root at depth 0)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    depth, span = 0, 1
    total = 1
    while total < n:
        depth += 1
        span *= 2
        total += span
    return depth


def live_ancestor(i: int, is_down: Callable[[int], bool]) -> int:
    """Nearest ancestor of node *i* whose daemon is up, or ``-1``.

    Used by the reroute recovery policy: a daemon whose parent crashed
    delivers to the closest live ancestor on the heap path instead of
    piling batches into a dead daemon's inbox.  ``-1`` means every
    ancestor (including the root) is down and the batch should go
    straight to the main Paradyn process.
    """
    if i <= 0:
        raise ValueError("node 0 has no ancestor daemon (it sends to Paradyn)")
    j = i
    while j > 0:
        j = (j - 1) // 2
        if not is_down(j):
            return j
    return -1


def expected_hops(n: int) -> float:
    """Mean number of relay hops a node-local batch takes to the root.

    Node *i* at heap depth d(i) is relayed d(i) times before node 0's
    link to the main process; used to sanity-check tree latency.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    total = 0
    for i in range(n):
        d = 0
        j = i
        while j > 0:
            j = (j - 1) // 2
            d += 1
        total += d
    return total / n
