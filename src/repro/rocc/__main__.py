"""Command-line ROCC simulation runner.

Usage examples::

    python -m repro.rocc --nodes 8 --period-ms 40 --batch 32
    python -m repro.rocc --arch smp --nodes 16 --apps 32 --daemons 2
    python -m repro.rocc --arch mpp --nodes 64 --tree --aggregated
    python -m repro.rocc --nodes 4 --period-ms 2 --adaptive-budget 0.01
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from ..workload.generators import TrafficSpec
from .adaptive import RegulatorConfig
from .aggregate import simulate_aggregated
from .config import Architecture, ForwardingTopology, SimulationConfig
from .metrics import SimulationResults
from .system import simulate


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.rocc",
        description="Simulate the Paradyn instrumentation system (ROCC model)",
    )
    parser.add_argument("--arch", choices=["now", "smp", "mpp"], default="now")
    parser.add_argument("--nodes", type=int, default=8,
                        help="nodes (NOW/MPP) or CPUs (SMP)")
    parser.add_argument("--apps", type=int, default=1,
                        help="application processes per node (total on SMP)")
    parser.add_argument("--daemons", type=int, default=1,
                        help="Paradyn daemons (SMP only)")
    parser.add_argument("--period-ms", type=float, default=40.0,
                        help="sampling period, milliseconds")
    parser.add_argument("--batch", type=int, default=1,
                        help="batch size (1 = CF policy)")
    parser.add_argument("--tree", action="store_true",
                        help="binary-tree forwarding (MPP)")
    parser.add_argument("--barrier-ms", type=float, default=None,
                        help="barrier period, milliseconds")
    parser.add_argument("--duration-s", type=float, default=5.0,
                        help="simulated duration, seconds")
    parser.add_argument("--warmup-s", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--aggregated", action="store_true",
                        help="use the large-n aggregated mode")
    parser.add_argument("--uninstrumented", action="store_true",
                        help="baseline run without the IS")
    parser.add_argument("--adaptive-budget", type=float, default=None,
                        help="enable overhead regulation at this CPU fraction")
    parser.add_argument("--workload", metavar="NAME[:k=v,...]", default=None,
                        help="open-workload traffic spec driving external "
                        "requests into the nodes (e.g. 'stationary:rate=200', "
                        "'open:avg_users=100,rpm=60'); see "
                        "repro.workload.generators for the registry")
    parser.add_argument("--plan", action="store_true",
                        help="adaptive replication: repeat the run with "
                        "fresh replication substreams until the 90%% CI "
                        "half-widths of the key metrics reach --ci-target "
                        "(or --budget replications), and report means "
                        "with confidence intervals")
    parser.add_argument("--ci-target", type=float, default=0.35,
                        metavar="FRACTION",
                        help="relative CI half-width target for --plan "
                        "(default: 0.35)")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="cap on total replications for --plan "
                        "(default: the per-cell cap, 8)")
    parser.add_argument("--lp-workers", type=int, default=None, metavar="K",
                        help="partition the run across K parallel LP worker "
                        "processes (conservative sync; default: "
                        "REPRO_DES_PARALLEL, else sequential); ineligible "
                        "configurations fall back to the sequential kernel")
    parser.add_argument("--profile", action="store_true",
                        help="print a kernel profile of the run "
                        "(where the simulator's wall time went)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="record spans and occupancy tracks of the run "
                        "and write a trace to PATH (.jsonl for JSONL, "
                        "otherwise Perfetto-loadable trace_event JSON; "
                        "default: $REPRO_TRACE)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline for the run (kernel "
                        "watchdog); exceeded runs abort and are retried "
                        "per --max-retries")
    parser.add_argument("--max-retries", type=int, default=0, metavar="N",
                        help="retries on transient failures (stalls, "
                        "deadline breaches); default 0")
    parser.add_argument("--resume", metavar="JOURNAL", default=None,
                        help="journal the run to this JSONL file and, on a "
                        "re-run, serve a completed result from it instead "
                        "of simulating again")
    parser.add_argument("--strict", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="with --no-strict, a run that exhausts its "
                        "retries prints a failure report and exits 1 "
                        "instead of raising")
    return parser


def config_from_args(args: argparse.Namespace) -> SimulationConfig:
    adaptive = (
        RegulatorConfig(budget=args.adaptive_budget)
        if args.adaptive_budget is not None
        else None
    )
    traffic = getattr(args, "workload", None)
    return SimulationConfig(
        traffic=TrafficSpec.parse(traffic) if traffic is not None else None,
        architecture=Architecture(args.arch),
        nodes=args.nodes,
        app_processes_per_node=args.apps,
        daemons=args.daemons,
        sampling_period=args.period_ms * 1000.0,
        batch_size=args.batch,
        forwarding=(
            ForwardingTopology.TREE if args.tree else ForwardingTopology.DIRECT
        ),
        barrier_period=(
            args.barrier_ms * 1000.0 if args.barrier_ms is not None else None
        ),
        duration=args.duration_s * 1e6,
        warmup=args.warmup_s * 1e6,
        instrumented=not args.uninstrumented,
        adaptive=adaptive,
        seed=args.seed,
    )


def format_results(r: SimulationResults) -> str:
    lines = [
        f"configuration : {r.config_summary}",
        f"Pd CPU/node   : {r.pd_cpu_seconds_per_node:.4f} s "
        f"({100 * r.pd_cpu_utilization_per_node:.3f} %)",
        f"main CPU      : {r.main_cpu_seconds:.4f} s "
        f"({100 * r.main_cpu_utilization:.3f} %)",
        f"app CPU/node  : {r.app_cpu_time_per_node / 1e6:.3f} s "
        f"({100 * r.app_cpu_utilization_per_node:.1f} %)",
        f"samples       : {r.samples_received}/{r.samples_generated} delivered",
        f"throughput/Pd : {r.throughput_per_daemon:.1f} samples/s",
    ]
    if r.samples_received:
        lines.append(
            f"latency       : {r.monitoring_latency_forwarding_ms:.3f} ms "
            f"forwarding, {r.monitoring_latency_total_ms:.1f} ms total"
        )
    if r.pipe_blocked_puts:
        lines.append(
            f"pipe blocking : {r.pipe_blocked_puts} puts, "
            f"{r.pipe_blocked_time / 1e3:.1f} ms"
        )
    if r.barrier_rounds:
        lines.append(f"barriers      : {r.barrier_rounds} rounds")
    if r.merges_total:
        lines.append(f"tree merges   : {r.merges_total}")
    if r.open_arrivals:
        line = (
            f"open workload : {r.open_completed}/{r.open_arrivals} requests "
            f"served @ {r.open_offered_rate:.1f} req/s offered"
        )
        if r.open_latency_mean == r.open_latency_mean:  # not NaN
            line += f", {r.open_latency_mean / 1e3:.2f} ms latency"
        if r.open_active_users == r.open_active_users:
            line += f", {r.open_active_users:.1f} users"
        lines.append(line)
    return "\n".join(lines)


#: Metrics the --plan mode drives to the precision target and reports.
_PLAN_METRICS = (
    "pd_cpu_time_per_node",
    "main_cpu_time",
    "monitoring_latency_forwarding",
)


def _planned_run(args, config) -> int:
    """--plan path: adaptive replication of the one configuration."""
    from ..experiments.engine import CellCache
    from ..experiments.resilience import ResilientEngine, RetryPolicy
    from ..planner import (
        ReplicationBudget,
        ReplicationPolicy,
        adaptive_replicate,
        predict,
    )

    cap = args.budget if args.budget is not None else 8
    policy = ReplicationPolicy(
        ci_target=args.ci_target,
        metrics=_PLAN_METRICS,
        min_replications=min(2, cap),
        max_replications=cap,
    )
    budget = ReplicationBudget(total=args.budget)
    with ResilientEngine(
        workers=1,
        lp_workers=args.lp_workers,
        cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=args.max_retries + 1),
        cell_timeout=args.cell_timeout,
        journal=args.resume,
        strict=args.strict,
    ) as engine:
        res = adaptive_replicate(
            config, policy, budget,
            aggregated=args.aggregated, engine=engine,
        )
    n = len(res.results)
    print(f"configuration : {res.config_summary}")
    print(f"replications  : {n} (target rel. CI half-width "
          f"{args.ci_target:.2f} at 90%)")
    pred = predict(config)
    for name in _PLAN_METRICS:
        ci = res.mean_ci(name)
        if ci.n == 0:
            print(f"{name:32s}: no finite observations")
            continue
        hw = "inf" if ci.degenerate else f"{ci.half_width:.4g}"
        rel = (
            "-" if not (ci.relative_half_width
                        == ci.relative_half_width)
            else ("inf" if ci.relative_half_width == float("inf")
                  else f"{100 * ci.relative_half_width:.1f}%")
        )
        line = (
            f"{name:32s}: {ci.mean:.6g} ± {hw} µs "
            f"(rel {rel}, n={ci.n})"
        )
        analytic = pred.metrics.get(name)
        if analytic is not None and analytic == analytic:
            line += f" [analytic: {analytic:.6g}]"
        print(line)
    if pred.applicable and pred.saturated:
        print("note: analytic model predicts saturation for this "
              "configuration")
    return 0


def _resilient_run(args, config):
    """Run the single cell through a :class:`ResilientEngine` so the
    CLI gets deadlines, retries, and journal resume; returns
    ``(results_or_None, failure_report)``."""
    from ..experiments.engine import CellCache, CellError
    from ..experiments.resilience import ResilientEngine, RetryPolicy

    with ResilientEngine(
        workers=1,
        lp_workers=args.lp_workers,
        # No memoization surprises for a CLI one-off: completed runs are
        # only reused when the user opts into a --resume journal.
        cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=args.max_retries + 1),
        cell_timeout=args.cell_timeout,
        journal=args.resume,
        strict=args.strict,
    ) as engine:
        (outcome,) = engine.run_cells([config], aggregated=args.aggregated)
        if engine.stats.profile is not None:
            # _run_cell consumed the kernel profile; republish it so the
            # --profile printout below still sees the (merged) run.
            from ..des.profiling import set_last_profile

            set_last_profile(engine.stats.profile)
        if isinstance(outcome, CellError):
            return None, engine.failure_report
        return outcome, engine.failure_report


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.lp_workers is not None and args.lp_workers < 1:
        parser.error(
            f"--lp-workers must be >= 1, got {args.lp_workers}"
        )
    if args.ci_target <= 0:
        parser.error("--ci-target must be positive")
    if args.budget is not None and args.budget < 1:
        parser.error("--budget must be >= 1")
    try:
        config = config_from_args(args)
    except ValueError as exc:
        parser.error(str(exc))
    if args.plan:
        return _planned_run(args, config)
    if args.aggregated:
        runner = simulate_aggregated
    else:
        def runner(cfg):
            return simulate(cfg, lp_workers=args.lp_workers)
    if args.profile:
        os.environ["REPRO_PROFILE"] = "1"
    from ..obs import (
        export_trace,
        registry,
        summarize,
        trace_path_from_env,
        use_tracing,
    )

    resilient = (
        args.cell_timeout is not None
        or args.max_retries > 0
        or args.resume is not None
        or not args.strict
    )
    trace_out = args.trace_out or trace_path_from_env()
    report = None
    if trace_out:
        with use_tracing() as tracer:
            if resilient:
                results, report = _resilient_run(args, config)
            else:
                results = runner(config)
        path = export_trace(tracer, trace_out, registry())
    elif resilient:
        results, report = _resilient_run(args, config)
    else:
        results = runner(config)
    if results is None:
        print(report.format())
        return 1
    print(format_results(results))
    if report is not None and (report.retries or report.cell_timeouts):
        print(f"[resilience: {report.summary()}]")
    if args.profile:
        from ..des.profiling import format_profile, take_last_profile

        print(format_profile(take_last_profile()))
    if trace_out:
        print(summarize(tracer, registry()))
        print(f"[trace written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
