"""Round-robin CPU scheduler with a fixed quantum (ROCC CPU resource).

The paper's ROCC model shares each node's CPU(s) among application, IS,
and other processes under the operating system's round-robin policy
with a 10 ms quantum (Table 2).  :class:`RoundRobinCPU` implements that
exactly: occupancy requests join a FIFO ready queue; each of the
``n_cpus`` processors repeatedly takes the head request, runs it for
``min(quantum, remaining)``, and re-queues it at the tail if unfinished
("time out" transition of Figure 6).

The scheduler is *event-driven*: there are no server processes.  A
request that finds a free processor schedules its first slice directly;
slice-expiry and completion are kernel events whose callbacks charge
accounting and dispatch the next queued job.  A request shorter than
one quantum — the overwhelmingly common case for daemon collect/forward
costs against a 10 ms quantum — therefore costs exactly one kernel
event (its completion), where the process-per-server shape cost a
wake-up, a hold, and a separate completion event.

A processor-sharing variant (:class:`ProcessorSharingCPU`) is provided
for the ablation study of quantum effects (DESIGN.md §5.2): it services
each request in one piece but stretches it by the instantaneous load,
which is the fluid limit the RR policy approaches as quantum → 0.

Accounting note: busy time is charged when a slice *completes*, so a
run cut off mid-slice under-counts by at most one quantum per server —
≤ 10 ms against simulated seconds, negligible for every reported
metric and consistent between compared configurations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..des.core import Environment
from ..des.events import NORMAL, PENDING, Event
from ..des.monitor import TimeWeighted
from ..workload.records import ProcessType

__all__ = ["CPUJob", "RoundRobinCPU", "ProcessorSharingCPU"]


class CPUJob:
    """A CPU occupancy request queued at the scheduler."""

    __slots__ = ("remaining", "owner", "event", "enqueued_at")

    def __init__(self, amount: float, owner: ProcessType, event: Event, now: float):
        self.remaining = amount
        self.owner = owner
        self.event = event
        self.enqueued_at = now


class CPUDone(Event):
    """Completion event of one CPU request.

    Returned by :meth:`RoundRobinCPU.execute` and scheduled when the
    job's *final* slice starts.  It stays untriggered until it pops;
    ``_finish`` (its first callback) charges the slice and hands the
    processor to the next queued job before any waiter resumes.
    """

    __slots__ = ("_cpu", "_owner", "_slice")

    def __init__(self, cpu: "RoundRobinCPU", owner: ProcessType):
        self.env = cpu.env
        self.callbacks = [self._finish]
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._cpu = cpu
        self._owner = owner
        self._slice = 0.0

    def _finish(self, _event: Event) -> None:
        cpu = self._cpu
        busy = cpu.busy_by_owner
        owner = self._owner
        busy[owner] = busy.get(owner, 0.0) + self._slice
        self._value = None
        ready = cpu._ready
        if ready:
            cpu._start(ready.popleft())
        else:
            cpu._free += 1
            cpu.busy_servers.increment(-1, cpu.env._now)


class CPUSlice(Event):
    """An intermediate round-robin quantum of a longer request.

    Pure kernel bookkeeping: nobody waits on it, so it is created
    already-triggered and defused; its callback re-queues the job at
    the ready-queue tail and dispatches the head ("time out").
    """

    __slots__ = ("_cpu", "_job")

    def __init__(self, cpu: "RoundRobinCPU", job: CPUJob):
        self.env = cpu.env
        self.callbacks = [self._expire]
        self._value = None
        self._ok = True
        self._defused = True
        self._cpu = cpu
        self._job = job

    def _expire(self, _event: Event) -> None:
        # An intermediate slice is always exactly one quantum (anything
        # shorter would have been the final slice).
        cpu = self._cpu
        job = self._job
        quantum = cpu.quantum
        busy = cpu.busy_by_owner
        busy[job.owner] = busy.get(job.owner, 0.0) + quantum
        job.remaining -= quantum
        ready = cpu._ready
        ready.append(job)
        cpu._start(ready.popleft())


class RoundRobinCPU:
    """``n_cpus`` identical CPUs draining one round-robin ready queue.

    Parameters
    ----------
    env:
        Simulation environment.
    n_cpus:
        Number of processors (1 for NOW/MPP nodes, the machine size for
        the SMP model).
    quantum:
        Scheduling quantum in µs (Table 2: 10 000).
    name:
        Label for diagnostics.
    """

    def __init__(
        self,
        env: Environment,
        n_cpus: int = 1,
        quantum: float = 10_000.0,
        name: str = "cpu",
    ):
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.env = env
        self.n_cpus = int(n_cpus)
        self.quantum = float(quantum)
        self.name = name
        #: Relative execution speed (1.0 = nominal).  A fault-injected
        #: slowdown episode lowers it; requests submitted while it is in
        #: effect are stretched by ``1 / speed``.  Already-queued jobs
        #: keep their nominal durations (a documented approximation).
        self.speed = 1.0
        self._ready: Deque[CPUJob] = deque()
        self._free = self.n_cpus
        #: Accumulated busy time per owning process class, µs.
        self.busy_by_owner: Dict[ProcessType, float] = {}
        #: Time-weighted number of busy servers (for utilization).
        self.busy_servers = TimeWeighted(f"{name}.busy", start_time=env.now)

    # ------------------------------------------------------------------
    def execute(self, amount: float, owner: ProcessType) -> Event:
        """Submit a CPU occupancy request; the event fires on completion."""
        if amount <= 0.0:
            done = Event(self.env)
            done.succeed()
            return done
        done = CPUDone(self, owner)
        scaled = float(amount) / self.speed
        quantum = self.quantum
        slice_ = scaled if scaled < quantum else quantum
        if self._free and scaled - slice_ <= 1e-9:
            # Free processor, fits one slice (the common case for daemon
            # collect/forward costs against a 10 ms quantum): schedule
            # completion directly, no ready-queue job.  The slice algebra
            # mirrors ``_start`` exactly so timestamps are identical to
            # the queued path.
            self._free -= 1
            env = self.env
            self.busy_servers.increment(+1, env._now)
            done._slice = slice_
            env._push((env._now + slice_, NORMAL, next(env._eid), done))
            return done
        self._enqueue(CPUJob(scaled, owner, done, self.env.now))
        return done

    def set_speed(self, speed: float) -> None:
        """Set the relative execution speed (fault-injection hook)."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.speed = float(speed)

    @property
    def queue_length(self) -> int:
        """Jobs currently in the ready queue (excludes running slices)."""
        return len(self._ready)

    def utilization(self, now: Optional[float] = None) -> float:
        """Time-averaged fraction of CPUs busy up to *now*."""
        t = self.env.now if now is None else now
        return self.busy_servers.time_average(t) / self.n_cpus

    def busy_time(self, owner: ProcessType) -> float:
        """Total CPU time consumed by *owner*'s requests so far, µs."""
        return self.busy_by_owner.get(owner, 0.0)

    # ------------------------------------------------------------------
    def _enqueue(self, job: CPUJob) -> None:
        if self._free:
            self._free -= 1
            self.busy_servers.increment(+1, self.env.now)
            self._start(job)
        else:
            self._ready.append(job)

    def _start(self, job: CPUJob) -> None:
        """Schedule the next slice of *job* on the processor just freed.

        Back-to-back dispatch from a finishing slice's callback leaves
        ``busy_servers`` untouched — the zero-width -1/+1 dip would
        contribute nothing to the time integral.
        """
        remaining = job.remaining
        quantum = self.quantum
        slice_ = remaining if remaining < quantum else quantum
        if remaining - slice_ > 1e-9:
            ev: Event = CPUSlice(self, job)
        else:
            ev = job.event
            ev._slice = slice_
        env = self.env
        env._push((env._now + slice_, NORMAL, next(env._eid), ev))


class ProcessorSharingCPU(RoundRobinCPU):
    """Idealized processor-sharing CPU (quantum → 0 fluid limit).

    Used only by the ablation benchmark comparing RR-with-quantum to PS.
    Implementation: virtual-time processor sharing — each job's service
    advances at rate ``min(1, n_cpus / n_active)``; completions are
    recomputed whenever the active set changes.
    """

    def __init__(
        self,
        env: Environment,
        n_cpus: int = 1,
        quantum: float = 10_000.0,  # ignored; kept for API parity
        name: str = "cpu-ps",
    ):
        super().__init__(env, n_cpus=n_cpus, quantum=quantum, name=name)
        self._active: Dict[CPUJob, float] = {}  # job -> remaining
        self._recalc = Event(env)
        env.process(self._ps_loop(), name=f"{name}.ps")

    def execute(self, amount: float, owner: ProcessType) -> Event:
        # PS completions are plain events triggered by the loop below;
        # the RR slice machinery (CPUDone/CPUSlice) is never engaged.
        done = Event(self.env)
        if amount <= 0.0:
            done.succeed()
            return done
        self._enqueue(CPUJob(float(amount) / self.speed, owner, done, self.env.now))
        return done

    def _enqueue(self, job: CPUJob) -> None:  # type: ignore[override]
        self._active[job] = job.remaining
        if not self._recalc.triggered:
            self._recalc.succeed()

    def _rate(self) -> float:
        n = len(self._active)
        return min(1.0, self.n_cpus / n) if n else 0.0

    def _ps_loop(self):
        env = self.env
        last = env.now
        while True:
            if not self._active:
                self._recalc = Event(env)
                yield self._recalc
                last = env.now
                continue
            rate = self._rate()
            self.busy_servers.update(min(len(self._active), self.n_cpus), env.now)
            # Snapshot the active set: progress accrues only to jobs that
            # were present during the interval, not to mid-interval arrivals.
            in_service = list(self._active)
            soonest = min(self._active.values()) / rate
            self._recalc = Event(env)
            timeout = env.timeout(soonest)
            yield timeout | self._recalc
            elapsed = env.now - last
            last = env.now
            progress = elapsed * rate
            finished = []
            for job in in_service:
                self._active[job] -= progress
                self.busy_by_owner[job.owner] = (
                    self.busy_by_owner.get(job.owner, 0.0) + progress
                )
                if self._active[job] <= 1e-9:
                    finished.append(job)
            for job in finished:
                del self._active[job]
                job.event.succeed()
            if not self._active:
                self.busy_servers.update(0, env.now)
