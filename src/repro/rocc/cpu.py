"""Round-robin CPU scheduler with a fixed quantum (ROCC CPU resource).

The paper's ROCC model shares each node's CPU(s) among application, IS,
and other processes under the operating system's round-robin policy
with a 10 ms quantum (Table 2).  :class:`RoundRobinCPU` implements that
exactly: occupancy requests join a FIFO ready queue; each of the
``n_cpus`` servers repeatedly dequeues the head request, runs it for
``min(quantum, remaining)``, and re-queues it at the tail if unfinished
("time out" transition of Figure 6).

A processor-sharing variant (:class:`ProcessorSharingCPU`) is provided
for the ablation study of quantum effects (DESIGN.md §5.2): it services
each request in one piece but stretches it by the instantaneous load,
which is the fluid limit the RR policy approaches as quantum → 0.

Accounting note: busy time is charged when a slice *completes*, so a
run cut off mid-slice under-counts by at most one quantum per server —
≤ 10 ms against simulated seconds, negligible for every reported
metric and consistent between compared configurations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..des.core import Environment
from ..des.events import Event
from ..des.monitor import TimeWeighted
from ..workload.records import ProcessType

__all__ = ["CPUJob", "RoundRobinCPU", "ProcessorSharingCPU"]


class CPUJob:
    """A CPU occupancy request queued at the scheduler."""

    __slots__ = ("remaining", "owner", "event", "enqueued_at")

    def __init__(self, amount: float, owner: ProcessType, event: Event, now: float):
        self.remaining = amount
        self.owner = owner
        self.event = event
        self.enqueued_at = now


class RoundRobinCPU:
    """``n_cpus`` identical CPUs draining one round-robin ready queue.

    Parameters
    ----------
    env:
        Simulation environment.
    n_cpus:
        Number of processors (1 for NOW/MPP nodes, the machine size for
        the SMP model).
    quantum:
        Scheduling quantum in µs (Table 2: 10 000).
    name:
        Label for diagnostics.
    """

    def __init__(
        self,
        env: Environment,
        n_cpus: int = 1,
        quantum: float = 10_000.0,
        name: str = "cpu",
    ):
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.env = env
        self.n_cpus = int(n_cpus)
        self.quantum = float(quantum)
        self.name = name
        #: Relative execution speed (1.0 = nominal).  A fault-injected
        #: slowdown episode lowers it; requests submitted while it is in
        #: effect are stretched by ``1 / speed``.  Already-queued jobs
        #: keep their nominal durations (a documented approximation).
        self.speed = 1.0
        self._ready: Deque[CPUJob] = deque()
        self._idle: Deque[Event] = deque()  # wake events of idle servers
        #: Accumulated busy time per owning process class, µs.
        self.busy_by_owner: Dict[ProcessType, float] = {}
        #: Time-weighted number of busy servers (for utilization).
        self.busy_servers = TimeWeighted(f"{name}.busy", start_time=env.now)
        for i in range(self.n_cpus):
            env.process(self._server(), name=f"{name}.server{i}")

    # ------------------------------------------------------------------
    def execute(self, amount: float, owner: ProcessType) -> Event:
        """Submit a CPU occupancy request; the event fires on completion."""
        done = Event(self.env)
        if amount <= 0.0:
            done.succeed()
            return done
        job = CPUJob(float(amount) / self.speed, owner, done, self.env.now)
        self._enqueue(job)
        return done

    def set_speed(self, speed: float) -> None:
        """Set the relative execution speed (fault-injection hook)."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.speed = float(speed)

    @property
    def queue_length(self) -> int:
        """Jobs currently in the ready queue (excludes running slices)."""
        return len(self._ready)

    def utilization(self, now: Optional[float] = None) -> float:
        """Time-averaged fraction of CPUs busy up to *now*."""
        t = self.env.now if now is None else now
        return self.busy_servers.time_average(t) / self.n_cpus

    def busy_time(self, owner: ProcessType) -> float:
        """Total CPU time consumed by *owner*'s requests so far, µs."""
        return self.busy_by_owner.get(owner, 0.0)

    # ------------------------------------------------------------------
    def _enqueue(self, job: CPUJob) -> None:
        self._ready.append(job)
        if self._idle:
            self._idle.popleft().succeed()

    def _server(self):
        # Hot loop: locals are hoisted, slices sleep on the allocation-free
        # ``env.hold`` fast path, and the paired busy_servers -1/+1 at the
        # same instant (server continues with the next job) collapses into
        # no update at all — the zero-width dip contributes nothing to the
        # time integral.  Per-slice ``busy_by_owner`` accounting is kept
        # in submission order so reported CPU times stay bit-identical.
        env = self.env
        hold = env.hold
        busy = self.busy_by_owner
        ready = self._ready
        idle = self._idle
        quantum = self.quantum
        increment = self.busy_servers.increment
        running = False
        while True:
            if not ready:
                if running:
                    increment(-1, env.now)
                    running = False
                wake = Event(env)
                idle.append(wake)
                yield wake
                continue
            job = ready.popleft()
            slice_ = job.remaining if job.remaining < quantum else quantum
            if not running:
                increment(+1, env.now)
                running = True
            yield hold(slice_)
            busy[job.owner] = busy.get(job.owner, 0.0) + slice_
            job.remaining -= slice_
            if job.remaining > 1e-9:
                ready.append(job)  # tail: round robin
            else:
                job.event.succeed()


class ProcessorSharingCPU(RoundRobinCPU):
    """Idealized processor-sharing CPU (quantum → 0 fluid limit).

    Used only by the ablation benchmark comparing RR-with-quantum to PS.
    Implementation: virtual-time processor sharing — each job's service
    advances at rate ``min(1, n_cpus / n_active)``; completions are
    recomputed whenever the active set changes.
    """

    def __init__(
        self,
        env: Environment,
        n_cpus: int = 1,
        quantum: float = 10_000.0,  # ignored; kept for API parity
        name: str = "cpu-ps",
    ):
        super().__init__(env, n_cpus=n_cpus, quantum=quantum, name=name)
        # The RR servers spawned by the base class idle forever; PS keeps
        # its own active set.
        self._active: Dict[CPUJob, float] = {}  # job -> remaining
        self._recalc = Event(env)
        env.process(self._ps_loop(), name=f"{name}.ps")

    def _enqueue(self, job: CPUJob) -> None:  # type: ignore[override]
        self._active[job] = job.remaining
        if not self._recalc.triggered:
            self._recalc.succeed()

    def _server(self):  # type: ignore[override]
        # Base-class servers unused in PS mode.
        yield Event(self.env)

    def _rate(self) -> float:
        n = len(self._active)
        return min(1.0, self.n_cpus / n) if n else 0.0

    def _ps_loop(self):
        env = self.env
        last = env.now
        while True:
            if not self._active:
                self._recalc = Event(env)
                yield self._recalc
                last = env.now
                continue
            rate = self._rate()
            self.busy_servers.update(min(len(self._active), self.n_cpus), env.now)
            # Snapshot the active set: progress accrues only to jobs that
            # were present during the interval, not to mid-interval arrivals.
            in_service = list(self._active)
            soonest = min(self._active.values()) / rate
            self._recalc = Event(env)
            timeout = env.timeout(soonest)
            yield timeout | self._recalc
            elapsed = env.now - last
            last = env.now
            progress = elapsed * rate
            finished = []
            for job in in_service:
                self._active[job] -= progress
                self.busy_by_owner[job.owner] = (
                    self.busy_by_owner.get(job.owner, 0.0) + progress
                )
                if self._active[job] <= 1e-9:
                    finished.append(job)
            for job in finished:
                del self._active[job]
                job.event.succeed()
            if not self._active:
                self.busy_servers.update(0, env.now)
