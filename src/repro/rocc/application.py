"""The instrumented application process of the ROCC model.

Implements the simplified two-state behaviour of Figure 7 — alternating
Computation (CPU occupancy) and Communication (network occupancy)
bursts — augmented with:

* the **sampling timer**: every ``sampling_period`` a performance-data
  sample is created and written into the daemon pipe; a full pipe
  blocks the application, the effect §4.3.3 analyzes;
* optional **global barriers** every ``barrier_period`` µs of CPU work
  (Figure 28): a burst never crosses a barrier point, and the process
  waits until every application process in the system arrives.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..workload.records import ProcessType
from .node import CyclicBarrier, NodeContext
from .pipes import SamplePipe
from .requests import Sample

__all__ = ["ApplicationProcess"]


class ApplicationProcess:
    """One application process on one node.

    ``sampler_state``, when given, is an
    :class:`~repro.rocc.adaptive.AdaptiveSampler` whose ``period`` the
    sampling timer re-reads every tick, letting an overhead regulator
    adjust the rate mid-run.
    """

    def __init__(
        self,
        ctx: NodeContext,
        pid: int,
        pipe: Optional[SamplePipe],
        barrier: Optional[CyclicBarrier] = None,
        sampler_state=None,
    ):
        self.ctx = ctx
        self.pid = pid
        self.pipe = pipe
        self.barrier = barrier
        self.sampler_state = sampler_state
        wl = ctx.config.workload
        prefix = f"node{ctx.node_id}/app{pid}"
        self._cpu_var = ctx.streams.variates(f"{prefix}/cpu", wl.app_cpu)
        self._net_var = ctx.streams.variates(f"{prefix}/network", wl.app_network)
        self._due: Deque[Sample] = deque()
        #: CPU work done since the last barrier, µs.
        self._work_since_barrier = 0.0
        self.proc = ctx.env.process(self._run(), name=f"{prefix}/main")
        if ctx.config.instrumented and pipe is not None:
            ctx.env.process(self._sampler(), name=f"{prefix}/sampler")

    # ------------------------------------------------------------------
    def _sampler(self):
        """Create one sample per sampling period (Figure 6's timer)."""
        env = self.ctx.env
        hold = env.hold
        metrics = self.ctx.metrics
        node = self.ctx.node_id
        pid = self.pid
        due_append = self._due.append
        state = self.sampler_state
        if state is None:
            # Static configuration: the period never changes, so the
            # timer loop runs entirely on hoisted locals.
            period = self.ctx.config.sampling_period
            while True:
                yield hold(period)
                due_append(Sample(created_at=env.now, node=node, pid=pid))
                metrics.samples_generated += 1
        while True:
            # Adaptive: the overhead regulator may change the period
            # between ticks, so it is re-read each iteration.
            yield hold(state.period)
            due_append(Sample(created_at=env.now, node=node, pid=pid))
            metrics.samples_generated += 1

    def _run(self):
        env = self.ctx.env
        cpu = self.ctx.cpu
        network = self.ctx.network
        metrics = self.ctx.metrics
        barrier_period = self.ctx.config.barrier_period
        while True:
            # Emit pending samples first; a full pipe blocks us here,
            # freeing the CPU (the §4.3.3 mechanism).
            while self._due:
                sample = self._due.popleft()
                yield self.pipe.put(sample)

            work = self._cpu_var()
            if barrier_period is not None:
                # A burst never crosses a barrier point.
                remaining = barrier_period - self._work_since_barrier
                if work > remaining:
                    work = remaining
            yield cpu.execute(work, ProcessType.APPLICATION)

            if barrier_period is not None:
                self._work_since_barrier += work
                if self._work_since_barrier >= barrier_period - 1e-9:
                    self._work_since_barrier = 0.0
                    t0 = env.now
                    yield self.barrier.arrive()
                    metrics.barrier_wait_time += env.now - t0

            yield network.transfer(self._net_var(), ProcessType.APPLICATION)
            metrics.app_cycles += 1
