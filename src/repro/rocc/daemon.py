"""The Paradyn daemon: collection, CF/BF scheduling, forwarding, merging.

One daemon runs per node (NOW/MPP) or serves a share of the application
processes (SMP).  Its life is the §2.1 loop:

1. **Collect** a sample from the pipe (per-sample collection CPU work).
2. Under **CF** (batch size 1) forward it immediately; under **BF**
   buffer it until ``batch_size`` samples accumulated (or the optional
   flush timeout expires), then forward the batch with *one* forwarding
   CPU request (the amortized system call) and one network occupancy.
3. Under **binary-tree forwarding** (MPP), also drain an inbox of
   batches arriving from child daemons: each costs a merge CPU request
   and is forwarded up with the same network occupancy as a local batch
   (§3.3).

Fault tolerance (``repro.faults``): the daemon can **crash** — its
processes are interrupted, buffered and in-flight samples are dropped
with accounting, and samples already in the kernel pipe survive until a
**restart** respawns the loops.  Lost or timed-out forwards go through
the configured :class:`~repro.faults.recovery.RecoveryPolicy`: a
bounded resend queue drained by a retry process with exponential
backoff and jitter, falling back to drop-with-accounting when retries
or queue space run out.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..des.events import Event, Process
from ..des.exceptions import Interrupt
from ..faults.spec import MessageLost
from ..obs.metrics import registry as obs_registry
from ..des.stores import Store
from ..workload.records import ProcessType
from .node import NodeContext
from .pipes import SamplePipe
from .requests import Batch, Sample

__all__ = ["ParadynDaemon"]

#: A delivery sink: invoked with a Batch at network-delivery time.
DeliverFn = Callable[[Batch], None]


class _SendAttempt:
    """Bookkeeping for one in-progress transfer (crash cleanup)."""

    __slots__ = ("batch", "ev", "cond")

    def __init__(self, batch: Batch):
        self.batch = batch
        self.ev: Optional[Event] = None
        self.cond: Optional[Event] = None


class ParadynDaemon:
    """A Paradyn daemon process (Pd)."""

    def __init__(
        self,
        ctx: NodeContext,
        pipe: SamplePipe,
        deliver_up: DeliverFn,
        name: str = "",
    ):
        self.ctx = ctx
        self.pipe = pipe
        #: Called with each outgoing batch at delivery time (the main
        #: process's inbox for direct forwarding, the parent daemon's
        #: inbox under tree forwarding).
        self.deliver_up = deliver_up
        #: Delivery sink for *relayed* (merged) batches; defaults to the
        #: same uplink, overridden by the aggregated large-n mode to
        #: avoid double-counting phantom traffic at the main process.
        self.merge_deliver = deliver_up
        costs = ctx.config.daemon_costs
        wl = ctx.config.workload
        prefix = name or f"node{ctx.node_id}/pd"
        self.name = prefix
        self._collect_cpu = ctx.streams.variates(
            f"{prefix}/collect_cpu", costs.collection_cpu
        )
        self._forward_cpu = ctx.streams.variates(
            f"{prefix}/forward_cpu", costs.forward_cpu
        )
        merge_dist = costs.merge_cpu if costs.merge_cpu is not None else costs.forward_cpu
        self._merge_cpu = ctx.streams.variates(f"{prefix}/merge_cpu", merge_dist)
        self._net = ctx.streams.variates(f"{prefix}/network", wl.pd_network)

        #: Current batch size; mutable so adaptive management can change
        #: the policy mid-run (1 = CF).
        self.batch_size = ctx.config.batch_size
        self._batch: List[Sample] = []
        self._batch_started: float = 0.0
        #: Inbox of en-route batches from children (tree forwarding).
        self.inbox: Optional[Store] = None
        #: Samples forwarded by this daemon (local throughput numerator).
        self.samples_forwarded = 0
        self.forward_calls = 0

        # -- failure / recovery state -----------------------------------
        self._policy = ctx.config.recovery
        self._backoff_rng = (
            ctx.streams.generator(f"{prefix}/backoff")
            if self._policy is not None
            else None
        )
        #: Whether the daemon is currently crashed.
        self.down = False
        self._down_since: Optional[float] = None
        self._crashed_at: Optional[float] = None
        self._await_recovery = False
        #: Batches awaiting retransmission with their delivery sinks.
        self._resend: Deque[Tuple[Batch, DeliverFn]] = deque()
        self._resend_wake: Optional[Event] = None
        #: Batch mid-forward-CPU (lost if the daemon crashes there).
        self._inflight: Optional[Batch] = None
        self._pending_get = None
        self._pending_inbox_get = None
        #: Live kernel processes of this daemon (interrupted on crash).
        self._procs: List[Process] = []

        self._spawn_loops()

    # ------------------------------------------------------------------
    def _spawn_loops(self) -> None:
        ctx = self.ctx
        self._procs = [
            ctx.env.process(self._collect_loop(), name=f"{self.name}/collect")
        ]
        if ctx.config.batch_flush_timeout is not None:
            self._procs.append(
                ctx.env.process(self._flush_loop(), name=f"{self.name}/flush")
            )
        if self.inbox is not None:
            self._procs.append(
                ctx.env.process(self._merge_loop(), name=f"{self.name}/merge")
            )
        if self._policy is not None and self._policy.max_retries > 0:
            self._procs.append(
                ctx.env.process(self._retry_loop(), name=f"{self.name}/retry")
            )

    def enable_tree_inbox(self) -> None:
        """Attach a child-batch inbox and start the merge loop."""
        if self.inbox is None:
            self.inbox = Store(self.ctx.env)
            proc = self.ctx.env.process(
                self._merge_loop(), name=f"{self.name}/merge"
            )
            self._procs.append(proc)

    def deliver(self, batch: Batch) -> None:
        """Delivery sink for child daemons (tree forwarding)."""
        assert self.inbox is not None, "tree inbox not enabled"
        self.inbox.put(batch)  # unbounded: triggers immediately

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    def crash(self, cause: object = None) -> None:
        """Kill the daemon: interrupt its loops, lose buffered samples.

        Samples already written to the kernel pipe survive (the pipe
        outlives the process); everything the daemon held in user space
        — the partial batch, the resend queue, in-flight transfers — is
        dropped with accounting.
        """
        if self.down:
            return
        env = self.ctx.env
        self.down = True
        self._down_since = env.now
        self._crashed_at = env.now
        metrics = self.ctx.metrics
        metrics.daemon_crashes += 1
        obs_registry().counter("daemon.crashes").inc()
        if self._batch:
            self._drop(self._batch, "crash")
            self._batch = []
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.is_alive and proc is not env.active_process:
                proc.interrupt(cause if cause is not None else "daemon crash")

    def restart(self) -> None:
        """Bring a crashed daemon back up with fresh (empty) state."""
        if not self.down:
            return
        env = self.ctx.env
        self.ctx.metrics.daemon_downtime += env.now - self._down_since
        self.down = False
        self._down_since = None
        self._await_recovery = True
        self._spawn_loops()

    def _drop(self, samples, reason: str) -> None:
        self.ctx.metrics.note_drop_samples(self.ctx.node_id, samples, reason)

    # ------------------------------------------------------------------
    # Worker loops
    # ------------------------------------------------------------------
    def _collect_loop(self):
        env = self.ctx.env
        cpu = self.ctx.cpu
        burst = max(1, self.ctx.config.daemon_costs.collection_burst)
        pending: Deque[Sample] = deque()
        try:
            while True:
                self._pending_get = get_ev = self.pipe.get()
                sample = yield get_ev
                self._pending_get = None
                pending.append(sample)
                # Drain everything already waiting (up to the burst limit)
                # so one CPU acquisition covers the whole backlog — the
                # real daemon reads all available samples per wakeup.
                # Without this, strict round-robin starves the daemon
                # behind CPU-bound applications (one scheduling round per
                # sample).
                while len(self.pipe) > 0 and len(pending) < burst:
                    ready = self.pipe.get()
                    pending.append(ready.value)
                cost = self._collect_cpu.take_sum(len(pending))
                yield cpu.execute(cost, ProcessType.PARADYN_DAEMON)
                while pending:
                    s = pending.popleft()
                    if not self._batch:
                        self._batch_started = env.now
                    self._batch.append(s)
                    if len(self._batch) >= self.batch_size:
                        yield from self._forward(self._take_batch())
        except Interrupt:
            # Crash: abandon the pending read so no sample is consumed
            # by a dead reader; samples drained but not yet batched die
            # with the process.
            ev = self._pending_get
            self._pending_get = None
            if ev is not None and not ev.triggered and hasattr(ev, "cancel"):
                ev.cancel()
            if pending:
                self._drop(pending, "crash")
            return

    def _flush_loop(self):
        """Forward a stale partial batch (BF extension, off by default)."""
        env = self.ctx.env
        timeout = self.ctx.config.batch_flush_timeout
        try:
            while True:
                yield env.hold(timeout)
                if self._batch and env.now - self._batch_started >= timeout:
                    yield from self._forward(self._take_batch())
        except Interrupt:
            return

    def _merge_loop(self):
        """Tree forwarding: merge child batches and send them upward."""
        env = self.ctx.env
        cpu = self.ctx.cpu
        metrics = self.ctx.metrics
        node = self.ctx.node_id
        current: Optional[Batch] = None
        try:
            while True:
                self._pending_inbox_get = get_ev = self.inbox.get()
                batch = yield get_ev
                self._pending_inbox_get = None
                current = batch
                yield cpu.execute(self._merge_cpu(), ProcessType.PARADYN_DAEMON)
                metrics.note_merge(node)
                for s in batch.samples:
                    s.hops += 1
                batch.origin = node
                batch.sent_at = env.now
                # "The network occupancy needed for forwarding a merged
                # sample is the same as for forwarding a local sample"
                # (§3.3).
                current = None
                delivered = yield from self._send_once(
                    batch, self._net(), self.merge_deliver
                )
                if not delivered:
                    self._handle_send_failure(batch, self.merge_deliver)
        except Interrupt:
            ev = self._pending_inbox_get
            self._pending_inbox_get = None
            if ev is not None and not ev.triggered and hasattr(ev, "cancel"):
                ev.cancel()
            if current is not None:
                self._drop(current.samples, "crash")
            return

    def _retry_loop(self):
        """Drain the resend queue with exponential backoff and jitter."""
        env = self.ctx.env
        cpu = self.ctx.cpu
        metrics = self.ctx.metrics
        current: Optional[Batch] = None
        try:
            while True:
                if not self._resend:
                    self._resend_wake = Event(env)
                    yield self._resend_wake
                    self._resend_wake = None
                    continue
                current, deliver = self._resend.popleft()
                current.attempts += 1
                delay = self._policy.backoff_delay(
                    current.attempts, self._backoff_rng
                )
                yield env.hold(delay)
                current.cancelled = False
                metrics.retransmissions += 1
                obs_registry().counter("daemon.retransmissions").inc()
                # A retransmission repeats the forwarding system call.
                yield cpu.execute(
                    self._forward_cpu(), ProcessType.PARADYN_DAEMON
                )
                batch, current = current, None
                delivered = yield from self._send_once(
                    batch, self._net(), deliver
                )
                if not delivered:
                    self._handle_send_failure(batch, deliver)
        except Interrupt:
            if current is not None:
                self._drop(current.samples, "crash")
            for batch, _deliver in self._resend:
                self._drop(batch.samples, "crash")
            self._resend.clear()
            self._resend_wake = None
            return

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _take_batch(self) -> Batch:
        env = self.ctx.env
        samples, self._batch = self._batch, []
        batch = Batch(samples=samples, origin=self.ctx.node_id)
        # Forwarding-unit ready time: under CF the single sample's
        # creation; under BF the moment the batch completed (see
        # metrics module docs for the two latency definitions).
        if len(samples) == 1:
            batch.sent_at = samples[0].created_at
        else:
            batch.sent_at = env.now
        return batch

    def _forward(self, batch: Batch):
        """CPU (system call) + network occupancy for one forwarding."""
        ctx = self.ctx
        costs = ctx.config.daemon_costs
        n = len(batch.samples)
        cpu_cost = self._forward_cpu() + costs.per_sample_batch_cpu * n
        self._inflight = batch
        try:
            yield ctx.cpu.execute(cpu_cost, ProcessType.PARADYN_DAEMON)
        except Interrupt:
            self._drop(batch.samples, "crash")
            self._inflight = None
            raise
        self._inflight = None
        self.samples_forwarded += n
        self.forward_calls += 1
        ctx.metrics.note_forward(ctx.node_id, n)
        net_cost = self._net() + costs.per_sample_network * max(0, n - 1)
        delivered = yield from self._send_once(batch, net_cost, self.deliver_up)
        if not delivered:
            self._handle_send_failure(batch, self.deliver_up)

    def _send_once(self, batch: Batch, net_cost: float, deliver: DeliverFn):
        """One transfer attempt; returns whether the batch was delivered.

        Applies the policy's forwarding timeout and translates a
        network-failed transfer (:class:`MessageLost`) into ``False``.
        On a crash mid-send the attempt is cleaned up so a late
        completion can neither duplicate samples nor crash the kernel
        with an unhandled failure.
        """
        ctx = self.ctx
        policy = self._policy
        att = _SendAttempt(batch)
        try:
            att.ev = ev = ctx.network.transfer(
                net_cost,
                ProcessType.PARADYN_DAEMON,
                payload=batch,
                deliver=deliver,
            )
            timeout = policy.forward_timeout if policy is not None else None
            if timeout is None:
                try:
                    yield ev
                    delivered = True
                except MessageLost:
                    delivered = False
            else:
                att.cond = cond = ev | ctx.env.timeout(timeout)
                try:
                    yield cond
                except MessageLost:
                    delivered = False
                else:
                    if ev.triggered and ev._ok:
                        delivered = True
                    else:
                        # Give up: suppress the late delivery so a
                        # retransmission cannot duplicate the samples.
                        batch.cancelled = True
                        ctx.metrics.forward_timeouts += 1
                        obs_registry().counter("daemon.forward_timeouts").inc()
                        delivered = False
            if delivered and self._await_recovery:
                latency = ctx.env.now - self._crashed_at
                ctx.metrics.recovery_latency.observe(latency)
                obs_registry().histogram(
                    "daemon.recovery_latency_ms"
                ).observe(latency / 1e3)
                self._await_recovery = False
            return delivered
        except Interrupt:
            self._abandon_send(att)
            raise

    def _abandon_send(self, att: _SendAttempt) -> None:
        """Crash cleanup for an attempt the sender will never observe."""
        ev, batch = att.ev, att.batch
        delivered = ev is not None and ev.triggered and ev._ok
        if delivered:
            return  # the batch made it out before the crash
        batch.cancelled = True  # suppress any future delivery
        if ev is not None and ev.triggered and not ev._ok:
            # The failure is already scheduled; nobody will wait for it.
            ev.defused = True
            if (
                att.cond is not None
                and not att.cond.triggered
                and ev.callbacks is not None
            ):
                try:
                    ev.callbacks.remove(att.cond._check)
                except ValueError:  # pragma: no cover - already detached
                    pass
        self._drop(batch.samples, "crash")

    def _handle_send_failure(self, batch: Batch, deliver: DeliverFn) -> None:
        """Route a failed forward through the recovery policy."""
        policy = self._policy
        if policy is None or policy.max_retries == 0:
            self._drop(batch.samples, "loss")
            return
        if batch.attempts >= policy.max_retries:
            self._drop(batch.samples, "loss")
            return
        if len(self._resend) >= policy.resend_queue_limit:
            self._drop(batch.samples, "overflow")
            return
        self._resend.append((batch, deliver))
        if self._resend_wake is not None and not self._resend_wake.triggered:
            self._resend_wake.succeed()
