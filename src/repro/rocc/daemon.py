"""The Paradyn daemon: collection, CF/BF scheduling, forwarding, merging.

One daemon runs per node (NOW/MPP) or serves a share of the application
processes (SMP).  Its life is the §2.1 loop:

1. **Collect** a sample from the pipe (per-sample collection CPU work).
2. Under **CF** (batch size 1) forward it immediately; under **BF**
   buffer it until ``batch_size`` samples accumulated (or the optional
   flush timeout expires), then forward the batch with *one* forwarding
   CPU request (the amortized system call) and one network occupancy.
3. Under **binary-tree forwarding** (MPP), also drain an inbox of
   batches arriving from child daemons: each costs a merge CPU request
   and is forwarded up with the same network occupancy as a local batch
   (§3.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..des.stores import Store
from ..workload.records import ProcessType
from .node import NodeContext
from .pipes import SamplePipe
from .requests import Batch, Sample

__all__ = ["ParadynDaemon"]

#: A delivery sink: invoked with a Batch at network-delivery time.
DeliverFn = Callable[[Batch], None]


class ParadynDaemon:
    """A Paradyn daemon process (Pd)."""

    def __init__(
        self,
        ctx: NodeContext,
        pipe: SamplePipe,
        deliver_up: DeliverFn,
        name: str = "",
    ):
        self.ctx = ctx
        self.pipe = pipe
        #: Called with each outgoing batch at delivery time (the main
        #: process's inbox for direct forwarding, the parent daemon's
        #: inbox under tree forwarding).
        self.deliver_up = deliver_up
        #: Delivery sink for *relayed* (merged) batches; defaults to the
        #: same uplink, overridden by the aggregated large-n mode to
        #: avoid double-counting phantom traffic at the main process.
        self.merge_deliver = deliver_up
        costs = ctx.config.daemon_costs
        wl = ctx.config.workload
        prefix = name or f"node{ctx.node_id}/pd"
        self.name = prefix
        self._collect_cpu = ctx.streams.variates(
            f"{prefix}/collect_cpu", costs.collection_cpu
        )
        self._forward_cpu = ctx.streams.variates(
            f"{prefix}/forward_cpu", costs.forward_cpu
        )
        merge_dist = costs.merge_cpu if costs.merge_cpu is not None else costs.forward_cpu
        self._merge_cpu = ctx.streams.variates(f"{prefix}/merge_cpu", merge_dist)
        self._net = ctx.streams.variates(f"{prefix}/network", wl.pd_network)

        #: Current batch size; mutable so adaptive management can change
        #: the policy mid-run (1 = CF).
        self.batch_size = ctx.config.batch_size
        self._batch: List[Sample] = []
        self._batch_started: float = 0.0
        #: Inbox of en-route batches from children (tree forwarding).
        self.inbox: Optional[Store] = None
        #: Samples forwarded by this daemon (local throughput numerator).
        self.samples_forwarded = 0
        self.forward_calls = 0

        ctx.env.process(self._collect_loop(), name=f"{prefix}/collect")
        if ctx.config.batch_flush_timeout is not None:
            ctx.env.process(self._flush_loop(), name=f"{prefix}/flush")

    # ------------------------------------------------------------------
    def enable_tree_inbox(self) -> None:
        """Attach a child-batch inbox and start the merge loop."""
        if self.inbox is None:
            self.inbox = Store(self.ctx.env)
            self.ctx.env.process(self._merge_loop(), name=f"{self.name}/merge")

    def deliver(self, batch: Batch) -> None:
        """Delivery sink for child daemons (tree forwarding)."""
        assert self.inbox is not None, "tree inbox not enabled"
        self.inbox.put(batch)  # unbounded: triggers immediately

    # ------------------------------------------------------------------
    def _collect_loop(self):
        env = self.ctx.env
        cpu = self.ctx.cpu
        burst = max(1, self.ctx.config.daemon_costs.collection_burst)
        while True:
            sample = yield self.pipe.get()
            # Drain everything already waiting (up to the burst limit) so
            # one CPU acquisition covers the whole backlog — the real
            # daemon reads all available samples per wakeup.  Without
            # this, strict round-robin starves the daemon behind
            # CPU-bound applications (one scheduling round per sample).
            pending = [sample]
            while len(self.pipe) > 0 and len(pending) < burst:
                ready = self.pipe.get()
                pending.append(ready.value)
            cost = 0.0
            for _ in pending:
                cost += self._collect_cpu()
            yield cpu.execute(cost, ProcessType.PARADYN_DAEMON)
            for s in pending:
                if not self._batch:
                    self._batch_started = env.now
                self._batch.append(s)
                if len(self._batch) >= self.batch_size:
                    yield from self._forward(self._take_batch())

    def _flush_loop(self):
        """Forward a stale partial batch (BF extension, off by default)."""
        env = self.ctx.env
        timeout = self.ctx.config.batch_flush_timeout
        while True:
            yield env.timeout(timeout)
            if self._batch and env.now - self._batch_started >= timeout:
                yield from self._forward(self._take_batch())

    def _merge_loop(self):
        """Tree forwarding: merge child batches and send them upward."""
        env = self.ctx.env
        cpu = self.ctx.cpu
        network = self.ctx.network
        metrics = self.ctx.metrics
        node = self.ctx.node_id
        while True:
            batch = yield self.inbox.get()
            yield cpu.execute(self._merge_cpu(), ProcessType.PARADYN_DAEMON)
            metrics.note_merge(node)
            for s in batch.samples:
                s.hops += 1
            batch.origin = node
            batch.sent_at = env.now
            # "The network occupancy needed for forwarding a merged sample
            # is the same as for forwarding a local sample" (§3.3).
            yield network.transfer(
                self._net(),
                ProcessType.PARADYN_DAEMON,
                payload=batch,
                deliver=self.merge_deliver,
            )

    # ------------------------------------------------------------------
    def _take_batch(self) -> Batch:
        env = self.ctx.env
        samples, self._batch = self._batch, []
        batch = Batch(samples=samples, origin=self.ctx.node_id)
        # Forwarding-unit ready time: under CF the single sample's
        # creation; under BF the moment the batch completed (see
        # metrics module docs for the two latency definitions).
        if len(samples) == 1:
            batch.sent_at = samples[0].created_at
        else:
            batch.sent_at = env.now
        return batch

    def _forward(self, batch: Batch):
        """CPU (system call) + network occupancy for one forwarding."""
        ctx = self.ctx
        costs = ctx.config.daemon_costs
        n = len(batch.samples)
        cpu_cost = self._forward_cpu() + costs.per_sample_batch_cpu * n
        yield ctx.cpu.execute(cpu_cost, ProcessType.PARADYN_DAEMON)
        self.samples_forwarded += n
        self.forward_calls += 1
        ctx.metrics.note_forward(ctx.node_id, n)
        net_cost = self._net() + costs.per_sample_network * max(0, n - 1)
        yield ctx.network.transfer(
            net_cost,
            ProcessType.PARADYN_DAEMON,
            payload=batch,
            deliver=self.deliver_up,
        )
