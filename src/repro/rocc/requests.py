"""Data objects flowing through the ROCC model of the Paradyn IS.

A :class:`Sample` is one performance-data sample collected from an
instrumented application process.  A :class:`Batch` is what a Paradyn
daemon forwards: one sample under the CF policy, up to ``batch_size``
samples under BF, possibly merged with en-route samples under binary-
tree forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["Sample", "Batch"]


@dataclass(slots=True)
class Sample:
    """One instrumentation-data sample.

    ``created_at`` is stamped when the sampling timer fires in the
    application process; monitoring latency is measured from this time
    to receipt at the main Paradyn process (the paper's definition,
    citing Gu et al.).
    """

    created_at: float
    node: int
    pid: int
    #: Number of hops the sample took through tree daemons (0 = direct).
    hops: int = 0


@dataclass
class Batch:
    """A set of samples travelling as one forwarding unit."""

    samples: List[Sample] = field(default_factory=list)
    #: Node of the daemon that sent this batch (for tree routing).
    origin: int = -1
    #: Time the batch left its daemon.
    sent_at: float = 0.0
    #: Set by a sender that gave up on this transfer (forwarding
    #: timeout): the network suppresses the late delivery so a
    #: retransmission cannot duplicate the samples.
    cancelled: bool = False
    #: Set by the network when a fault corrupts the message in flight;
    #: the main process detects and discards corrupted batches.
    corrupted: bool = False
    #: Retransmission attempts already made for this batch.
    attempts: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def merge(self, other: "Batch") -> None:
        """Absorb *other*'s samples (binary-tree merge step)."""
        for s in other.samples:
            s.hops += 1
        self.samples.extend(other.samples)
