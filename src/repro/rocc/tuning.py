"""Batch-size tuning: operationalizing §4.2.4's recommendation.

The paper concludes that "a value of batch size that is close to the
'knee' of the latency curve is desirable": overhead falls super-linearly
just past batch 1 and then flattens, while total monitoring latency
grows linearly with the batch.  :func:`recommend_batch_size` runs the
sweep and picks the knee — the smallest batch whose *marginal* overhead
reduction drops below a threshold fraction of the CF overhead — subject
to an optional latency ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .config import SimulationConfig
from .system import simulate

__all__ = ["BatchSweepPoint", "BatchRecommendation", "recommend_batch_size"]


@dataclass(frozen=True)
class BatchSweepPoint:
    """One batch size's measured trade-off."""

    batch_size: int
    pd_cpu_utilization: float
    monitoring_latency_total: float  # µs
    samples_received: int


@dataclass
class BatchRecommendation:
    """Outcome of the batch-size sweep."""

    batch_size: int
    points: List[BatchSweepPoint] = field(default_factory=list)
    #: Why the sweep stopped where it did.
    reason: str = ""

    @property
    def cf_overhead(self) -> float:
        return self.points[0].pd_cpu_utilization

    @property
    def recommended_point(self) -> BatchSweepPoint:
        for p in self.points:
            if p.batch_size == self.batch_size:
                return p
        raise LookupError(self.batch_size)  # pragma: no cover

    @property
    def overhead_reduction(self) -> float:
        """Fractional Pd overhead reduction at the recommendation."""
        if self.cf_overhead == 0:
            return 0.0
        return 1.0 - self.recommended_point.pd_cpu_utilization / self.cf_overhead


def recommend_batch_size(
    config: SimulationConfig,
    candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    marginal_gain_threshold: float = 0.10,
    max_latency: Optional[float] = None,
) -> BatchRecommendation:
    """Sweep batch sizes on *config* and pick the knee.

    Parameters
    ----------
    config:
        The operating point (its own ``batch_size`` is ignored).  The
        configured ``duration`` must comfortably exceed the largest
        candidate's fill time (``batch · sampling_period``), or large
        candidates cannot be evaluated.
    candidates:
        Increasing batch sizes to evaluate; must start at 1 (CF), which
        anchors the marginal-gain normalization.
    marginal_gain_threshold:
        The knee is the last batch size whose step reduced Pd overhead
        by at least this fraction of the CF overhead.
    max_latency:
        Optional ceiling (µs) on mean total monitoring latency: larger
        batches violating it are excluded even before the knee rule.
    """
    cands = sorted(set(int(c) for c in candidates))
    if not cands or cands[0] != 1:
        raise ValueError("candidates must include 1 (the CF anchor)")
    if not 0 < marginal_gain_threshold < 1:
        raise ValueError("marginal_gain_threshold must be in (0, 1)")
    fill = cands[-1] * config.sampling_period
    if config.duration < 2 * fill:
        raise ValueError(
            f"duration {config.duration:g} µs cannot evaluate batch "
            f"{cands[-1]} (fill time {fill:g} µs); lengthen the run or "
            "trim the candidates"
        )

    points: List[BatchSweepPoint] = []
    for b in cands:
        r = simulate(config.with_(batch_size=b))
        points.append(
            BatchSweepPoint(
                batch_size=b,
                pd_cpu_utilization=r.pd_cpu_utilization_per_node,
                monitoring_latency_total=r.monitoring_latency_total,
                samples_received=r.samples_received,
            )
        )

    cf = points[0].pd_cpu_utilization
    feasible = [
        p
        for p in points
        if max_latency is None
        or (p.monitoring_latency_total == p.monitoring_latency_total
            and p.monitoring_latency_total <= max_latency)
    ]
    if not feasible:
        return BatchRecommendation(
            batch_size=1, points=points,
            reason="no candidate satisfied the latency ceiling; staying CF",
        )

    best = feasible[0]
    reason = "CF anchor"
    for prev, cur in zip(points, points[1:]):
        if cur not in feasible:
            reason = f"stopped at latency ceiling before batch {cur.batch_size}"
            break
        gain = (prev.pd_cpu_utilization - cur.pd_cpu_utilization) / cf if cf else 0.0
        if gain < marginal_gain_threshold:
            reason = (
                f"marginal gain {gain:.1%} below threshold at batch "
                f"{cur.batch_size}"
            )
            break
        best = cur
        reason = f"knee at batch {best.batch_size}"
    return BatchRecommendation(
        batch_size=best.batch_size, points=points, reason=reason
    )
