"""Network resources of the ROCC model.

Three interconnect models cover the paper's architectures:

* :class:`FIFONetwork` — a single shared server: the NOW Ethernet and
  the SMP bus.  Requests queue in arrival order ("network delays are
  represented by the arrivals to a single server buffer" — Figure 2).
* :class:`ContentionFreeNetwork` — the MPP assumption (§4.4): transfers
  never queue against each other; occupancy is still accounted so
  utilization-style metrics remain meaningful.

Both support a ``deliver`` callback per transfer so forwarding
topologies can hand batches to the receiving daemon or the main Paradyn
process at delivery time.

When a :class:`~repro.faults.injector.FaultInjector` is attached (the
``injector`` attribute, set by the system builder when
``config.faults`` is given), every transfer *with a receiver* consults
it at completion time: a **lost** message is not delivered and the
transfer's completion event fails with
:class:`~repro.faults.spec.MessageLost` (the sender's recovery policy
takes it from there); a **corrupted** message is delivered with its
``corrupted`` flag set for the receiver to detect and discard.  A
transfer whose payload was ``cancelled`` by a sender that timed out is
completed silently without delivery, so retransmissions cannot
duplicate samples.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..des.core import Environment
from ..des.events import Event
from ..des.monitor import TimeWeighted
from ..faults.injector import OUTCOME_CORRUPT, OUTCOME_LOST
from ..faults.spec import MessageLost
from ..workload.records import ProcessType

__all__ = ["BaseNetwork", "FIFONetwork", "ContentionFreeNetwork"]

DeliverFn = Callable[[object], None]


class BaseNetwork:
    """Common occupancy accounting for all interconnect models."""

    def __init__(self, env: Environment, name: str = "network"):
        self.env = env
        self.name = name
        #: Accumulated network occupancy per owning process class, µs.
        self.busy_by_owner: Dict[ProcessType, float] = {}
        #: Time-weighted number of in-flight transfers.
        self.in_flight = TimeWeighted(f"{name}.in_flight", start_time=env.now)
        #: Completed transfer count.
        self.transfers = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: set, delivered messages are subject to loss/corruption.
        self.injector = None

    def transfer(
        self,
        amount: float,
        owner: ProcessType,
        payload: object = None,
        deliver: Optional[DeliverFn] = None,
    ) -> Event:
        """Occupy the network for *amount* µs on behalf of *owner*.

        The returned event fires when the transfer completes; *deliver*
        (if given) is invoked with *payload* at completion time, before
        waiters resume.
        """
        raise NotImplementedError

    def busy_time(self, owner: ProcessType) -> float:
        """Total network occupancy by *owner* so far, µs."""
        return self.busy_by_owner.get(owner, 0.0)

    def total_busy_time(self) -> float:
        return sum(self.busy_by_owner.values())

    def utilization(self, now: Optional[float] = None) -> float:
        """Busy fraction (single-server semantics: busy time / elapsed)."""
        t = self.env.now if now is None else now
        return self.total_busy_time() / t if t > 0 else 0.0

    def _account(self, amount: float, owner: ProcessType) -> None:
        self.busy_by_owner[owner] = self.busy_by_owner.get(owner, 0.0) + amount
        self.transfers += 1

    def _complete(
        self, payload: object, deliver: Optional[DeliverFn], done: Event
    ) -> None:
        """Finish one transfer: apply fault outcomes, deliver, resolve.

        The sender that timed out and ``cancelled`` its payload gets a
        silent success (delivery suppressed); a lost message fails the
        event so a waiting sender can recover.  A failed event whose
        sender stopped waiting is defused by the sender's `AnyOf`
        timeout condition, so late losses never crash the run.
        """
        if getattr(payload, "cancelled", False):
            done.succeed()
            return
        if deliver is not None and self.injector is not None:
            outcome = self.injector.message_outcome()
            if outcome == OUTCOME_LOST:
                done.fail(MessageLost(payload))
                return
            if outcome == OUTCOME_CORRUPT:
                payload.corrupted = True
        if deliver is not None:
            deliver(payload)
        done.succeed()


class FIFONetwork(BaseNetwork):
    """Single shared server with a FIFO queue (Ethernet / bus)."""

    def __init__(self, env: Environment, name: str = "network"):
        super().__init__(env, name)
        self._queue: Deque[Tuple[float, ProcessType, object, Optional[DeliverFn], Event]] = deque()
        self._wake: Optional[Event] = None
        env.process(self._server(), name=f"{name}.server")

    def transfer(
        self,
        amount: float,
        owner: ProcessType,
        payload: object = None,
        deliver: Optional[DeliverFn] = None,
    ) -> Event:
        done = Event(self.env)
        if amount <= 0.0:
            self._complete(payload, deliver, done)
            return done
        self._queue.append((float(amount), owner, payload, deliver, done))
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        return done

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _server(self):
        # Hot loop: transfers sleep on the allocation-free ``env.hold``
        # fast path, and back-to-back transfers skip the zero-width
        # in_flight -1/+1 pair (no effect on the time integral).
        env = self.env
        hold = env.hold
        queue = self._queue
        increment = self.in_flight.increment
        busy = False
        while True:
            if not queue:
                if busy:
                    increment(-1, env.now)
                    busy = False
                self._wake = Event(env)
                yield self._wake
                self._wake = None
                continue
            amount, owner, payload, deliver, done = queue.popleft()
            if not busy:
                increment(+1, env.now)
                busy = True
            yield hold(amount)
            self._account(amount, owner)
            self._complete(payload, deliver, done)


class ContentionFreeNetwork(BaseNetwork):
    """Infinite-server interconnect: transfers proceed independently.

    Approximates "the behavior seen by a bandwidth tuned application
    running on a scalable network" (§4.4).  Utilization is reported as
    occupancy divided by elapsed time, i.e. the *offered load* in server
    units, matching how the analytical model uses it.
    """

    def transfer(
        self,
        amount: float,
        owner: ProcessType,
        payload: object = None,
        deliver: Optional[DeliverFn] = None,
    ) -> Event:
        done = Event(self.env)
        if amount <= 0.0:
            self._complete(payload, deliver, done)
            return done
        self.env.process(self._one(amount, owner, payload, deliver, done))
        return done

    def _one(
        self,
        amount: float,
        owner: ProcessType,
        payload: object,
        deliver: Optional[DeliverFn],
        done: Event,
    ):
        env = self.env
        self.in_flight.increment(+1, env.now)
        yield env.hold(amount)
        self.in_flight.increment(-1, env.now)
        self._account(amount, owner)
        self._complete(payload, deliver, done)
