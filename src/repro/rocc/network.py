"""Network resources of the ROCC model.

Three interconnect models cover the paper's architectures:

* :class:`FIFONetwork` — a single shared server: the NOW Ethernet and
  the SMP bus.  Requests queue in arrival order ("network delays are
  represented by the arrivals to a single server buffer" — Figure 2).
* :class:`ContentionFreeNetwork` — the MPP assumption (§4.4): transfers
  never queue against each other; occupancy is still accounted so
  utilization-style metrics remain meaningful.

Both support a ``deliver`` callback per transfer so forwarding
topologies can hand batches to the receiving daemon or the main Paradyn
process at delivery time.

A transfer is a *self-scheduling event*: :meth:`BaseNetwork.transfer`
returns a :class:`Transfer` that sits directly on the kernel schedule
for its completion time, and resolution (fault outcomes, delivery,
accounting) happens in its first callback when it pops.  That costs one
kernel event per transfer where the earlier process-per-transfer shape
cost four (Initialize, the process, its hold, and a separate completion
event) — the dominant saving for large contention-free cells.  The
event stays *untriggered* until it pops: senders and crash-cleanup code
test ``ev.triggered`` to mean "the outcome is known", which must not
become true before completion time.

When a :class:`~repro.faults.injector.FaultInjector` is attached (the
``injector`` attribute, set by the system builder when
``config.faults`` is given), every transfer *with a receiver* consults
it at completion time: a **lost** message is not delivered and the
transfer's completion event fails with
:class:`~repro.faults.spec.MessageLost` (the sender's recovery policy
takes it from there); a **corrupted** message is delivered with its
``corrupted`` flag set for the receiver to detect and discard.  A
transfer whose payload was ``cancelled`` by a sender that timed out is
completed silently without delivery, so retransmissions cannot
duplicate samples.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..des.core import Environment
from ..des.events import NORMAL, PENDING, Event
from ..des.monitor import TimeWeighted
from ..faults.injector import OUTCOME_CORRUPT, OUTCOME_LOST
from ..faults.spec import MessageLost
from ..workload.records import ProcessType

__all__ = ["BaseNetwork", "FIFONetwork", "ContentionFreeNetwork", "Transfer"]

DeliverFn = Callable[[object], None]


class Transfer(Event):
    """A network transfer scheduled directly for its completion time.

    Created untriggered with ``_finish`` as its first callback; waiters
    registered by ``yield`` run after it, observing the resolved
    ``ok``/``value`` exactly as with a separately-triggered event.
    """

    __slots__ = ("_net", "_amount", "_owner", "_payload", "_deliver")

    def __init__(
        self,
        net: "BaseNetwork",
        amount: float,
        owner: ProcessType,
        payload: object,
        deliver: Optional[DeliverFn],
    ):
        # Bypass Event.__init__: same slot setup, minus a super() call.
        self.env = net.env
        self.callbacks = [self._finish]
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._net = net
        self._amount = amount
        self._owner = owner
        self._payload = payload
        self._deliver = deliver

    def _start(self) -> None:
        """Schedule completion ``amount`` time units from now."""
        env = self.env
        env._push((env._now + self._amount, NORMAL, next(env._eid), self))

    def _resolve(self) -> None:
        """Apply fault outcomes, deliver, and set the event's outcome.

        Runs at pop time (completion).  The sender that timed out and
        ``cancelled`` its payload gets a silent success (delivery
        suppressed); a lost message fails the event so a waiting sender
        can recover — a failed transfer nobody waits for is defused by
        the sender's crash cleanup or its `AnyOf` timeout condition.
        """
        net = self._net
        net._account(self._amount, self._owner)
        payload = self._payload
        if getattr(payload, "cancelled", False):
            self._value = None
            return
        deliver = self._deliver
        if deliver is not None:
            if net.injector is not None:
                outcome = net.injector.message_outcome()
                if outcome == OUTCOME_LOST:
                    self._ok = False
                    self._value = MessageLost(payload)
                    return
                if outcome == OUTCOME_CORRUPT:
                    payload.corrupted = True
            deliver(payload)
        self._value = None

    def _finish(self, _event: Event) -> None:
        net = self._net
        net.in_flight.increment(-1, self.env._now)
        self._resolve()


class QueuedTransfer(Transfer):
    """A transfer on a single shared FIFO server (Ethernet / bus)."""

    __slots__ = ()

    def _finish(self, _event: Event) -> None:
        self._resolve()
        # Hand the server to the next queued transfer at this instant;
        # the zero-width in_flight -1/+1 pair collapses into no update.
        net = self._net
        queue = net._queue
        if queue:
            queue.popleft()._start()
        else:
            net._busy = False
            net.in_flight.increment(-1, self.env._now)


class BaseNetwork:
    """Common occupancy accounting for all interconnect models."""

    def __init__(self, env: Environment, name: str = "network"):
        self.env = env
        self.name = name
        #: Accumulated network occupancy per owning process class, µs.
        self.busy_by_owner: Dict[ProcessType, float] = {}
        #: Time-weighted number of in-flight transfers.
        self.in_flight = TimeWeighted(f"{name}.in_flight", start_time=env.now)
        #: Completed transfer count.
        self.transfers = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: set, delivered messages are subject to loss/corruption.
        self.injector = None

    def transfer(
        self,
        amount: float,
        owner: ProcessType,
        payload: object = None,
        deliver: Optional[DeliverFn] = None,
    ) -> Event:
        """Occupy the network for *amount* µs on behalf of *owner*.

        The returned event fires when the transfer completes; *deliver*
        (if given) is invoked with *payload* at completion time, before
        waiters resume.
        """
        raise NotImplementedError

    def busy_time(self, owner: ProcessType) -> float:
        """Total network occupancy by *owner* so far, µs."""
        return self.busy_by_owner.get(owner, 0.0)

    def total_busy_time(self) -> float:
        return sum(self.busy_by_owner.values())

    def utilization(self, now: Optional[float] = None) -> float:
        """Busy fraction (single-server semantics: busy time / elapsed)."""
        t = self.env.now if now is None else now
        return self.total_busy_time() / t if t > 0 else 0.0

    def _account(self, amount: float, owner: ProcessType) -> None:
        self.busy_by_owner[owner] = self.busy_by_owner.get(owner, 0.0) + amount
        self.transfers += 1

    def _complete(
        self, payload: object, deliver: Optional[DeliverFn], done: Event
    ) -> None:
        """Synchronous completion for zero-length transfers."""
        if getattr(payload, "cancelled", False):
            done.succeed()
            return
        if deliver is not None and self.injector is not None:
            outcome = self.injector.message_outcome()
            if outcome == OUTCOME_LOST:
                done.fail(MessageLost(payload))
                return
            if outcome == OUTCOME_CORRUPT:
                payload.corrupted = True
        if deliver is not None:
            deliver(payload)
        done.succeed()


class FIFONetwork(BaseNetwork):
    """Single shared server with a FIFO queue (Ethernet / bus).

    Event-driven: there is no server process.  An arriving transfer
    starts immediately when the server is free; otherwise it waits in
    ``_queue`` and is started by the finishing transfer's callback.
    """

    def __init__(self, env: Environment, name: str = "network"):
        super().__init__(env, name)
        self._queue: Deque[QueuedTransfer] = deque()
        self._busy = False

    def transfer(
        self,
        amount: float,
        owner: ProcessType,
        payload: object = None,
        deliver: Optional[DeliverFn] = None,
    ) -> Event:
        if amount <= 0.0:
            done = Event(self.env)
            self._complete(payload, deliver, done)
            return done
        ev = QueuedTransfer(self, float(amount), owner, payload, deliver)
        if self._busy:
            self._queue.append(ev)
        else:
            self._busy = True
            self.in_flight.increment(+1, self.env.now)
            ev._start()
        return ev

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class ContentionFreeNetwork(BaseNetwork):
    """Infinite-server interconnect: transfers proceed independently.

    Approximates "the behavior seen by a bandwidth tuned application
    running on a scalable network" (§4.4).  Utilization is reported as
    occupancy divided by elapsed time, i.e. the *offered load* in server
    units, matching how the analytical model uses it.
    """

    def transfer(
        self,
        amount: float,
        owner: ProcessType,
        payload: object = None,
        deliver: Optional[DeliverFn] = None,
    ) -> Event:
        if amount <= 0.0:
            done = Event(self.env)
            self._complete(payload, deliver, done)
            return done
        amount = float(amount)
        ev = Transfer(self, amount, owner, payload, deliver)
        env = self.env
        self.in_flight.increment(+1, env._now)
        env._push((env._now + amount, NORMAL, next(env._eid), ev))
        return ev
