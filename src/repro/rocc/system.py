"""Full-system ROCC simulation: builds and runs NOW / SMP / MPP models.

:func:`simulate` is the package's main entry point: it wires the
architecture described by a :class:`~repro.rocc.config.SimulationConfig`
— nodes with round-robin CPUs, the interconnect, pipes, application
processes, Paradyn daemons, background load, and the main Paradyn
process — runs it for ``config.duration`` µs, and returns a
:class:`~repro.rocc.metrics.SimulationResults`.

Architecture mapping (§4):

* **NOW** — ``nodes`` workstations (1 CPU each by default) on a shared
  Ethernet; one daemon per node; the main process on a separate host
  workstation (Figure 1).
* **SMP** — ``nodes`` CPUs pooled behind one round-robin ready queue;
  ``app_processes_per_node`` is the *total* application process count;
  ``daemons`` daemons share the CPUs with the apps and the main
  process; a shared bus carries all communication.
* **MPP** — like NOW but with a contention-free scalable network and
  optional binary-tree forwarding.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..des.core import Environment
from ..des.events import URGENT, Event
from ..des.profiling import KernelProfiler, profile_enabled, set_last_profile
from ..faults.injector import FaultInjector
from ..obs.metrics import registry as obs_registry
from ..obs.spans import SIM, Tracer, current_tracer, maybe_span, sim_track_pid
from ..variates.streams import StreamFactory
from ..workload.records import ProcessType
from .application import ApplicationProcess
from .config import Architecture, ForwardingTopology, NetworkMode, SimulationConfig
from .cpu import RoundRobinCPU
from .daemon import ParadynDaemon
from .forwarding import live_ancestor, parent_index
from .main_process import MainParadynProcess
from .metrics import Metrics, SimulationResults
from .network import BaseNetwork, ContentionFreeNetwork, FIFONetwork
from .node import CyclicBarrier, NodeContext
from .partition import (
    LPBoundaryNetwork,
    LPRole,
    RemoteSink,
    lp_workers_from_env,
    parallel_ineligibility,
)
from .other import OtherProcesses, PVMDaemon
from .pipes import SamplePipe
from .traffic import OpenArrivalSource

__all__ = [
    "ParadynISSystem",
    "RawAggregates",
    "assemble_results",
    "simulate",
]

_WORKER_OWNERS = (
    ProcessType.APPLICATION,
    ProcessType.PARADYN_DAEMON,
    ProcessType.PVM_DAEMON,
    ProcessType.OTHER,
    ProcessType.PARADYN_MAIN,
)


class _OccupancyWatcher:
    """Turns one :class:`TimeWeighted` signal into trace tracks.

    Installed as the accumulator's ``on_change`` hook while a run is
    traced: busy intervals (level leaving / returning to zero) become
    sim-time spans — the Gantt bars of a node — and every level change
    becomes a counter sample.  Both are capped so a long run cannot
    balloon the trace.
    """

    #: Per-track record caps (spans / counter samples).
    MAX_SPANS = 1_000
    MAX_SAMPLES = 500

    def __init__(self, tracer: Tracer, pid: int, tid: str, counter_name: str):
        self.tracer = tracer
        self.pid = pid
        self.tid = tid
        self.counter_name = counter_name
        self.busy_since: Optional[float] = None
        self.spans = 0
        self.samples = 0

    def __call__(self, now: float, value: float) -> None:
        if value > 0.0 and self.busy_since is None:
            self.busy_since = now
        elif value <= 0.0 and self.busy_since is not None:
            if self.spans < self.MAX_SPANS:
                self.tracer.add_span(
                    "busy", cat="occupancy", ts=self.busy_since,
                    dur=now - self.busy_since, tid=self.tid,
                    pid=self.pid, domain=SIM,
                )
                self.spans += 1
            self.busy_since = None
        if self.samples < self.MAX_SAMPLES:
            self.tracer.add_counter(
                self.counter_name, now, {"level": value},
                pid=self.pid, domain=SIM,
            )
            self.samples += 1

    def finish(self, now: float) -> None:
        """Close a still-open busy interval at end of run."""
        if self.busy_since is not None and self.spans < self.MAX_SPANS:
            self.tracer.add_span(
                "busy", cat="occupancy", ts=self.busy_since,
                dur=now - self.busy_since, tid=self.tid,
                pid=self.pid, domain=SIM,
            )
            self.spans += 1
            self.busy_since = None


@dataclass
class _Snapshot:
    """Accumulator values at warmup time, subtracted from final values."""

    cpu_busy: List[Dict[ProcessType, float]] = field(default_factory=list)
    cpu_busy_integral: List[float] = field(default_factory=list)
    host_busy: Dict[ProcessType, float] = field(default_factory=dict)
    net_busy: Dict[ProcessType, float] = field(default_factory=dict)
    pipe_blocked_time: float = 0.0
    pipe_blocked_puts: int = 0


@dataclass
class RawAggregates:
    """Post-warmup accumulator deltas of one kernel instance.

    :meth:`ParadynISSystem._raw_aggregates` extracts these from a
    finished run; :func:`assemble_results` turns them (plus the
    :class:`Metrics`) into a :class:`SimulationResults`.  Splitting the
    two steps lets the parallel kernel :meth:`merge` the aggregates of
    every logical process and assemble one result through the exact
    same code path as a sequential run.  Everything here is picklable.
    """

    #: ``(global node id, owner) -> busy µs`` (strictly positive only).
    cpu_busy: Dict[tuple, float] = field(default_factory=dict)
    #: Main-process busy µs on its host CPU (non-SMP; 0.0 otherwise).
    main_busy: float = 0.0
    #: Network busy µs by owning process type.
    net_busy: Dict[ProcessType, float] = field(default_factory=dict)
    pipe_blocked_time: float = 0.0
    pipe_blocked_puts: int = 0
    n_daemons: int = 0
    #: Downtime of daemons still down at end of run (not yet in metrics).
    daemon_downtime_extra: float = 0.0
    #: Time-averaged open-workload active-user level (NaN: no traffic
    #: spec, or the generator carries no user model).
    open_users_mean: float = float("nan")
    #: Observability summary of this run (trace bookkeeping).
    obs_info: Dict[str, object] = field(default_factory=dict)

    def merge(self, other: "RawAggregates") -> None:
        """Fold another LP's aggregates into this one (in place).

        CPU busy keys are disjoint across LPs (each global node lives
        in exactly one), so the union is a plain update; per-owner
        network busy sums across LPs.
        """
        overlap = self.cpu_busy.keys() & other.cpu_busy.keys()
        if overlap:
            raise ValueError(f"LPs share cpu_busy keys: {sorted(overlap)[:4]}")
        self.cpu_busy.update(other.cpu_busy)
        self.main_busy += other.main_busy
        for owner, v in other.net_busy.items():
            self.net_busy[owner] = self.net_busy.get(owner, 0.0) + v
        self.pipe_blocked_time += other.pipe_blocked_time
        self.pipe_blocked_puts += other.pipe_blocked_puts
        self.n_daemons += other.n_daemons
        self.daemon_downtime_extra += other.daemon_downtime_extra
        # Open traffic blocks partitioning, so at most one fragment can
        # carry a user-level mean; adopt it if present.
        if not math.isnan(other.open_users_mean):
            self.open_users_mean = other.open_users_mean


def assemble_results(
    config: SimulationConfig, m: Metrics, agg: RawAggregates
) -> SimulationResults:
    """Turn metrics plus raw aggregates into a :class:`SimulationResults`.

    Shared by the sequential kernel and the parallel coordinator.  All
    per-owner CPU totals are summed over *ascending* global node ids so
    that a merged parallel run adds the identical floats in the
    identical order as a sequential run (float addition does not
    commute at the last ulp).
    """
    cfg = config
    duration = cfg.measured_duration
    seconds = duration / 1e6
    n = cfg.nodes
    smp = cfg.architecture is Architecture.SMP

    cpu_busy = agg.cpu_busy
    node_order = sorted({node for node, _ in cpu_busy})

    def total(owner: ProcessType) -> float:
        return sum(cpu_busy.get((node, owner), 0.0) for node in node_order)

    pd_total = total(ProcessType.PARADYN_DAEMON)
    app_total = total(ProcessType.APPLICATION)
    pvmd_total = total(ProcessType.PVM_DAEMON)
    other_total = total(ProcessType.OTHER)

    if smp:
        main_busy = total(ProcessType.PARADYN_MAIN)
        worker_cpu_capacity = n  # pooled CPUs
        main_capacity = n
    else:
        main_busy = agg.main_busy
        worker_cpu_capacity = n * cfg.cpus_per_node
        main_capacity = 1

    pd_net_busy = agg.net_busy.get(ProcessType.PARADYN_DAEMON, 0.0)
    total_net_busy = sum(agg.net_busy.values())

    n_daemons = agg.n_daemons
    forwarded = sum(m.forwarded_by_node.values())
    forward_calls = sum(m.forward_calls_by_node.values())

    daemon_downtime = m.daemon_downtime + agg.daemon_downtime_extra

    percentiles = m.latency_percentiles()

    def node0(owner: ProcessType) -> float:
        return cpu_busy.get((0, owner), 0.0)

    summary = (
        f"{cfg.architecture.value} n={n} T={cfg.sampling_period / 1e3:g}ms "
        f"b={cfg.batch_size} {cfg.forwarding.value} "
        f"apps={cfg.app_processes_per_node} dur={seconds:g}s"
    )
    if cfg.traffic is not None:
        summary += f" wl={cfg.traffic.label()}"

    return SimulationResults(
        config_summary=summary,
        duration=duration,
        nodes=n,
        pd_cpu_time_per_node=pd_total / n,
        main_cpu_time=main_busy,
        pvmd_cpu_time_per_node=pvmd_total / n,
        other_cpu_time_per_node=other_total / n,
        app_cpu_time_per_node=app_total / n,
        node0_pd_cpu_time=node0(ProcessType.PARADYN_DAEMON),
        node0_app_cpu_time=node0(ProcessType.APPLICATION),
        pd_cpu_utilization_per_node=pd_total / (duration * worker_cpu_capacity),
        app_cpu_utilization_per_node=app_total / (duration * worker_cpu_capacity),
        main_cpu_utilization=main_busy / (duration * main_capacity),
        is_cpu_utilization_per_node=(
            (pd_total + main_busy) / (duration * worker_cpu_capacity)
            if smp
            else pd_total / (duration * worker_cpu_capacity)
        ),
        network_utilization=total_net_busy / duration,
        pd_network_utilization=pd_net_busy / duration,
        monitoring_latency_forwarding=m.latency_forwarding.mean,
        monitoring_latency_total=m.latency_total.mean,
        monitoring_latency_p50=percentiles[50.0],
        monitoring_latency_p90=percentiles[90.0],
        monitoring_latency_p99=percentiles[99.0],
        throughput_per_daemon=(
            forwarded / n_daemons / seconds if n_daemons else 0.0
        ),
        received_throughput=m.samples_received / seconds,
        samples_generated=m.samples_generated,
        samples_received=m.samples_received,
        batches_received=m.batches_received,
        forward_calls_per_node=forward_calls / n,
        merges_total=sum(m.merges_by_node.values()),
        pipe_blocked_time=agg.pipe_blocked_time,
        pipe_blocked_puts=agg.pipe_blocked_puts,
        barrier_wait_time=m.barrier_wait_time,
        barrier_rounds=m.barrier_rounds,
        app_cycles=m.app_cycles,
        samples_dropped=m.samples_dropped,
        drops_by_reason=dict(m.drops_by_reason),
        retransmissions=m.retransmissions,
        messages_lost=m.messages_lost,
        messages_corrupted=m.messages_corrupted,
        forward_timeouts=m.forward_timeouts,
        daemon_crashes=m.daemon_crashes,
        daemon_downtime=daemon_downtime,
        recovery_latency=m.recovery_latency.mean,
        open_arrivals=m.open_arrivals,
        open_completed=m.open_completed,
        open_offered_rate=m.open_arrivals / seconds,
        open_active_users=agg.open_users_mean,
        open_latency_mean=m.open_latency.mean,
        cpu_busy=dict(cpu_busy),
        observability=dict(agg.obs_info),
    )


class ParadynISSystem:
    """A fully wired ROCC model instance, ready to run.

    With an :class:`~repro.rocc.partition.LPRole` the instance builds
    only that logical process's *subset* of the topology — the role's
    node range and, for the main LP, the host workstation — wiring cut
    edges to :class:`~repro.rocc.partition.RemoteSink` targets that the
    boundary network exports at send time.  Node ids, stream names, and
    metric indices stay global, so each node's variate draws are
    bit-identical to its draws in a sequential run.
    """

    def __init__(self, config: SimulationConfig,
                 lp_role: Optional[LPRole] = None):
        self.config = config
        self.lp_role = lp_role
        self.env = Environment()
        self.metrics = Metrics()
        self.streams = StreamFactory(seed=config.seed, replication=config.replication)
        self.worker_cpus: List[RoundRobinCPU] = []
        #: Global node id of each entry in :attr:`worker_cpus`.
        self._node_ids: List[int] = []
        self.host_cpu: Optional[RoundRobinCPU] = None
        self.network: BaseNetwork = self._build_network()
        self.pipes: List[SamplePipe] = []
        self.daemons: List[ParadynDaemon] = []
        self.apps: List[ApplicationProcess] = []
        self.barrier: Optional[CyclicBarrier] = None
        self.main: Optional[MainParadynProcess] = None
        #: Overhead regulators, one per node, when config.adaptive is set.
        self.regulators: List = []
        #: Fault injector, when config.faults is set.
        self.injector: Optional[FaultInjector] = None
        self._snapshot = _Snapshot()
        #: ``(signal, watcher)`` pairs installed for a traced run.
        self._watchers: List[tuple] = []
        self._obs_info: Dict[str, int] = {}

        if config.architecture is Architecture.SMP:
            self._build_smp()
        else:
            self._build_now_or_mpp()

        #: Open-workload arrival source, when config.traffic is set.
        self.traffic_source: Optional[OpenArrivalSource] = None
        if config.traffic is not None:
            if lp_role is not None:
                raise ValueError(
                    "open-workload traffic is a global arrival stream; "
                    "ineligible for partitioning"
                )
            self.traffic_source = OpenArrivalSource(self)

        if config.faults is not None and len(config.faults) > 0:
            self.injector = FaultInjector(
                self.env, config.faults, self.streams, metrics=self.metrics
            )
            self.network.injector = self.injector
            self.injector.arm(self)

        if config.warmup > 0:
            self.env.process(self._warmup_reset(), name="warmup-reset")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_network(self) -> BaseNetwork:
        mode = self.config.effective_network_mode
        if self.lp_role is not None:
            if mode is not NetworkMode.CONTENTION_FREE:
                raise ValueError(
                    "partitioned kernel requires a contention-free network"
                )
            return LPBoundaryNetwork(self.env, self.lp_role.outbox)
        if mode is NetworkMode.SHARED:
            return FIFONetwork(self.env, name="shared-net")
        return ContentionFreeNetwork(self.env, name="cf-net")

    def _make_ctx(self, node_id: int, cpu: RoundRobinCPU) -> NodeContext:
        return NodeContext(
            env=self.env,
            node_id=node_id,
            cpu=cpu,
            network=self.network,
            metrics=self.metrics,
            config=self.config,
            streams=self.streams,
        )

    def _build_now_or_mpp(self) -> None:
        cfg = self.config
        role = self.lp_role
        quantum = cfg.workload.cpu_quantum

        # Host workstation for the main Paradyn process (Figure 1).
        # In a partitioned run only the main LP hosts it; node LPs send
        # their daemon uplinks to a RemoteSink instead.
        if role is None or role.include_main:
            self.host_cpu = RoundRobinCPU(self.env, 1, quantum, name="host.cpu")
            main_ctx = self._make_ctx(-1, self.host_cpu)
            self.main = MainParadynProcess(main_ctx)

        if cfg.barrier_period is not None:
            if role is not None:
                raise ValueError(
                    "barrier couples all nodes; ineligible for partitioning"
                )
            self.barrier = CyclicBarrier(
                self.env, cfg.nodes * cfg.app_processes_per_node, self.metrics
            )

        tree = cfg.forwarding is ForwardingTopology.TREE
        if tree and role is not None:
            raise ValueError(
                "tree forwarding is not yet run on the partitioned kernel"
            )
        node_ids = range(cfg.nodes) if role is None else role.node_ids
        for i in node_ids:
            cpu = RoundRobinCPU(self.env, cfg.cpus_per_node, quantum, name=f"node{i}.cpu")
            self.worker_cpus.append(cpu)
            self._node_ids.append(i)
            ctx = self._make_ctx(i, cpu)
            pipe = SamplePipe(
                self.env,
                per_writer_capacity=cfg.pipe_capacity,
                writers=cfg.app_processes_per_node,
                name=f"node{i}.pipe",
            )
            self.pipes.append(pipe)
            if tree and i > 0:
                parent = self.daemons[parent_index(i)]
                parent.enable_tree_inbox()
                if (
                    cfg.recovery is not None
                    and cfg.recovery.reroute_around_down_daemons
                ):
                    deliver = self._tree_deliver(i)
                else:
                    deliver = parent.deliver
            elif self.main is not None:
                deliver = self.main.deliver
            else:
                deliver = RemoteSink(role.plan.main_lp)
            daemon = ParadynDaemon(ctx, pipe, deliver)
            self.daemons.append(daemon)
            sampler_state = self._attach_regulator(ctx, daemon)
            for p in range(cfg.app_processes_per_node):
                self.apps.append(
                    ApplicationProcess(
                        ctx, p, pipe, self.barrier, sampler_state=sampler_state
                    )
                )
            if cfg.include_pvmd:
                PVMDaemon(ctx)
            if cfg.include_other:
                OtherProcesses(ctx)

    def _build_smp(self) -> None:
        cfg = self.config
        quantum = cfg.workload.cpu_quantum
        n_cpus = cfg.nodes
        cpu = RoundRobinCPU(self.env, n_cpus, quantum, name="smp.cpu")
        self.worker_cpus.append(cpu)
        self._node_ids.append(0)
        ctx = self._make_ctx(0, cpu)

        self.main = MainParadynProcess(ctx)

        n_apps = cfg.app_processes_per_node  # total on the SMP
        if cfg.barrier_period is not None:
            self.barrier = CyclicBarrier(self.env, n_apps, self.metrics)

        k = cfg.daemons
        per_daemon = math.ceil(n_apps / k)
        for d in range(k):
            writers = min(per_daemon, n_apps - d * per_daemon)
            pipe = SamplePipe(
                self.env,
                per_writer_capacity=cfg.pipe_capacity,
                writers=max(1, writers),
                name=f"smp.pipe{d}",
            )
            self.pipes.append(pipe)
            self.daemons.append(
                ParadynDaemon(ctx, pipe, self.main.deliver, name=f"smp/pd{d}")
            )
        sampler_state = self._attach_regulator(ctx, self.daemons[0])
        for a in range(n_apps):
            pipe = self.pipes[min(a // per_daemon, k - 1)]
            self.apps.append(
                ApplicationProcess(
                    ctx, a, pipe, self.barrier, sampler_state=sampler_state
                )
            )
        if cfg.include_pvmd:
            PVMDaemon(ctx)
        if cfg.include_other:
            OtherProcesses(ctx)

    def _tree_deliver(self, child: int):
        """Reroute recovery: a tree child's batches land at the nearest
        *live* ancestor's inbox (decided at delivery time), or at the
        main process when the whole heap path is down.

        Every ancestor of a node is an interior node, so its inbox is
        guaranteed to exist once construction finishes.
        """

        def deliver(batch):
            target = live_ancestor(child, lambda j: self.daemons[j].down)
            if target < 0:
                self.main.deliver(batch)
            else:
                self.daemons[target].deliver(batch)

        return deliver

    def _attach_regulator(self, ctx: NodeContext, daemon: ParadynDaemon):
        """Create the adaptive sampler + regulator for a node, if enabled.

        Returns the shared :class:`AdaptiveSampler` (or ``None`` for the
        paper's static configuration).
        """
        if self.config.adaptive is None:
            return None
        from .adaptive import AdaptiveSampler, OverheadRegulator

        sampler_state = AdaptiveSampler(period=self.config.sampling_period)
        self.regulators.append(
            OverheadRegulator(ctx, sampler_state, self.config.adaptive, daemon)
        )
        return sampler_state

    # ------------------------------------------------------------------
    # Warmup
    # ------------------------------------------------------------------
    def _warmup_reset(self):
        # URGENT, so the reset precedes every NORMAL event sharing the
        # warmup instant: "created at the epoch" then deterministically
        # means created *after* the reset, which is what note_receipt's
        # ``created_at >= epoch`` filter assumes.  Left to sequence-id
        # tie-breaking, a sample generated exactly at t == warmup could
        # be counted, erased by the reset, and still pass the receipt
        # filter — breaking sample conservation by one.
        gate = Event(self.env)
        gate._value = None
        self.env.schedule(gate, URGENT, self.config.warmup)
        yield gate
        snap = self._snapshot
        now = self.env.now
        snap.cpu_busy = [dict(c.busy_by_owner) for c in self.worker_cpus]
        snap.cpu_busy_integral = [
            c.busy_servers.integral(now) for c in self.worker_cpus
        ]
        if self.host_cpu is not None:
            snap.host_busy = dict(self.host_cpu.busy_by_owner)
        snap.net_busy = dict(self.network.busy_by_owner)
        snap.pipe_blocked_time = sum(p.blocked_time for p in self.pipes)
        snap.pipe_blocked_puts = sum(p.blocked_puts for p in self.pipes)
        # Counters and tallies restart cleanly; samples generated before
        # warmup but received (or dropped) after it are not counted on
        # either side — the epoch passed to reset() makes receipt/drop
        # accounting skip them, preserving sample conservation.
        self.metrics.reset(now=now)
        if self.traffic_source is not None:
            self.traffic_source.warmup_snapshot(now)

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------
    def _run_label(self) -> str:
        cfg = self.config
        label = (
            f"{cfg.architecture.value} n={cfg.nodes} "
            f"seed={cfg.seed} rep={cfg.replication}"
        )
        if self.lp_role is not None:
            label += f" lp{self.lp_role.lp_index}"
        return label

    def _attach_observability(self, tracer: Tracer) -> None:
        """Install occupancy watchers for a traced run.

        Each simulation run gets one synthetic sim-time process track
        (:func:`sim_track_pid` of the run label) holding a Gantt row per
        worker CPU, the host CPU, and the interconnect.
        """
        label = self._run_label()
        pid = sim_track_pid(label)
        tracer.name_process(pid, f"sim: {label}")
        tracked: List[tuple] = [
            (f"node{node}.cpu", cpu.busy_servers)
            for node, cpu in zip(self._node_ids, self.worker_cpus)
        ]
        if self.host_cpu is not None:
            tracked.append(("host.cpu", self.host_cpu.busy_servers))
        tracked.append(("network", self.network.in_flight))
        for tid, signal in tracked:
            watcher = _OccupancyWatcher(tracer, pid, tid, f"{tid}.level")
            signal.on_change = watcher
            self._watchers.append((signal, watcher))

    def _finish_observability(self) -> None:
        now = self.env.now
        spans = samples = 0
        for signal, watcher in self._watchers:
            watcher.finish(now)
            signal.on_change = None
            spans += watcher.spans
            samples += watcher.samples
        self._watchers = []
        self._obs_info = {
            "occupancy_spans": spans,
            "counter_samples": samples,
            "sim_track": self._run_label(),
        }

    def _publish_metrics(self) -> None:
        """Fold this run's totals into the process-wide obs registry."""
        m = self.metrics
        reg = obs_registry()
        reg.counter("rocc.runs", "completed simulation runs").inc()
        reg.counter("rocc.samples_generated").inc(m.samples_generated)
        reg.counter("rocc.samples_received").inc(m.samples_received)
        reg.counter("rocc.batches_received").inc(m.batches_received)
        if m.samples_dropped:
            reg.counter("rocc.samples_dropped").inc(m.samples_dropped)
        if self.traffic_source is not None:
            reg.counter(
                "workload.arrivals", "open-workload requests arrived"
            ).inc(m.open_arrivals)
            reg.counter(
                "workload.completed", "open-workload requests served"
            ).inc(m.open_completed)
            seconds = self.config.measured_duration / 1e6
            reg.gauge(
                "workload.offered_rate", "open arrivals per second"
            ).set(m.open_arrivals / seconds if seconds > 0 else 0.0)
            users = self.traffic_source.users_mean(self.env.now)
            if not math.isnan(users):
                reg.gauge(
                    "workload.active_users", "time-averaged user level"
                ).set(users)

    # ------------------------------------------------------------------
    # Execution and results
    # ------------------------------------------------------------------
    def run(self) -> SimulationResults:
        cfg = self.config
        tracer = current_tracer()
        if tracer is not None:
            self._attach_observability(tracer)
        t0 = time.perf_counter()
        with maybe_span(
            "simulate", cat="run",
            args={"config": self._run_label(), "duration_us": cfg.duration},
        ):
            if profile_enabled():
                profiler = KernelProfiler(self.env)
                with profiler:
                    self.env.run(
                        until=cfg.duration,
                        max_events=cfg.max_events,
                        max_wall_seconds=cfg.max_wall_seconds,
                    )
                set_last_profile(profiler.report())
            else:
                self.env.run(
                    until=cfg.duration,
                    max_events=cfg.max_events,
                    max_wall_seconds=cfg.max_wall_seconds,
                )
        if tracer is not None:
            self._finish_observability()
        self._publish_metrics()
        obs_registry().histogram(
            "rocc.run_wall_seconds", "wall time of one simulation run"
        ).observe(time.perf_counter() - t0)
        return self._results()

    def _busy(self, cpu_index: int, owner: ProcessType) -> float:
        cpu = self.worker_cpus[cpu_index]
        base = 0.0
        if self._snapshot.cpu_busy:
            base = self._snapshot.cpu_busy[cpu_index].get(owner, 0.0)
        return cpu.busy_by_owner.get(owner, 0.0) - base

    def _raw_aggregates(self) -> RawAggregates:
        """Post-warmup accumulator deltas of this kernel instance."""
        smp = self.config.architecture is Architecture.SMP

        cpu_busy = {}
        for idx in range(len(self.worker_cpus)):
            node = self._node_ids[idx]
            for owner in _WORKER_OWNERS:
                v = self._busy(idx, owner)
                if v > 0.0:
                    cpu_busy[(node, owner)] = v

        if smp or self.host_cpu is None:
            main_busy = 0.0
        else:
            host_base = self._snapshot.host_busy.get(ProcessType.PARADYN_MAIN, 0.0)
            main_busy = (
                self.host_cpu.busy_by_owner.get(ProcessType.PARADYN_MAIN, 0.0)
                - host_base
            )

        net_base = self._snapshot.net_busy
        net_busy = {
            k: v - net_base.get(k, 0.0)
            for k, v in self.network.busy_by_owner.items()
        }

        # Downtime of daemons that are still down at the end of the run.
        downtime_extra = sum(
            self.env.now - d._down_since
            for d in self.daemons
            if d.down and d._down_since is not None
        )

        open_users_mean = (
            self.traffic_source.users_mean(self.env.now)
            if self.traffic_source is not None
            else float("nan")
        )

        return RawAggregates(
            cpu_busy=cpu_busy,
            main_busy=main_busy,
            net_busy=net_busy,
            open_users_mean=open_users_mean,
            pipe_blocked_time=(
                sum(p.blocked_time for p in self.pipes)
                - self._snapshot.pipe_blocked_time
            ),
            pipe_blocked_puts=(
                sum(p.blocked_puts for p in self.pipes)
                - self._snapshot.pipe_blocked_puts
            ),
            n_daemons=len(self.daemons),
            daemon_downtime_extra=downtime_extra,
            obs_info=dict(self._obs_info),
        )

    def _results(self) -> SimulationResults:
        return assemble_results(self.config, self.metrics, self._raw_aggregates())


def simulate(
    config: SimulationConfig,
    lp_workers: Optional[int] = None,
) -> SimulationResults:
    """Build and run one ROCC simulation; returns its results.

    ``lp_workers`` ≥ 2 requests the partitioned parallel kernel
    (default: the ``REPRO_DES_PARALLEL`` environment variable).
    Configurations the conservative protocol cannot handle — see
    :func:`~repro.rocc.partition.parallel_ineligibility` — silently
    fall back to the sequential kernel, so the knob is always safe to
    set.
    """
    if lp_workers is None:
        lp_workers = lp_workers_from_env()
    if lp_workers is not None and lp_workers >= 2:
        if parallel_ineligibility(config) is None:
            from ..des.parallel import parallel_simulate

            return parallel_simulate(config, lp_workers)
    return ParadynISSystem(config).run()
