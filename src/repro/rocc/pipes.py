"""Finite-capacity Unix-pipe model between applications and daemons.

In Paradyn, instrumentation samples travel from the application process
to the local daemon through Unix pipes; when a pipe fills up the
*writing application blocks* until the daemon drains it — the mechanism
behind the small-sampling-period anomaly of §4.3.3.  :class:`SamplePipe`
models a daemon's pipe set as one finite FIFO buffer whose capacity
scales with the number of writers (a documented approximation of
per-writer pipes; see DESIGN.md §5.4), and records how long writers
spent blocked.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..des.core import Environment
from ..des.events import Event
from ..des.monitor import TimeWeighted
from ..des.stores import Store, StoreGet, StorePut
from .requests import Sample

__all__ = ["SamplePipe"]


class _GatedGet(Event):
    """A pipe read deferred until the stall gate opens.

    Once the gate fires, a real store get is issued and its outcome
    chained into this event.  ``cancel()`` (used when a crashing daemon
    abandons a pending read) withdraws either stage so no sample can be
    consumed by a dead reader.
    """

    __slots__ = ("_pipe", "_inner", "_cancelled")

    def __init__(self, pipe: "SamplePipe"):
        super().__init__(pipe.env)
        self._pipe = pipe
        self._inner: Optional[StoreGet] = None
        self._cancelled = False
        pipe._stall_gate.callbacks.append(self._gate_open)

    def _gate_open(self, _event: Event) -> None:
        if self._cancelled:
            return
        pipe = self._pipe
        inner = pipe._store.get()
        self._inner = inner
        if inner.triggered:
            pipe.occupancy.update(len(pipe._store.items), pipe.env.now)
            self.trigger(inner)
        else:
            inner.callbacks.append(self._inner_done)

    def _inner_done(self, event: Event) -> None:
        pipe = self._pipe
        pipe.occupancy.update(len(pipe._store.items), pipe.env.now)
        self.trigger(event)

    def cancel(self) -> None:
        self._cancelled = True
        if self._inner is not None and not self._inner.triggered:
            self._inner.cancel()


class SamplePipe:
    """Bounded FIFO of :class:`Sample` objects with blocked-time stats."""

    def __init__(
        self,
        env: Environment,
        per_writer_capacity: int = 128,
        writers: int = 1,
        name: str = "pipe",
    ):
        if per_writer_capacity < 1:
            raise ValueError("per_writer_capacity must be >= 1")
        if writers < 1:
            raise ValueError("writers must be >= 1")
        self.env = env
        self.name = name
        self.capacity = per_writer_capacity * writers
        self._store = Store(env, capacity=self.capacity)
        #: Total time writers spent blocked on a full pipe, µs.
        self.blocked_time = 0.0
        #: Number of puts that had to block.
        self.blocked_puts = 0
        #: Time-weighted occupancy of the pipe.
        self.occupancy = TimeWeighted(f"{name}.occupancy", start_time=env.now)
        #: Stall-fault state (repro.faults): while the gate event exists
        #: and has not fired, reads return nothing.
        self._stall_gate: Optional[Event] = None
        self._stall_until = 0.0
        #: Number of stall windows injected and their total span, µs.
        self.stalls = 0
        self.stalled_time = 0.0
        # Start times of in-flight blocked puts; the store resolves put
        # waiters FIFO, so popleft pairs each wait with its own start.
        self._blocked_since: deque = deque()
        # Bound once: blocked puts/gets are the hot path of §4.3.3 runs
        # and must not allocate a closure per blocked operation.
        self._charge_cb = self._charge_block
        self._occupancy_cb = self._update_occupancy

    def __len__(self) -> int:
        # A stalled pipe looks empty to its reader: the daemon's burst
        # drain must not observe items it cannot yet fetch.
        if self.is_stalled:
            return 0
        return len(self._store.items)

    @property
    def is_stalled(self) -> bool:
        """Whether a stall window is currently open."""
        return self._stall_gate is not None and not self._stall_gate.triggered

    def stall(self, duration: float) -> None:
        """Open (or extend) a stall window of *duration* µs from now.

        Writers are unaffected until the buffer fills; reads issued
        during the window resolve only after it closes.
        """
        if duration <= 0:
            raise ValueError("stall duration must be positive")
        until = self.env.now + duration
        if self.is_stalled:
            self._stall_until = max(self._stall_until, until)
            return
        self._stall_until = until
        self._stall_gate = Event(self.env)
        self.stalls += 1
        self.env.process(self._stall_clock(), name=f"{self.name}/stall")

    def _stall_clock(self):
        started = self.env.now
        while self.env.now < self._stall_until:
            yield self.env.hold(self._stall_until - self.env.now)
        self.stalled_time += self.env.now - started
        gate, self._stall_gate = self._stall_gate, None
        gate.succeed()

    @property
    def is_full(self) -> bool:
        return len(self._store.items) >= self.capacity

    def put(self, sample: Sample) -> Event:
        """Write a sample; the event fires once the pipe accepts it.

        Blocked-time accounting happens transparently: if the pipe is
        full the put is tracked and the wait charged when it resolves.
        """
        started = self.env.now
        event = self._store.put(sample)
        if not event.triggered:
            self.blocked_puts += 1
            self._blocked_since.append(started)
            event.callbacks.append(self._charge_cb)
        else:
            self.occupancy.update(len(self._store.items), self.env.now)
        return event

    def _charge_block(self, _event: Event) -> None:
        self.blocked_time += self.env.now - self._blocked_since.popleft()
        self.occupancy.update(len(self._store.items), self.env.now)

    def _update_occupancy(self, _event: Event) -> None:
        self.occupancy.update(len(self._store.items), self.env.now)

    def get(self) -> "StoreGet | _GatedGet":
        """Read the next sample (daemon side); blocks while empty.

        During an injected stall window the read is gated: it resolves
        (against the then-current buffer) only after the stall ends.
        """
        if self.is_stalled:
            return _GatedGet(self)
        event = self._store.get()
        if event.triggered:
            self.occupancy.update(len(self._store.items), self.env.now)
        else:
            event.callbacks.append(self._occupancy_cb)
        return event
