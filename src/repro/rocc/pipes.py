"""Finite-capacity Unix-pipe model between applications and daemons.

In Paradyn, instrumentation samples travel from the application process
to the local daemon through Unix pipes; when a pipe fills up the
*writing application blocks* until the daemon drains it — the mechanism
behind the small-sampling-period anomaly of §4.3.3.  :class:`SamplePipe`
models a daemon's pipe set as one finite FIFO buffer whose capacity
scales with the number of writers (a documented approximation of
per-writer pipes; see DESIGN.md §5.4), and records how long writers
spent blocked.
"""

from __future__ import annotations

from ..des.core import Environment
from ..des.events import Event
from ..des.monitor import TimeWeighted
from ..des.stores import Store, StoreGet, StorePut
from .requests import Sample

__all__ = ["SamplePipe"]


class SamplePipe:
    """Bounded FIFO of :class:`Sample` objects with blocked-time stats."""

    def __init__(
        self,
        env: Environment,
        per_writer_capacity: int = 128,
        writers: int = 1,
        name: str = "pipe",
    ):
        if per_writer_capacity < 1:
            raise ValueError("per_writer_capacity must be >= 1")
        if writers < 1:
            raise ValueError("writers must be >= 1")
        self.env = env
        self.name = name
        self.capacity = per_writer_capacity * writers
        self._store = Store(env, capacity=self.capacity)
        #: Total time writers spent blocked on a full pipe, µs.
        self.blocked_time = 0.0
        #: Number of puts that had to block.
        self.blocked_puts = 0
        #: Time-weighted occupancy of the pipe.
        self.occupancy = TimeWeighted(f"{name}.occupancy", start_time=env.now)

    def __len__(self) -> int:
        return len(self._store.items)

    @property
    def is_full(self) -> bool:
        return len(self._store.items) >= self.capacity

    def put(self, sample: Sample) -> Event:
        """Write a sample; the event fires once the pipe accepts it.

        Blocked-time accounting happens transparently: if the pipe is
        full the put is tracked and the wait charged when it resolves.
        """
        started = self.env.now
        event = self._store.put(sample)
        if not event.triggered:
            self.blocked_puts += 1
            event.callbacks.append(
                lambda _ev, _t0=started: self._charge_block(_t0)
            )
        else:
            self.occupancy.update(len(self._store.items), self.env.now)
        return event

    def _charge_block(self, started: float) -> None:
        self.blocked_time += self.env.now - started
        self.occupancy.update(len(self._store.items), self.env.now)

    def get(self) -> StoreGet:
        """Read the next sample (daemon side); blocks while empty."""
        event = self._store.get()
        if event.triggered:
            self.occupancy.update(len(self._store.items), self.env.now)
        else:
            event.callbacks.append(
                lambda _ev: self.occupancy.update(
                    len(self._store.items), self.env.now
                )
            )
        return event
