"""Per-node wiring shared by all ROCC actors.

:class:`NodeContext` bundles what every process on a node needs — the
node's CPU scheduler, the interconnect, the metrics sink, the workload
variate streams, and the run configuration.  :class:`CyclicBarrier`
implements the global synchronization barrier of §4.4.3 (Figure 28).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des.core import Environment
from ..des.events import Event
from ..variates.streams import StreamFactory
from .config import SimulationConfig
from .cpu import RoundRobinCPU
from .metrics import Metrics
from .network import BaseNetwork

__all__ = ["NodeContext", "CyclicBarrier"]


@dataclass
class NodeContext:
    """Everything a process running on one node can touch."""

    env: Environment
    node_id: int
    cpu: RoundRobinCPU
    network: BaseNetwork
    metrics: Metrics
    config: SimulationConfig
    streams: StreamFactory


class CyclicBarrier:
    """A reusable synchronization barrier over ``parties`` processes.

    ``arrive()`` returns an event that fires once all parties of the
    current round have arrived; the barrier then resets for the next
    round.  Used to model the application's synchronization barrier
    operations whose frequency Figure 28 sweeps.
    """

    def __init__(self, env: Environment, parties: int, metrics: Optional[Metrics] = None):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.env = env
        self.parties = parties
        self.metrics = metrics
        self._count = 0
        self._event = Event(env)
        self.rounds = 0

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return self._count

    def arrive(self) -> Event:
        """Register arrival; the returned event fires on barrier release."""
        self._count += 1
        event = self._event
        if self._count >= self.parties:
            self._count = 0
            self._event = Event(self.env)
            self.rounds += 1
            if self.metrics is not None:
                self.metrics.barrier_rounds += 1
            event.succeed()
        return event
