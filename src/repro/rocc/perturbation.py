"""Instrumentation perturbation analysis.

The paper's motivation (§1) cites measurement studies showing the IS
"degrading the performance of an instrumented application program from
10 % to more than 50 %" (Malony/Reed/Wijshoff's perturbation analysis,
Gu et al., Miller et al.).  This module quantifies that effect for any
configuration: run the ROCC model with and without instrumentation on
common random numbers and report the slowdown decomposition.

Direct overhead (IS CPU occupancy) and *indirect* perturbation (lost
application progress beyond the direct CPU the IS consumed — queueing
displacement, pipe blocking, network contention) are reported
separately, which is exactly the distinction perturbation-compensation
work cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SimulationConfig
from .metrics import SimulationResults
from .system import simulate

__all__ = ["PerturbationReport", "measure_perturbation"]


@dataclass(frozen=True)
class PerturbationReport:
    """Instrumented-vs-baseline comparison for one configuration."""

    instrumented: SimulationResults
    baseline: SimulationResults

    @property
    def app_progress_ratio(self) -> float:
        """Instrumented application progress relative to baseline
        (completed compute/communicate cycles)."""
        if self.baseline.app_cycles == 0:
            return float("nan")
        return self.instrumented.app_cycles / self.baseline.app_cycles

    @property
    def slowdown_percent(self) -> float:
        """Application slowdown caused by instrumentation, in percent."""
        return 100.0 * (1.0 - self.app_progress_ratio)

    @property
    def direct_overhead_percent(self) -> float:
        """Daemon CPU occupancy as a share of per-node CPU capacity.

        Only the on-node IS work counts: the main Paradyn process runs
        on its own host workstation (Figure 1) and cannot displace the
        application directly.
        """
        r = self.instrumented
        return 100.0 * r.pd_cpu_utilization_per_node

    @property
    def indirect_percent(self) -> float:
        """Perturbation not explained by direct CPU theft: blocking on
        full pipes, displaced scheduling, network contention.

        May be *negative* when the daemon's CPU came out of time the
        application would have spent waiting anyway (network bursts) —
        direct occupancy then overstates the damage.
        """
        return self.slowdown_percent - self.direct_overhead_percent

    @property
    def app_cpu_delta_percent(self) -> float:
        """Change in application CPU occupancy (utilization points)."""
        return 100.0 * (
            self.baseline.app_cpu_utilization_per_node
            - self.instrumented.app_cpu_utilization_per_node
        )

    def summary(self) -> str:
        return (
            f"slowdown {self.slowdown_percent:.2f}% "
            f"(direct {self.direct_overhead_percent:.2f}%, "
            f"indirect {self.indirect_percent:.2f}%); "
            f"app CPU -{self.app_cpu_delta_percent:.2f} pts"
        )


def measure_perturbation(config: SimulationConfig) -> PerturbationReport:
    """Run *config* instrumented and uninstrumented (common random
    numbers: same seed/replication) and compare."""
    if not config.instrumented:
        raise ValueError("pass an instrumented configuration")
    instrumented = simulate(config)
    baseline = simulate(config.with_(instrumented=False))
    return PerturbationReport(instrumented=instrumented, baseline=baseline)
