"""Structured metadata of the reproduced paper and its claims.

This module is the machine-readable counterpart of EXPERIMENTS.md: the
paper's identity, and every claim the reproduction targets with the
experiment id that regenerates the evidence and the reproduction
status.  ``tests/test_paper_manifest.py`` keeps it honest — every
referenced experiment must exist in the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Tuple

__all__ = ["PAPER", "CLAIMS", "Claim", "Status", "claims_by_status"]


class Status(str, Enum):
    """Reproduction outcome for one claim."""

    REPRODUCED = "reproduced"  # shape and approximate factors match
    REPRODUCED_WITH_CAVEAT = "reproduced_with_caveat"  # documented nuance
    DIVERGES = "diverges"  # shape differs; cause documented


@dataclass(frozen=True)
class Claim:
    """One testable claim from the paper."""

    id: str
    text: str
    source: str  # section / table / figure in the paper
    experiments: Tuple[str, ...]  # registry ids producing the evidence
    status: Status
    note: str = ""


PAPER = {
    "title": "Modeling, Evaluation, and Testing of Paradyn Instrumentation System",
    "authors": (
        "Abdul Waheed",
        "Diane T. Rover",
        "Jeffrey K. Hollingsworth",
    ),
    "venue": "Supercomputing (SC)",
    "year": 1996,
}


CLAIMS: List[Claim] = [
    Claim(
        id="bf-pd-overhead",
        text="The BF policy reduces the Paradyn daemon's direct CPU "
             "overhead by more than 60% relative to CF.",
        source="Abstract, §5.2, Figure 30",
        experiments=("figure30",),
        status=Status.REPRODUCED,
        note="64-66% measured in testbed mode",
    ),
    Claim(
        id="bf-main-overhead",
        text="The BF policy reduces the main Paradyn process's CPU "
             "overhead by about 80%.",
        source="§5.2, Figure 30",
        experiments=("figure30",),
        status=Status.REPRODUCED,
        note="77-83% measured",
    ),
    Claim(
        id="app-independence",
        text="The overhead reduction under BF is not significantly "
             "affected by the choice of application program.",
        source="§5.2, Figure 31, Table 8",
        experiments=("figure31",),
        status=Status.REPRODUCED,
        note="policy explains >99% of variation, application <0.1%",
    ),
    Claim(
        id="model-validates",
        text="The parameterized simulation model closely follows the "
             "measurement-based results.",
        source="§2.4, Table 3",
        experiments=("table3",),
        status=Status.REPRODUCED,
    ),
    Claim(
        id="fitting-families",
        text="Application CPU request lengths are best fit by a "
             "lognormal distribution; network request lengths by an "
             "exponential.",
        source="§2.3.2, Figure 8, Table 2",
        experiments=("figure8", "table2"),
        status=Status.REPRODUCED,
    ),
    Claim(
        id="now-period-dominates",
        text="The sampling period is the single most important factor "
             "for the daemon's CPU overhead on a NOW.",
        source="§4.2.1, Figure 16",
        experiments=("figure16", "table4"),
        status=Status.REPRODUCED,
        note="B explains ~65% here vs 68% in the paper, policy second "
             "in both",
    ),
    Claim(
        id="batch-knee",
        text="Overhead drops sharply just past batch size 1 and levels "
             "off; a batch size near the knee of the curve is desirable.",
        source="§4.2.4, Figures 10 and 19",
        experiments=("figure10", "figure19"),
        status=Status.REPRODUCED,
    ),
    Claim(
        id="smp-daemon-sizing",
        text="Under CF, more daemons improve forwarding throughput at "
             "higher CPU counts; under BF one daemon suffices for up to "
             "16 processors.",
        source="§4.3.2, Figure 21",
        experiments=("figure21",),
        status=Status.REPRODUCED_WITH_CAVEAT,
        note="crossover reproduced at ~32 CPUs instead of ~4-8 (cost "
             "scale); BF single-daemon sufficiency holds at 16",
    ),
    Claim(
        id="pipe-blocking",
        text="At small sampling periods the pipe fills and the sample-"
             "generating application process blocks until the daemon "
             "drains it.",
        source="§4.3.3, Figure 23",
        experiments=("figure23",),
        status=Status.REPRODUCED,
    ),
    Claim(
        id="tree-overhead",
        text="Binary-tree forwarding raises daemon CPU overhead (merge "
             "work) while leaving monitoring latency essentially "
             "unchanged.",
        source="§4.4.2, Figures 26-27",
        experiments=("figure26", "figure27"),
        status=Status.REPRODUCED,
    ),
    Claim(
        id="bf-latency-tradeoff",
        text="Choosing BF over CF trades lower direct overhead for "
             "higher (accumulation-dominated) monitoring latency.",
        source="§4.4.2, Figure 26",
        experiments=("figure26",),
        status=Status.REPRODUCED,
    ),
    Claim(
        id="barrier-effect",
        text="Frequent barrier operations reduce the application's CPU "
             "occupancy, leaving the daemon relatively more CPU.",
        source="§4.4.3, Figure 28",
        experiments=("figure28",),
        status=Status.REPRODUCED_WITH_CAVEAT,
        note="reproduced as the daemon's share of busy CPU; raw daemon "
             "demand is sampling-driven and barrier-independent",
    ),
    Claim(
        id="mpp-latency-attribution",
        text="Node count and sampling period are the most important "
             "factors for MPP monitoring latency.",
        source="§4.4.1, Figure 25",
        experiments=("figure25",),
        status=Status.DIVERGES,
        note="with a contention-free network and receipt-at-delivery, "
             "node count cannot influence latency; the central_ingress "
             "option restores the dependence (see EXPERIMENTS.md)",
    ),
    Claim(
        id="adaptive-outlook",
        text="With a model of the IS, the system can adapt its behavior "
             "to keep overheads within user-specified limits.",
        source="§6 (outlook; implemented here as an extension)",
        experiments=("extra_adaptive",),
        status=Status.REPRODUCED,
        note="regulator holds a 26% static overhead inside a 1% budget",
    ),
]


def claims_by_status(status: Status) -> List[Claim]:
    """All claims with the given reproduction status."""
    return [c for c in CLAIMS if c.status is status]
