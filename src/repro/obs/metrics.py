"""Process-wide metrics registry: counters, gauges, histograms.

Subsystems publish their activity here — the ROCC system publishes one
set of per-run totals after every simulation, the fault injector counts
injections and message outcomes as they happen, daemon recovery
machinery counts retransmissions and crash recoveries, and the
verification harness counts audits and violations.  The registry is a
plain in-process singleton (:func:`registry`): publishing is one
attribute update, so the metrics stay cheap enough to leave on
unconditionally — the hot DES kernel never touches them.

Cross-process runs (the experiment engine's workers) ship a snapshot
delta back with each traced cell; :meth:`MetricsRegistry.merge_snapshot`
folds it into the parent so CLI summaries see the whole fleet's
activity.  Snapshots are plain dicts (JSON-friendly, picklable).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "diff_snapshots",
    "timed",
]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value (e.g. current pool size)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


#: Default histogram bucket upper bounds: four decades around 1.0,
#: suiting both second-scale wall times and µs-scale latencies once the
#: caller picks the unit.
_DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class Histogram:
    """Fixed-bucket histogram with count / sum / min / max."""

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count",
                 "total", "_min", "_max")

    def __init__(self, name: str, help: str = "",
                 bounds: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.help = help
        self.bounds = tuple(bounds) if bounds else _DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        # One bucket per bound plus the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self.count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self.count else math.nan


class MetricsRegistry:
    """Name → metric map with get-or-create accessors.

    Accessors return the existing metric when the name is known (so
    hot sites can cache the object once) and raise on a kind mismatch
    rather than silently aliasing two different instruments.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help, **kwargs)
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  bounds: Optional[Tuple[float, ...]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Zero every metric **in place** — cached references (module
        globals of hot publishers) stay valid across test isolation."""
        for metric in self._metrics.values():
            if isinstance(metric, Counter) or isinstance(metric, Gauge):
                metric.value = 0.0
            elif isinstance(metric, Histogram):
                metric.bucket_counts = [0] * (len(metric.bounds) + 1)
                metric.count = 0
                metric.total = 0.0
                metric._min = math.inf
                metric._max = -math.inf

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-friendly view of every metric."""
        out: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                h = metric
                out[name] = {
                    "type": "histogram",
                    "count": h.count,
                    "sum": h.total,
                    "min": h.minimum if h.count else None,
                    "max": h.maximum if h.count else None,
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                }
        return out

    def merge_snapshot(self, snap: Dict[str, dict]) -> None:
        """Fold a snapshot (typically a worker delta) into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins, the gauge contract).
        """
        for name, entry in snap.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).value += entry["value"]
            elif kind == "gauge":
                self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                h = self.histogram(name, bounds=tuple(entry["bounds"]))
                if tuple(entry["bounds"]) != h.bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds mismatch on merge"
                    )
                for i, c in enumerate(entry["bucket_counts"]):
                    h.bucket_counts[i] += c
                h.count += entry["count"]
                h.total += entry["sum"]
                if entry["count"]:
                    h._min = min(h._min, entry["min"])
                    h._max = max(h._max, entry["max"])

    def format(self) -> str:
        """Terminal rendering of every metric, one line each."""
        lines = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"  {name:<36s} {metric.value:g}")
            elif isinstance(metric, Gauge):
                lines.append(f"  {name:<36s} {metric.value:g} (gauge)")
            else:
                lines.append(
                    f"  {name:<36s} n={metric.count} mean={metric.mean:g} "
                    f"min={metric.minimum:g} max={metric.maximum:g}"
                )
        return "\n".join(lines) if lines else "  (no metrics)"


def diff_snapshots(before: Dict[str, dict], after: Dict[str, dict]) -> Dict[str, dict]:
    """Delta of two snapshots of the *same* registry (after − before).

    Used by engine workers to ship only the activity of one cell.
    Counters and histogram buckets subtract; gauges report the final
    value; histogram min/max carry the ``after`` values (extremes are
    not invertible — documented approximation).
    """
    out: Dict[str, dict] = {}
    for name, entry in after.items():
        prev = before.get(name)
        kind = entry.get("type")
        if kind == "counter":
            delta = entry["value"] - (prev["value"] if prev else 0.0)
            if delta:
                out[name] = {"type": "counter", "value": delta}
        elif kind == "gauge":
            if prev is None or prev["value"] != entry["value"]:
                out[name] = dict(entry)
        elif kind == "histogram":
            prev_counts = prev["bucket_counts"] if prev else [0] * len(entry["bucket_counts"])
            counts = [a - b for a, b in zip(entry["bucket_counts"], prev_counts)]
            count = entry["count"] - (prev["count"] if prev else 0)
            if count:
                out[name] = {
                    "type": "histogram",
                    "count": count,
                    "sum": entry["sum"] - (prev["sum"] if prev else 0.0),
                    "min": entry["min"],
                    "max": entry["max"],
                    "bounds": list(entry["bounds"]),
                    "bucket_counts": counts,
                }
    return out


@contextmanager
def timed(histogram: Histogram):
    """Observe a block's wall-clock duration (seconds) into *histogram*.

    The observation is recorded even when the block raises, so failure
    paths (retried cell attempts, aborted batches) stay visible in the
    latency distribution.
    """
    t0 = perf_counter()
    try:
        yield histogram
    finally:
        histogram.observe(perf_counter() - t0)


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry singleton."""
    return _REGISTRY
