"""Observability for the reproduction's own runs (spans, metrics, export).

See :mod:`repro.obs.spans` for the tracing model, :mod:`repro.obs.metrics`
for the process-wide metrics registry, and :mod:`repro.obs.export` for the
JSONL / Chrome ``trace_event`` / terminal exporters.
"""

from .export import (
    chrome_trace,
    export_trace,
    summarize,
    trace_events,
    validate_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    registry,
    timed,
)
from .spans import (
    SIM,
    WALL,
    CounterSample,
    Span,
    SpanBatch,
    Tracer,
    current_tracer,
    maybe_span,
    sim_track_pid,
    start_tracing,
    stop_tracing,
    trace_path_from_env,
    tracing_enabled,
    use_tracing,
    wall_now_us,
)

__all__ = [
    "SIM",
    "WALL",
    "CounterSample",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanBatch",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "diff_snapshots",
    "export_trace",
    "maybe_span",
    "registry",
    "sim_track_pid",
    "start_tracing",
    "stop_tracing",
    "timed",
    "summarize",
    "trace_events",
    "trace_path_from_env",
    "tracing_enabled",
    "use_tracing",
    "validate_trace_events",
    "wall_now_us",
    "write_chrome_trace",
    "write_jsonl",
]
