"""Span-based tracing of the reproduction's *own* runs.

The paper's thesis is that an instrumentation system's data-collection
cost must be measured, not guessed; :mod:`repro.obs` applies that to the
harness itself.  A :class:`Tracer` records **spans** (named intervals
with a category, a track, and arguments) and **counter samples**
(timestamped values of a numeric track, e.g. busy CPUs of a node).
Exporters in :mod:`repro.obs.export` turn one tracer into JSONL, Chrome
``trace_event`` JSON (loadable in Perfetto), or a terminal summary.

Two time domains coexist:

* ``wall`` — host microseconds since the Unix epoch
  (:func:`wall_now_us`); used for experiment / cell / run spans.  The
  epoch clock is shared across processes, so worker spans merge onto a
  common timeline.  Exporters re-base wall times to the trace start.
* ``sim`` — simulated microseconds; used for the per-run Gantt tracks
  (CPU / network occupancy).  Each simulation run gets its own
  synthetic track pid (:func:`sim_track_pid`) so cells never share a
  timeline.

Tracing is **ambient and opt-in**: :func:`current_tracer` returns
``None`` unless a tracer was installed with :func:`start_tracing` /
:func:`use_tracing`, and every instrumentation site in the stack guards
itself with one ``is None`` test, so a disabled trace costs nothing
measurable (the DES kernel itself is never touched).  Worker processes
of the experiment engine record into their own tracer and ship a
picklable :class:`SpanBatch` back to the parent, exactly like kernel
profiles do.

The ``REPRO_TRACE`` environment knob enables tracing from the CLIs:
``REPRO_TRACE=1`` writes ``repro-trace.json``, any other non-empty
value is used as the output path (``*.jsonl`` selects JSONL).
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "WALL",
    "SIM",
    "wall_now_us",
    "sim_track_pid",
    "Span",
    "CounterSample",
    "SpanBatch",
    "Tracer",
    "current_tracer",
    "tracing_enabled",
    "start_tracing",
    "stop_tracing",
    "use_tracing",
    "maybe_span",
    "trace_path_from_env",
]

#: Time-domain markers (see module docstring).
WALL = "wall"
SIM = "sim"

TrackId = Union[int, str]


def wall_now_us() -> float:
    """Wall-clock microseconds since the Unix epoch (cross-process)."""
    return time.time_ns() / 1_000.0


def sim_track_pid(label: str) -> int:
    """Deterministic synthetic pid for one simulation run's sim-time
    tracks.  The high bit keeps it clear of real OS pids."""
    return 0x40000000 | (zlib.crc32(label.encode()) & 0x3FFFFFFF)


@dataclass
class Span:
    """One named interval on a ``(pid, tid)`` track."""

    name: str
    cat: str
    ts: float  # start, µs (domain decides the clock)
    dur: float  # length, µs
    pid: int
    tid: TrackId
    domain: str = WALL
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CounterSample:
    """One timestamped value set of a numeric track (Perfetto ``C``)."""

    name: str
    ts: float
    pid: int
    domain: str = SIM
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class SpanBatch:
    """Picklable bundle of everything one process recorded.

    Engine workers return this inside their cell outcome; the parent
    merges it into the ambient tracer with :meth:`Tracer.merge`, so a
    multi-process experiment produces one coherent trace.
    """

    pid: int
    spans: List[Span] = field(default_factory=list)
    counters: List[CounterSample] = field(default_factory=list)
    #: ``(pid, None)`` → process name; ``(pid, tid)`` → thread name.
    track_names: Dict[Tuple[int, Optional[TrackId]], str] = field(
        default_factory=dict
    )


class Tracer:
    """Collects spans and counter samples for one process.

    All methods are cheap appends; nothing is exported until one of the
    :mod:`repro.obs.export` writers is invoked.
    """

    def __init__(self, pid: Optional[int] = None, process_name: Optional[str] = None):
        self.pid = int(os.getpid() if pid is None else pid)
        self.spans: List[Span] = []
        self.counters: List[CounterSample] = []
        self.track_names: Dict[Tuple[int, Optional[TrackId]], str] = {}
        self.name_process(
            self.pid, process_name or f"repro pid {self.pid}"
        )

    # -- naming ----------------------------------------------------------
    def name_process(self, pid: int, name: str) -> None:
        self.track_names[(pid, None)] = name

    def name_thread(self, pid: int, tid: TrackId, name: str) -> None:
        self.track_names[(pid, tid)] = name

    # -- recording -------------------------------------------------------
    def add_span(
        self,
        name: str,
        *,
        cat: str,
        ts: float,
        dur: float,
        tid: TrackId = "main",
        pid: Optional[int] = None,
        domain: str = WALL,
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        span = Span(
            name=name,
            cat=cat,
            ts=float(ts),
            dur=max(0.0, float(dur)),
            pid=self.pid if pid is None else int(pid),
            tid=tid,
            domain=domain,
            args=args or {},
        )
        self.spans.append(span)
        return span

    def add_counter(
        self,
        name: str,
        ts: float,
        values: Dict[str, float],
        *,
        pid: Optional[int] = None,
        domain: str = SIM,
    ) -> None:
        self.counters.append(
            CounterSample(
                name=name,
                ts=float(ts),
                pid=self.pid if pid is None else int(pid),
                domain=domain,
                values=dict(values),
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "task",
        tid: TrackId = "main",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Span]:
        """Record a wall-clock span around the ``with`` body.

        The yielded :class:`Span` is live: the body may mutate its
        ``args``; ``ts``/``dur`` are filled in on exit.
        """
        t0 = wall_now_us()
        span = Span(
            name=name, cat=cat, ts=t0, dur=0.0,
            pid=self.pid, tid=tid, args=args or {},
        )
        try:
            yield span
        finally:
            span.dur = max(0.0, wall_now_us() - t0)
            self.spans.append(span)

    # -- cross-process ---------------------------------------------------
    def batch(self) -> SpanBatch:
        """Snapshot everything recorded so far as a picklable batch."""
        return SpanBatch(
            pid=self.pid,
            spans=list(self.spans),
            counters=list(self.counters),
            track_names=dict(self.track_names),
        )

    def merge(self, batch: SpanBatch) -> None:
        """Fold a worker's batch into this tracer."""
        self.spans.extend(batch.spans)
        self.counters.extend(batch.counters)
        for key, name in batch.track_names.items():
            self.track_names.setdefault(key, name)

    def __len__(self) -> int:
        return len(self.spans)


# ---------------------------------------------------------------------------
# Ambient tracer
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def start_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install *tracer* (or a fresh one) as the ambient tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def stop_tracing() -> Optional[Tracer]:
    """Remove and return the ambient tracer."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def use_tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Make a tracer ambient for the ``with`` body, restoring the
    previous one (possibly ``None``) afterwards."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = prev


@contextmanager
def maybe_span(
    name: str,
    cat: str = "task",
    tid: TrackId = "main",
    args: Optional[Dict[str, Any]] = None,
) -> Iterator[Optional[Span]]:
    """Span on the ambient tracer if one is active, else a no-op."""
    tracer = _ACTIVE
    if tracer is None:
        yield None
    else:
        with tracer.span(name, cat=cat, tid=tid, args=args) as span:
            yield span


def trace_path_from_env() -> Optional[str]:
    """Trace output path requested by ``REPRO_TRACE`` (``None`` = off)."""
    raw = os.environ.get("REPRO_TRACE", "").strip()
    if raw.lower() in ("", "0", "off", "false", "no"):
        return None
    if raw.lower() in ("1", "on", "true", "yes"):
        return "repro-trace.json"
    return raw
