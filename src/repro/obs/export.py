"""Exporters: JSONL, Chrome ``trace_event`` JSON (Perfetto), terminal.

The Chrome exporter emits the JSON-object flavour of the `trace_event
format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_:
``B``/``E`` duration pairs for spans, ``C`` events for counter tracks,
and ``M`` metadata naming processes and threads.  Load the file at
https://ui.perfetto.dev — each simulation run appears as its own
process group with one Gantt-style occupancy track per node plus
counter tracks, and the experiment engine's wall-clock spans (cells,
batches, experiments) appear under the real OS pids.

Invariants the exporter guarantees (and :func:`validate_trace_events`
checks — the regression tests drive both against each other):

* every non-metadata event carries numeric ``ts`` plus ``pid``/``tid``;
* ``ts`` is globally non-decreasing across the event list;
* ``B``/``E`` events are balanced and properly nested per track.

Wall-clock timestamps are re-based to the earliest wall event so the
trace starts near t=0; sim-time tracks keep their native simulated
microseconds (they start at 0 by construction).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry
from .spans import WALL, Span, TrackId, Tracer

__all__ = [
    "trace_events",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "export_trace",
    "validate_trace_events",
    "summarize",
]


def _wall_origin(tracer: Tracer) -> float:
    """Earliest wall-clock timestamp recorded (0.0 if none)."""
    times = [s.ts for s in tracer.spans if s.domain == WALL]
    times += [c.ts for c in tracer.counters if c.domain == WALL]
    return min(times) if times else 0.0


def _tid_numbers(tracer: Tracer) -> Dict[Tuple[int, TrackId], int]:
    """Stable integer tid per ``(pid, track)`` (trace_event wants ints).

    Assignment order is sorted by the track's string form, so the same
    trace contents always yield the same numbering.
    """
    keys = {(s.pid, s.tid) for s in tracer.spans}
    mapping: Dict[Tuple[int, TrackId], int] = {}
    per_pid: Dict[int, int] = {}
    for pid, tid in sorted(keys, key=lambda k: (k[0], str(k[1]))):
        if isinstance(tid, int):
            mapping[(pid, tid)] = tid
            continue
        per_pid[pid] = per_pid.get(pid, 0) + 1
        mapping[(pid, tid)] = per_pid[pid]
    return mapping


def trace_events(tracer: Tracer) -> List[dict]:
    """Render a tracer as a flat ``traceEvents`` list (see module doc)."""
    origin = _wall_origin(tracer)

    def rebase(ts: float, domain: str) -> float:
        return ts - origin if domain == WALL else ts

    tid_of = _tid_numbers(tracer)
    events: List[dict] = []

    # Metadata first (ph=M carries no timeline position).
    for (pid, tid), name in sorted(
        tracer.track_names.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
    ):
        if tid is None:
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        elif (pid, tid) in tid_of:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tid_of[(pid, tid)], "args": {"name": name},
            })

    # Thread names for string tracks without an explicit name.
    for (pid, tid), num in sorted(
        tid_of.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
    ):
        if isinstance(tid, str) and (pid, tid) not in tracer.track_names:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": num,
                "args": {"name": tid},
            })

    timeline: List[dict] = []

    # B/E pairs, generated per track so nesting is correct by
    # construction: spans from context managers nest; a child is clamped
    # into its parent so float jitter cannot produce a crossing pair.
    by_track: Dict[Tuple[int, TrackId], List[Tuple[float, float, int, Span]]] = {}
    for seq, span in enumerate(tracer.spans):
        ts = rebase(span.ts, span.domain)
        by_track.setdefault((span.pid, span.tid), []).append(
            (ts, -span.dur, seq, span)
        )
    for (pid, tid), items in by_track.items():
        items.sort(key=lambda it: (it[0], it[1], it[2]))
        tid_num = tid_of[(pid, tid)]
        stack: List[Tuple[float, Span]] = []  # (end_ts, span)

        def emit_end(end_ts: float, span: Span) -> None:
            timeline.append({
                "name": span.name, "cat": span.cat or "span", "ph": "E",
                "ts": end_ts, "pid": pid, "tid": tid_num,
            })

        for ts, neg_dur, _seq, span in items:
            while stack and stack[-1][0] <= ts:
                emit_end(*stack.pop())
            end = ts - neg_dur
            if stack and end > stack[-1][0]:
                end = stack[-1][0]  # clamp child into its parent
            timeline.append({
                "name": span.name, "cat": span.cat or "span", "ph": "B",
                "ts": ts, "pid": pid, "tid": tid_num,
                "args": dict(span.args),
            })
            stack.append((end, span))
        while stack:
            emit_end(*stack.pop())

    # Per-track B/E lists are ts-ordered; a global stable sort keeps the
    # within-track order while making the whole timeline monotone.
    for counter in tracer.counters:
        timeline.append({
            "name": counter.name, "cat": "counter", "ph": "C",
            "ts": rebase(counter.ts, counter.domain),
            "pid": counter.pid, "tid": 0,
            "args": dict(counter.values),
        })
    timeline.sort(key=lambda e: e["ts"])
    return events + timeline


def chrome_trace(
    tracer: Tracer, registry: Optional[MetricsRegistry] = None
) -> dict:
    """Full Chrome/Perfetto JSON document for one tracer."""
    doc = {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if registry is not None and len(registry):
        doc["otherData"] = {"metrics": registry.snapshot()}
    return doc


def write_chrome_trace(
    tracer: Tracer,
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, registry)))
    return path


def write_jsonl(
    tracer: Tracer,
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """One JSON record per span / counter sample / metric."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for span in tracer.spans:
            fh.write(json.dumps({
                "type": "span", "name": span.name, "cat": span.cat,
                "ts": span.ts, "dur": span.dur, "pid": span.pid,
                "tid": span.tid, "domain": span.domain, "args": span.args,
            }) + "\n")
        for c in tracer.counters:
            fh.write(json.dumps({
                "type": "counter", "name": c.name, "ts": c.ts,
                "pid": c.pid, "domain": c.domain, "values": c.values,
            }) + "\n")
        if registry is not None:
            for name, entry in registry.snapshot().items():
                record = dict(entry)
                # The snapshot's own "type" (counter/gauge/histogram) must
                # not clobber the record discriminator.
                record["kind"] = record.pop("type")
                fh.write(json.dumps({"type": "metric", "name": name, **record}) + "\n")
    return path


def export_trace(
    tracer: Tracer,
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write *tracer* to *path*, picking the format by suffix
    (``.jsonl`` → JSONL, anything else → Chrome trace JSON)."""
    if str(path).endswith(".jsonl"):
        return write_jsonl(tracer, path, registry)
    return write_chrome_trace(tracer, path, registry)


def validate_trace_events(doc: Union[dict, List[dict]]) -> List[str]:
    """Check a trace document against the exporter's invariants.

    Returns a list of problems (empty = valid): non-metadata events must
    carry numeric ``ts`` and ``pid``/``tid``, ``ts`` must be globally
    non-decreasing, and every track's ``B``/``E`` events must balance
    with matching names in LIFO order.
    """
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    problems: List[str] = []
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: Optional[float] = None
    stacks: Dict[Tuple[object, object], List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            if "name" not in event:
                problems.append(f"event {i}: metadata without a name")
            continue
        if ph not in ("B", "E", "C", "X", "i", "I"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: missing numeric ts")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"event {i}: missing pid/tid")
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i}: ts went backwards ({ts} < {last_ts})"
            )
        last_ts = ts
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(event.get("name", ""))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                problems.append(f"event {i}: E without matching B on {track}")
                continue
            opened = stack.pop()
            name = event.get("name")
            if name is not None and name != opened:
                problems.append(
                    f"event {i}: E {name!r} closes B {opened!r} on {track}"
                )
        elif ph == "C" and "args" not in event:
            problems.append(f"event {i}: counter without args")
    for track, stack in sorted(stacks.items(), key=repr):
        if stack:
            problems.append(f"track {track}: unclosed B events {stack}")
    return problems


def summarize(
    tracer: Tracer, registry: Optional[MetricsRegistry] = None
) -> str:
    """Terminal summary: span counts/durations by category, metrics."""
    by_cat: Dict[str, List[float]] = {}
    for span in tracer.spans:
        row = by_cat.setdefault(span.cat or "span", [0, 0.0])
        row[0] += 1
        row[1] += span.dur
    pids = {s.pid for s in tracer.spans} | {c.pid for c in tracer.counters}
    lines = [
        f"trace summary: {len(tracer.spans)} spans, "
        f"{len(tracer.counters)} counter samples, "
        f"{len(pids)} process track(s)",
    ]
    for cat in sorted(by_cat):
        count, dur = by_cat[cat]
        lines.append(f"  {cat:<16s} {int(count):>6d} spans  {dur / 1e3:10.1f} ms")
    if registry is not None and len(registry):
        lines.append("metrics:")
        lines.append(registry.format())
    return "\n".join(lines)
