"""Turns a :class:`~repro.faults.spec.FaultPlan` into live injections.

The :class:`FaultInjector` is created by
:class:`~repro.rocc.system.ParadynISSystem` when ``config.faults`` is
set.  It plays two roles:

* **scheduled injections** — ``arm(system)`` spawns one kernel process
  per :class:`DaemonCrash` / :class:`PipeStall` / :class:`CpuSlowdown`
  spec that sleeps until the fault's time and manipulates the target
  component (``daemon.crash()``/``restart()``, ``pipe.stall()``,
  ``cpu.set_speed()``);
* **per-message outcomes** — the interconnect calls
  :meth:`message_outcome` once per delivered message; the draw comes
  from a dedicated ``faults/network`` substream of the run's
  :class:`~repro.variates.streams.StreamFactory`, so fault realizations
  are exactly reproducible per ``(seed, replication)`` and do not
  perturb the workload's own streams (common random numbers survive
  adding faults).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..obs.metrics import registry as obs_registry
from .spec import CpuSlowdown, DaemonCrash, FaultPlan, NetworkFault, PipeStall

if TYPE_CHECKING:  # pragma: no cover
    from ..des.core import Environment
    from ..variates.streams import StreamFactory

__all__ = ["OUTCOME_OK", "OUTCOME_LOST", "OUTCOME_CORRUPT", "FaultInjector"]

OUTCOME_OK = "ok"
OUTCOME_LOST = "lost"
OUTCOME_CORRUPT = "corrupt"


class FaultInjector:
    """Injects the faults of one plan into one simulation run."""

    def __init__(
        self,
        env: "Environment",
        plan: FaultPlan,
        streams: "StreamFactory",
        metrics: Optional[object] = None,
    ):
        self.env = env
        self.plan = plan
        #: Duck-typed :class:`~repro.rocc.metrics.Metrics` sink (optional
        #: so the injector stays usable outside the ROCC model).
        self.metrics = metrics
        self._rng = streams.generator("faults/network")
        self._network_faults = plan.network_faults
        #: Injections performed, by spec class name (diagnostics).
        self.injected = {}

    # ------------------------------------------------------------------
    # Message-level faults (called by the interconnect)
    # ------------------------------------------------------------------
    def message_outcome(self) -> str:
        """Outcome of one delivered message at the current time."""
        if not self._network_faults:
            return OUTCOME_OK
        now = self.env.now
        loss = 0.0
        corrupt = 0.0
        active = False
        for f in self._network_faults:
            if f.start <= now < f.stop:
                loss += f.loss_probability
                corrupt += f.corruption_probability
                active = True
        if not active:
            return OUTCOME_OK
        loss = min(loss, 1.0)
        corrupt = min(corrupt, 1.0 - loss)
        u = float(self._rng.random())
        if u < loss:
            self._note("NetworkFault")
            if self.metrics is not None:
                self.metrics.messages_lost += 1
            return OUTCOME_LOST
        if u < loss + corrupt:
            self._note("NetworkFault")
            if self.metrics is not None:
                self.metrics.messages_corrupted += 1
            return OUTCOME_CORRUPT
        return OUTCOME_OK

    # ------------------------------------------------------------------
    # Scheduled faults
    # ------------------------------------------------------------------
    def arm(self, system) -> None:
        """Spawn injection processes against a built ROCC system.

        *system* is duck-typed: it must expose ``daemons``, ``pipes``
        and ``worker_cpus`` sequences.  Node indices are validated here
        so a bad plan fails at build time, not mid-run.
        """
        env = self.env
        for k, spec in enumerate(self.plan):
            if isinstance(spec, DaemonCrash):
                self._check_index(spec, len(system.daemons), "daemons")
                env.process(
                    self._crash_proc(spec, system.daemons[spec.node]),
                    name=f"faults/crash{k}",
                )
            elif isinstance(spec, PipeStall):
                self._check_index(spec, len(system.pipes), "pipes")
                env.process(
                    self._stall_proc(spec, system.pipes[spec.node]),
                    name=f"faults/stall{k}",
                )
            elif isinstance(spec, CpuSlowdown):
                self._check_index(spec, len(system.worker_cpus), "CPUs")
                env.process(
                    self._slowdown_proc(spec, system.worker_cpus[spec.node]),
                    name=f"faults/slowdown{k}",
                )
            # NetworkFault is stateless: handled by message_outcome().

    @staticmethod
    def _check_index(spec, limit: int, what: str) -> None:
        if spec.node >= limit:
            raise ValueError(
                f"{type(spec).__name__} targets node {spec.node} but the "
                f"system has only {limit} {what}"
            )

    def _note(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        obs_registry().counter(f"faults.injected.{kind}").inc()

    def _crash_proc(self, spec: DaemonCrash, daemon):
        yield self.env.timeout(spec.at)
        daemon.crash(cause=spec)
        self._note("DaemonCrash")
        if spec.restart_after is not None:
            yield self.env.timeout(spec.restart_after)
            daemon.restart()

    def _stall_proc(self, spec: PipeStall, pipe):
        yield self.env.timeout(spec.at)
        pipe.stall(spec.duration)
        self._note("PipeStall")

    def _slowdown_proc(self, spec: CpuSlowdown, cpu):
        yield self.env.timeout(spec.at)
        previous = cpu.speed
        cpu.set_speed(previous / spec.factor)
        self._note("CpuSlowdown")
        yield self.env.timeout(spec.duration)
        cpu.set_speed(previous)
