"""Failure-recovery policies for the Paradyn daemon's forwarding path.

A :class:`RecoveryPolicy` on ``SimulationConfig.recovery`` tells every
daemon how to react when a forwarded batch is lost (failed transfer
event) or times out:

* **retry** — the batch goes into a bounded in-flight resend queue
  drained by a dedicated retry process; each attempt waits an
  exponential backoff with multiplicative jitter before retransmitting.
* **drop with accounting** — once ``max_retries`` attempts are
  exhausted, or when the resend queue is full, the batch's samples are
  dropped and counted per reason (graceful degradation: the simulation
  keeps running and reports exactly what was lost).
* **forwarding timeout** — an optional upper bound on how long a daemon
  waits for one transfer to complete before treating it as lost; this
  protects the collection loop against a congested FIFO network the
  same way the watchdog protects the harness against a livelocked run.
* **reroute** — under binary-tree forwarding, deliveries addressed to a
  crashed daemon can be rerouted to the nearest live ancestor (or the
  main process) instead of piling up in a dead daemon's inbox.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a daemon handles lost or timed-out forwards."""

    #: Retransmission attempts per batch before dropping it (0 = drop
    #: immediately with accounting; no retry process is started).
    max_retries: int = 3
    #: First backoff delay, µs.
    backoff_base: float = 1_000.0
    #: Multiplier applied per additional attempt (exponential backoff).
    backoff_factor: float = 2.0
    #: Jitter fraction: each delay is scaled by a uniform factor in
    #: ``[1 - j, 1 + j]`` drawn from the daemon's own substream.
    backoff_jitter: float = 0.5
    #: Give up waiting for one transfer after this long, µs (``None`` =
    #: wait for the network's own completion/failure notification).
    forward_timeout: float | None = None
    #: Maximum batches awaiting retransmission per daemon; overflow is
    #: dropped with accounting.
    resend_queue_limit: int = 16
    #: Tree forwarding only: deliver around crashed ancestors.
    reroute_around_down_daemons: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.forward_timeout is not None and self.forward_timeout <= 0:
            raise ValueError("forward_timeout must be positive or None")
        if self.resend_queue_limit < 1:
            raise ValueError("resend_queue_limit must be >= 1")

    def backoff_delay(self, attempt: int, rng) -> float:
        """Backoff before retransmission *attempt* (1-based), µs.

        *rng* is a ``numpy.random.Generator`` (one per daemon, derived
        from the run's stream factory) so the jitter is deterministic
        per seed yet independent across daemons.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter > 0.0:
            delay *= 1.0 + self.backoff_jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    # -- presets ---------------------------------------------------------
    @classmethod
    def drop_only(cls) -> "RecoveryPolicy":
        """Graceful degradation without retransmission."""
        return cls(max_retries=0)

    @classmethod
    def aggressive(cls) -> "RecoveryPolicy":
        """Fast retries with a forwarding timeout and rerouting."""
        return cls(
            max_retries=5,
            backoff_base=500.0,
            backoff_factor=2.0,
            backoff_jitter=0.5,
            forward_timeout=250_000.0,
            resend_queue_limit=64,
            reroute_around_down_daemons=True,
        )
