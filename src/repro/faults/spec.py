"""Declarative fault specifications for ROCC simulations.

A fault experiment is described by a :class:`FaultPlan` — an immutable
collection of :data:`FaultSpec` instances — attached to
``SimulationConfig.faults``.  Each spec names *what* breaks, *where*
(node index) and *when* (simulation time, µs); the
:class:`~repro.faults.injector.FaultInjector` turns the plan into
scheduled injection processes and per-message outcome draws, all seeded
from the run's :class:`~repro.variates.streams.StreamFactory` substreams
so a given ``(seed, replication, plan)`` triple always produces the
exact same fault realization.

Four fault classes cover the failure modes instrumentation systems on
real distributed platforms exhibit (cf. the monitoring surveys in
PAPERS.md):

* :class:`DaemonCrash` — a Paradyn daemon dies at time *t* and (maybe)
  restarts after a downtime; samples buffered in the daemon are lost,
  samples in the kernel pipe survive.
* :class:`NetworkFault` — each forwarded message in a time window is
  independently lost or corrupted with the given probabilities.
* :class:`PipeStall` — the application→daemon pipe stops delivering for
  a window (a wedged kernel buffer); writers keep filling it.
* :class:`CpuSlowdown` — a node's CPUs run ``factor``× slower for a
  window (thermal throttling, a co-scheduled job).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple, Union

__all__ = [
    "DaemonCrash",
    "NetworkFault",
    "PipeStall",
    "CpuSlowdown",
    "FaultSpec",
    "FaultPlan",
    "MessageLost",
]


class MessageLost(Exception):
    """Failure value of a network transfer whose message was dropped.

    The network fails the transfer's completion event with this
    exception; the sending daemon's recovery policy decides whether to
    retry (bounded resend queue, exponential backoff) or to drop the
    batch with accounting.
    """

    def __init__(self, payload: object = None):
        super().__init__(payload)

    @property
    def payload(self) -> object:
        """The batch (or other payload) that was lost."""
        return self.args[0]


@dataclass(frozen=True)
class DaemonCrash:
    """Crash the daemon of *node* at time *at*; restart after a downtime.

    ``restart_after is None`` means the daemon never comes back.
    """

    node: int
    at: float
    restart_after: float | None = 500_000.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("DaemonCrash.node must be >= 0")
        if self.at < 0:
            raise ValueError("DaemonCrash.at must be >= 0")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError("DaemonCrash.restart_after must be positive or None")


@dataclass(frozen=True)
class NetworkFault:
    """Per-message loss / corruption probabilities over a time window.

    Applies to every *delivered* message (daemon forwards and relays);
    plain occupancy bursts with no receiver are unaffected.  A lost
    message never arrives and the sender is notified through the failed
    transfer event; a corrupted message arrives, is detected at the main
    process, and is discarded there with accounting (the sender is
    unaware — the UDP-checksum case).
    """

    loss_probability: float = 0.0
    corruption_probability: float = 0.0
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("NetworkFault.loss_probability must be in [0, 1]")
        if not 0.0 <= self.corruption_probability <= 1.0:
            raise ValueError("NetworkFault.corruption_probability must be in [0, 1]")
        if self.loss_probability + self.corruption_probability > 1.0:
            raise ValueError(
                "NetworkFault loss + corruption probabilities must not exceed 1"
            )
        if self.start < 0:
            raise ValueError("NetworkFault.start must be >= 0")
        if self.stop <= self.start:
            raise ValueError("NetworkFault.stop must be greater than start")


@dataclass(frozen=True)
class PipeStall:
    """The pipe feeding *node*'s daemon delivers nothing during a window.

    Writers may keep putting (the buffer fills, then blocks them — the
    §4.3.3 cascade); the daemon's reads resume when the stall ends.
    """

    node: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("PipeStall.node must be >= 0")
        if self.at < 0:
            raise ValueError("PipeStall.at must be >= 0")
        if self.duration <= 0:
            raise ValueError("PipeStall.duration must be positive")


@dataclass(frozen=True)
class CpuSlowdown:
    """Node *node*'s CPUs run ``factor``× slower during a window.

    ``factor`` is the service-time multiplier: 2.0 means every CPU
    request submitted during the episode takes twice as long.
    """

    node: int
    at: float
    duration: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("CpuSlowdown.node must be >= 0")
        if self.at < 0:
            raise ValueError("CpuSlowdown.at must be >= 0")
        if self.duration <= 0:
            raise ValueError("CpuSlowdown.duration must be positive")
        if self.factor <= 0:
            raise ValueError("CpuSlowdown.factor must be positive")


#: Any single fault specification.
FaultSpec = Union[DaemonCrash, NetworkFault, PipeStall, CpuSlowdown]

_SPEC_TYPES = (DaemonCrash, NetworkFault, PipeStall, CpuSlowdown)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated collection of fault specifications."""

    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        coerced = tuple(self.faults)
        for spec in coerced:
            if not isinstance(spec, _SPEC_TYPES):
                raise TypeError(
                    f"{spec!r} is not a fault specification "
                    f"(expected one of {[t.__name__ for t in _SPEC_TYPES]})"
                )
        object.__setattr__(self, "faults", coerced)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def crashes(self) -> Tuple[DaemonCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, DaemonCrash))

    @property
    def network_faults(self) -> Tuple[NetworkFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, NetworkFault))

    @property
    def pipe_stalls(self) -> Tuple[PipeStall, ...]:
        return tuple(f for f in self.faults if isinstance(f, PipeStall))

    @property
    def cpu_slowdowns(self) -> Tuple[CpuSlowdown, ...]:
        return tuple(f for f in self.faults if isinstance(f, CpuSlowdown))

    def max_node(self) -> int:
        """Largest node index referenced by any node-scoped fault."""
        nodes = [f.node for f in self.faults if hasattr(f, "node")]
        return max(nodes) if nodes else -1

    # -- convenience constructors ---------------------------------------
    @classmethod
    def coerce(cls, value: "FaultPlan | FaultSpec | tuple | list") -> "FaultPlan":
        """Accept a plan, a single spec, or an iterable of specs."""
        if isinstance(value, FaultPlan):
            return value
        if isinstance(value, _SPEC_TYPES):
            return cls((value,))
        return cls(tuple(value))

    @classmethod
    def daemon_churn(
        cls,
        nodes: "tuple | list | range",
        first_at: float,
        period: float,
        downtime: float,
        until: float,
    ) -> "FaultPlan":
        """Repeated crash/restart cycles round-robining over *nodes*."""
        if period <= 0:
            raise ValueError("period must be positive")
        if downtime <= 0 or downtime >= period:
            raise ValueError("downtime must lie in (0, period)")
        node_list = list(nodes)
        if not node_list:
            raise ValueError("at least one node required")
        specs = []
        at = first_at
        k = 0
        while at < until:
            specs.append(
                DaemonCrash(
                    node=node_list[k % len(node_list)],
                    at=at,
                    restart_after=downtime,
                )
            )
            at += period
            k += 1
        return cls(tuple(specs))

    @classmethod
    def lossy_network(
        cls,
        loss_probability: float,
        corruption_probability: float = 0.0,
        start: float = 0.0,
        stop: float = math.inf,
    ) -> "FaultPlan":
        """A single network-fault window over the whole run by default."""
        return cls(
            (
                NetworkFault(
                    loss_probability=loss_probability,
                    corruption_probability=corruption_probability,
                    start=start,
                    stop=stop,
                ),
            )
        )
