"""``repro.faults`` — fault injection and failure recovery for the IS.

The paper's final act (Section 5, Figure 30, Table 7) is about keeping
the instrumentation system's data-collection path usable under load;
this package extends the reproduction to ask the next question a
production system faces: *what happens to monitoring latency and sample
loss when a daemon dies, the network drops messages, a pipe wedges, or
a node throttles?*

Usage::

    from repro.faults import DaemonCrash, FaultPlan, RecoveryPolicy
    from repro.rocc import SimulationConfig, simulate

    cfg = SimulationConfig(
        nodes=8,
        batch_size=32,
        faults=FaultPlan((DaemonCrash(node=2, at=1_000_000.0,
                                      restart_after=500_000.0),)),
        recovery=RecoveryPolicy(max_retries=3),
    )
    res = simulate(cfg)
    print(res.samples_dropped, res.retransmissions, res.daemon_downtime)

Everything is deterministic per ``(seed, replication)``: fault draws use
their own named substreams, so adding faults does not perturb the
workload's random numbers (common random numbers across fault levels).
"""

from .injector import (
    OUTCOME_CORRUPT,
    OUTCOME_LOST,
    OUTCOME_OK,
    FaultInjector,
)
from .recovery import RecoveryPolicy
from .spec import (
    CpuSlowdown,
    DaemonCrash,
    FaultPlan,
    FaultSpec,
    MessageLost,
    NetworkFault,
    PipeStall,
)

__all__ = [
    "CpuSlowdown",
    "DaemonCrash",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "MessageLost",
    "NetworkFault",
    "PipeStall",
    "RecoveryPolicy",
    "OUTCOME_OK",
    "OUTCOME_LOST",
    "OUTCOME_CORRUPT",
]
