"""Conservative parallel execution of one partitioned ROCC simulation.

:func:`parallel_simulate` splits a cell's topology into K *logical
processes* (LPs) via :func:`~repro.rocc.partition.partition_topology`
and runs each as an independent sequential kernel in its own OS
process, synchronized by a bounded-window null-message protocol.

The eligible topologies (see
:func:`~repro.rocc.partition.parallel_ineligibility`) have a special
structure that this module exploits hard: with direct forwarding on a
contention-free network, *every* cross-LP edge points from a node LP to
the main LP.  Node LPs therefore have **no inbound edges at all** —
they can free-run through the whole simulated horizon with zero
blocking, pausing only at window boundaries to report

``("window", lp, horizon, entries)``

where *entries* are the cut-edge deliveries their boundary network
recorded (at **send** time, which is what makes the protocol sound —
see :class:`~repro.rocc.partition.LPBoundaryNetwork`).  A report with
no entries is exactly a CMB *null message*: pure lookahead information.

The coordinator runs the main LP inline.  After each batch of reports
it advances the safe bound::

    safe = min over node LPs (horizon_k + lookahead_k)

Every cut-edge delivery with timestamp ``t < safe`` is provably known
(an unreported send happens at or after ``horizon_k``, so its delivery
lands at or after ``horizon_k + lookahead_k``).  Those deliveries are
injected into the main kernel — sorted by ``(t, src_lp, seq)`` so the
injection order never depends on wall-clock message arrival — and the
main kernel runs ``until=safe`` (the kernel's stop event is URGENT, so
events exactly *at* the bound stay queued for the next window).

Determinism contract: per-node variate streams are seeded by global
stream name, so every node's event trajectory is bit-identical to the
sequential kernel.  Cross-LP *ties* (two events at exactly the same
timestamp on the main LP) may be ordered differently than sequentially;
with the model's continuous latency distributions such ties have
measure zero.  ``differential.parallel_kernel`` enforces the resulting
equivalence on every run of the verify battery.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import signal
import time
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional

from ..obs.metrics import registry as obs_registry
from ..obs.spans import SIM, current_tracer, maybe_span, sim_track_pid
from .events import NORMAL, Event
from .profiling import (
    KernelProfiler,
    merge_profiles,
    profile_enabled,
    set_last_profile,
)

__all__ = ["LPWorkerLost", "parallel_simulate"]

#: Number of synchronization windows a run is divided into by default.
_DEFAULT_WINDOWS = 64

#: Env knob: explicit synchronization window length in µs.
_WINDOW_ENV = "REPRO_DES_LP_WINDOW"

#: Env knob (chaos harness): path of a marker file.  When set and the
#: marker does not exist yet, LP worker 0 creates it right after its
#: first window report and SIGKILLs itself — the coordinator then
#: raises :class:`LPWorkerLost`, and a retried attempt (which sees the
#: marker) runs clean.
_CHAOS_KILL_ENV = "REPRO_CHAOS_LP_KILL"


class LPWorkerLost(RuntimeError):
    """An LP worker process died before reporting its final aggregates.

    Raised by the coordinator when a worker's pipe hits EOF mid-run
    (crash, OOM kill, SIGKILL).  Listed in the resilience layer's
    transient set: a retried cell rebuilds every worker from scratch.
    """


def _window_length(duration: float) -> float:
    raw = os.environ.get(_WINDOW_ENV, "").strip()
    if raw:
        w = float(raw)
        if w <= 0.0:
            raise ValueError(f"{_WINDOW_ENV}={raw!r} must be positive")
        return w
    return max(duration / _DEFAULT_WINDOWS, 1.0)


def _lp_worker(conn, config, role, window: float) -> None:
    """Body of one node-LP worker process.

    Free-runs its kernel window by window, streaming cut-edge
    deliveries after each, then ships its metrics and raw aggregates.
    Any exception is reported over the pipe before exiting nonzero.
    """
    from ..rocc.system import ParadynISSystem

    try:
        chaos_marker = os.environ.get(_CHAOS_KILL_ENV)
        system = ParadynISSystem(config, lp_role=role)
        env = system.env
        outbox = role.outbox
        duration = config.duration
        profiler = KernelProfiler(env) if profile_enabled() else None

        sent = 0
        horizon = 0.0
        w = 0
        if profiler is not None:
            profiler.__enter__()
        try:
            while horizon < duration:
                w += 1
                horizon = min(duration, w * window)
                env.run(until=horizon)
                conn.send(("window", role.lp_index, horizon, outbox[sent:]))
                sent = len(outbox)
                if (
                    chaos_marker
                    and role.lp_index == 0
                    and not os.path.exists(chaos_marker)
                ):
                    with open(chaos_marker, "w"):
                        pass
                    os.kill(os.getpid(), signal.SIGKILL)
        finally:
            if profiler is not None:
                profiler.__exit__(None, None, None)

        payload = {
            "metrics": system.metrics,
            "agg": system._raw_aggregates(),
            "windows": w,
            "profile": profiler.report() if profiler is not None else None,
        }
        conn.send(("done", role.lp_index, payload))
    except BaseException as exc:  # noqa: BLE001 - relayed to coordinator
        try:
            conn.send(("error", getattr(role, "lp_index", -1), repr(exc)))
        except (BrokenPipeError, OSError):
            pass
        raise
    finally:
        conn.close()


class _Deliver:
    """Injected cut-edge delivery: calls the main process's inbox."""

    __slots__ = ("deliver", "payload")

    def __init__(self, deliver, payload):
        self.deliver = deliver
        self.payload = payload

    def __call__(self, _event) -> None:
        self.deliver(self.payload)


def parallel_simulate(config, lp_workers: int, window: Optional[float] = None):
    """Run *config* on ``lp_workers`` node LPs plus the inline main LP.

    Falls back to the sequential kernel when the configuration is
    ineligible or the partition degenerates to a single LP.  Returns a
    :class:`~repro.rocc.metrics.SimulationResults` assembled through
    the same code path as a sequential run.
    """
    from ..rocc.partition import LPRole, parallel_ineligibility, partition_topology
    from ..rocc.system import ParadynISSystem, assemble_results

    if parallel_ineligibility(config) is not None or lp_workers < 2:
        return ParadynISSystem(config).run()
    plan = partition_topology(config, lp_workers)
    k = plan.lp_count
    if k < 2:
        return ParadynISSystem(config).run()

    duration = config.duration
    win = _window_length(duration) if window is None else float(window)
    la_map = plan.lookahead_into(plan.main_lp)

    ctx = mp.get_context("fork")
    procs: List = []
    conn_by_fd: Dict = {}
    lp_of_conn: Dict = {}
    try:
        for lp in range(k):
            lo, hi = plan.ranges[lp]
            role = LPRole(
                lp_index=lp, node_lo=lo, node_hi=hi,
                include_main=False, plan=plan,
            )
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_lp_worker,
                args=(child_conn, config, role, win),
                name=f"repro-lp{lp}",
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conn_by_fd[parent_conn.fileno()] = parent_conn
            lp_of_conn[parent_conn.fileno()] = lp

        main_role = LPRole(
            lp_index=plan.main_lp, node_lo=0, node_hi=0,
            include_main=True, plan=plan,
        )
        system = ParadynISSystem(config, lp_role=main_role)
        env = system.env
        main = system.main

        tracer = current_tracer()
        pid = 0
        if tracer is not None:
            system._attach_observability(tracer)
            pid = sim_track_pid(system._run_label())
            for lp in range(k):
                lo, hi = plan.ranges[lp]
                tracer.name_thread(pid, f"lp{lp}", f"LP {lp}: nodes [{lo},{hi})")

        horizons = [0.0] * k
        done: List[Optional[dict]] = [None] * k
        #: Per-LP min-heap of pending deliveries ``(t, seq, payload)``.
        buffers = [[] for _ in range(k)]
        sync_waits = 0
        null_messages = 0
        total_windows = 0
        last_safe = 0.0

        def handle(conn) -> None:
            nonlocal null_messages, total_windows
            fd = conn.fileno()
            lp = lp_of_conn[fd]
            try:
                msg = conn.recv()
            except EOFError:
                raise LPWorkerLost(
                    f"LP worker {lp} died at horizon {horizons[lp]:g} µs "
                    f"(of {duration:g})"
                ) from None
            kind = msg[0]
            if kind == "window":
                _, _, horizon, entries = msg
                if tracer is not None:
                    tracer.add_span(
                        "lp-window", cat="parallel", ts=horizons[lp],
                        dur=horizon - horizons[lp], tid=f"lp{lp}", pid=pid,
                        domain=SIM, args={"deliveries": len(entries)},
                    )
                horizons[lp] = horizon
                total_windows += 1
                if not entries:
                    null_messages += 1
                buf = buffers[lp]
                for t, _dst_lp, _dst_node, payload, seq in entries:
                    # A delivery the sequential kernel would never
                    # process (completion at or past end of run).
                    if t < duration:
                        heapq.heappush(buf, (t, seq, payload))
            elif kind == "done":
                done[lp] = msg[2]
                horizons[lp] = duration
                del conn_by_fd[fd]
                conn.close()
            else:  # "error"
                raise RuntimeError(f"LP worker {lp} failed: {msg[2]}")

        def inject_up_to(limit: float) -> None:
            batch = []
            for lp in range(k):
                buf = buffers[lp]
                while buf and buf[0][0] < limit:
                    t, seq, payload = heapq.heappop(buf)
                    batch.append((t, lp, seq, payload))
            batch.sort(key=lambda e: (e[0], e[1], e[2]))
            now = env.now
            deliver = main.deliver
            for t, _lp, _seq, payload in batch:
                ev = Event(env)
                ev._ok = True
                ev._value = None
                ev.callbacks.append(_Deliver(deliver, payload))
                env.schedule(ev, NORMAL, t - now)

        t0 = time.perf_counter()
        profiler = KernelProfiler(env) if profile_enabled() else None
        if profiler is not None:
            profiler.__enter__()
        try:
            with maybe_span(
                "simulate", cat="run",
                args={
                    "config": system._run_label(),
                    "duration_us": duration,
                    "lp_workers": k,
                },
            ):
                while True:
                    safe = min(duration, min(
                        horizons[lp] + la_map.get(lp, 0.0) for lp in range(k)
                    ))
                    if safe > last_safe:
                        inject_up_to(safe)
                        if safe > env.now:
                            env.run(until=safe)
                        last_safe = safe
                    if all(d is not None for d in done):
                        break
                    sync_waits += 1
                    for conn in _conn_wait(list(conn_by_fd.values())):
                        handle(conn)
        finally:
            if profiler is not None:
                profiler.__exit__(None, None, None)

        for proc in procs:
            proc.join()

        if tracer is not None:
            system._finish_observability()

        # Merge: the main LP's metrics hold every receipt; node LP
        # fragments contribute generation, forwarding, and per-node
        # counters, folded in ascending LP (= ascending node) order.
        metrics = system.metrics
        agg = system._raw_aggregates()
        profile = profiler.report() if profiler is not None else None
        for lp in range(k):
            payload = done[lp]
            metrics.merge(payload["metrics"])
            agg.merge(payload["agg"])
            if profile is not None and payload["profile"] is not None:
                profile = merge_profiles(profile, payload["profile"])
        if profiler is not None:
            set_last_profile(profile)

        la = plan.min_lookahead
        agg.obs_info = dict(agg.obs_info)
        agg.obs_info.update({
            "lp_workers": k,
            "lookahead_us": la if la != float("inf") else 0.0,
            "lp_windows": total_windows,
            "lp_sync_waits": sync_waits,
            "null_messages": null_messages,
        })

        system._publish_metrics()
        reg = obs_registry()
        reg.counter(
            "parallel.lp_sync_waits",
            "coordinator blocks waiting on LP window reports",
        ).inc(sync_waits)
        reg.counter(
            "parallel.null_messages",
            "LP window reports carrying no cut-edge deliveries",
        ).inc(null_messages)
        reg.gauge(
            "parallel.lookahead_ns",
            "cut-edge lookahead of the most recent partition",
        ).set((la if la != float("inf") else 0.0) * 1000.0)
        reg.histogram(
            "rocc.run_wall_seconds", "wall time of one simulation run"
        ).observe(time.perf_counter() - t0)

        return assemble_results(config, metrics, agg)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=10.0)
        for conn in conn_by_fd.values():
            conn.close()
