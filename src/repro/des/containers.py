"""Level-based resource: a :class:`Container` of continuous quantity.

Used for modeling fluid-like quantities (buffer credit, byte counts).
``put(amount)`` blocks while the container would overflow; ``get(amount)``
blocks until the requested amount is available.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["ContainerPut", "ContainerGet", "Container"]


class ContainerPut(Event):
    """Fires once ``amount`` has been added to the container."""

    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount ({amount}) must be positive")
        super().__init__(container.env)
        self.container = container
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()

    def cancel(self) -> None:
        if not self.triggered:
            try:
                self.container._put_waiters.remove(self)
            except ValueError:  # pragma: no cover
                pass


class ContainerGet(Event):
    """Fires once ``amount`` has been removed from the container."""

    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount ({amount}) must be positive")
        super().__init__(container.env)
        self.container = container
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()

    def cancel(self) -> None:
        if not self.triggered:
            try:
                self.container._get_waiters.remove(self)
            except ValueError:  # pragma: no cover
                pass


class Container:
    """Holds a continuous ``level`` between 0 and ``capacity``."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Current fill level."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add *amount*; blocks while it would exceed capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove *amount*; blocks until that much is available."""
        return ContainerGet(self, amount)

    # -- internals ------------------------------------------------------
    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            i = 0
            while i < len(self._put_waiters):
                ev = self._put_waiters[i]
                if self._level + ev.amount <= self._capacity:
                    self._level += ev.amount
                    ev.succeed()
                    self._put_waiters.pop(i)
                    progressed = True
                else:
                    i += 1
            i = 0
            while i < len(self._get_waiters):
                ev = self._get_waiters[i]
                if ev.amount <= self._level:
                    self._level -= ev.amount
                    ev.succeed()
                    self._get_waiters.pop(i)
                    progressed = True
                else:
                    i += 1
