"""``repro.des`` — a from-scratch discrete-event simulation kernel.

This package provides the simulation substrate the ROCC model is built
on.  It follows the process-interaction style (generator-based
processes yielding events), with preemptible resources, finite stores
(used to model Unix pipes), containers, and statistics monitors.

Quick example::

    from repro.des import Environment

    def clock(env, period):
        while True:
            yield env.timeout(period)
            print("tick", env.now)

    env = Environment()
    env.process(clock(env, 10.0))
    env.run(until=35.0)
"""

from .containers import Container
from .core import Environment, Infinity
from .events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Hold,
    Process,
    Timeout,
)
from .exceptions import (
    EmptySchedule,
    Interrupt,
    SimulationError,
    SimulationStalled,
    StopSimulation,
)
from .monitor import P2Quantile, ReservoirSample, Tally, TimeWeighted
from .profiling import KernelProfiler, format_profile, merge_profiles
from .resources import (
    Preempted,
    PreemptiveResource,
    PriorityRequest,
    PriorityResource,
    Request,
    Resource,
)
from .stores import FilterStore, Store
from .tracing import EventCounter, EventLog, TraceEntry, event_kind

__all__ = [
    "Environment",
    "Infinity",
    "Event",
    "Timeout",
    "Hold",
    "Process",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "NORMAL",
    "URGENT",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "EmptySchedule",
    "SimulationStalled",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Request",
    "PriorityRequest",
    "Preempted",
    "Store",
    "FilterStore",
    "Container",
    "P2Quantile",
    "ReservoirSample",
    "Tally",
    "TimeWeighted",
    "EventLog",
    "EventCounter",
    "TraceEntry",
    "event_kind",
    "KernelProfiler",
    "format_profile",
    "merge_profiles",
]
