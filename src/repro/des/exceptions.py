"""Exception types used by the discrete-event simulation kernel.

The kernel mirrors the process-interaction style popularized by SimPy:
model logic lives in Python generator functions that ``yield`` events.
Exceptional control flow — interrupting a waiting process, running off
the end of the event queue, failing an event — is expressed with the
exception classes defined here.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "EmptySchedule",
    "StopSimulation",
    "Interrupt",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no more events are queued."""


class StopSimulation(Exception):
    """Internal signal used by :meth:`Environment.run` to stop the loop.

    ``run(until=...)`` schedules a sentinel event whose processing raises
    this exception; user code never needs to catch it.
    """

    @classmethod
    def callback(cls, event: "object") -> None:
        """Event callback that stops the simulation when *event* fires."""
        if event.ok:  # type: ignore[attr-defined]
            raise cls(event.value)  # type: ignore[attr-defined]
        raise event.value  # type: ignore[attr-defined]


class Interrupt(Exception):
    """Thrown into a process that is interrupted via :meth:`Process.interrupt`.

    The interrupting party supplies an arbitrary *cause* object describing
    why the process was interrupted (e.g. a CPU-preemption record).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
