"""Exception types used by the discrete-event simulation kernel.

The kernel mirrors the process-interaction style popularized by SimPy:
model logic lives in Python generator functions that ``yield`` events.
Exceptional control flow — interrupting a waiting process, running off
the end of the event queue, failing an event — is expressed with the
exception classes defined here.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "EmptySchedule",
    "SimulationStalled",
    "StopSimulation",
    "Interrupt",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no more events are queued."""


class SimulationStalled(SimulationError):
    """Raised by the :meth:`Environment.run` watchdog on a runaway run.

    A simulation that livelocks (e.g. two processes ping-ponging
    zero-delay events) never exhausts its schedule and never reaches
    ``until``; without a watchdog the host process spins forever.  The
    exception carries enough context to diagnose the livelock: the
    simulation time it froze at, the number of events processed, and the
    names of the processes waiting at the head of the schedule.
    """

    def __init__(
        self,
        message: str,
        now: float = 0.0,
        events_processed: int = 0,
        blocked: "tuple | list" = (),
    ):
        super().__init__(message)
        #: Simulation time at which the watchdog fired.
        self.now = now
        #: Events processed by this ``run()`` call before the watchdog fired.
        self.events_processed = events_processed
        #: Names of processes waiting on the earliest scheduled events.
        self.blocked = list(blocked)


class StopSimulation(Exception):
    """Internal signal used by :meth:`Environment.run` to stop the loop.

    ``run(until=...)`` schedules a sentinel event whose processing raises
    this exception; user code never needs to catch it.
    """

    @classmethod
    def callback(cls, event: "object") -> None:
        """Event callback that stops the simulation when *event* fires."""
        if event.ok:  # type: ignore[attr-defined]
            raise cls(event.value)  # type: ignore[attr-defined]
        raise event.value  # type: ignore[attr-defined]


class Interrupt(Exception):
    """Thrown into a process that is interrupted via :meth:`Process.interrupt`.

    The interrupting party supplies an arbitrary *cause* object describing
    why the process was interrupted (e.g. a CPU-preemption record).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
