"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is the unit of synchronization: processes yield events
and are resumed when the event is *processed* (its callbacks run).  The
life cycle is::

    untriggered --> triggered (scheduled, has value) --> processed

Derived events:

* :class:`Timeout` — fires after a fixed delay.
* :class:`Initialize` — internal; starts a freshly created process.
* :class:`Process` — a running generator; itself an event that fires when
  the generator terminates, which lets processes wait for each other.
* :class:`Condition` / :class:`AllOf` / :class:`AnyOf` — composite events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

from .exceptions import Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "HOLD_COMPLETED",
    "Event",
    "Hold",
    "Timeout",
    "Initialize",
    "Interruption",
    "Process",
    "ConditionValue",
    "Condition",
    "AllOf",
    "AnyOf",
]

#: Sentinel for "event has no value yet".
PENDING: Any = object()

#: Schedule priority for kernel bookkeeping events (served first at a tick).
URGENT = 0
#: Default schedule priority for model events.
NORMAL = 1


class Event:
    """A single occurrence that processes may wait for.

    Events are created untriggered.  :meth:`succeed` or :meth:`fail`
    triggers them, scheduling their callbacks to run at the current
    simulation time.  A callback is any callable accepting the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callbacks to invoke when the event is processed. ``None`` once
        #: the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "untriggered"
        )
        return f"<{self.__class__.__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """``True`` once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only valid once triggered)."""
        if not self.triggered:
            raise AttributeError("value of event is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` / exception from :meth:`fail`."""
        if self._value is PENDING:
            raise AttributeError("value of event is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure was handled by some waiter (no crash)."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    def trigger(self, event: "Event") -> None:
        """Trigger with the state (ok/value) copied from *event*.

        Useful as a callback to chain events.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional *value*."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* as its value.

        A failed event re-raises *exception* in every waiting process; if
        nobody waits (and nobody defuses it), the simulation crashes when
        the event is processed.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class _HoldCompleted:
    """Sentinel yielded for a fast-path hold (see ``Environment.hold``).

    ``Process._resume`` recognizes it by identity and simply parks the
    process: the hold itself was already pushed on the heap by
    ``Environment.hold``, so there is nothing to register callbacks on.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<HOLD_COMPLETED>"


#: Singleton returned by ``Environment.hold`` on the fast path.  Model
#: code must ``yield`` it immediately and must not inspect it.
HOLD_COMPLETED: Any = _HoldCompleted()


class Hold:
    """Zero-allocation stand-in for a ``Timeout`` that resumes one process.

    A hold is *not* an :class:`Event`: it has no callback list and no
    per-instance value.  The run loop recognizes it by type, returns it
    to the environment's free list, and resumes ``proc`` directly.  The
    class-level event-protocol attributes (``ok``/``value``/...) make
    holds safe to pass through ``Process._resume`` and tracers.
    """

    __slots__ = ("proc",)

    # Event-protocol surface (a hold always "succeeds" with value None).
    callbacks = None
    triggered = True
    processed = True
    ok = True
    value = None
    _ok = True
    _value = None
    _defused = True

    def __init__(self) -> None:
        self.proc: Optional["Process"] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = getattr(self.proc, "name", None)
        return f"<Hold proc={name!r} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Bypass Event.__init__ to schedule immediately.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._delay = delay
        env.schedule(self, NORMAL, delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a process when it is processed."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._defused = True
        env.schedule(self, URGENT)


class Interruption(Event):
    """Internal event that throws :class:`Interrupt` into a process."""

    __slots__ = ("process", "cause")

    def __init__(self, process: "Process", cause: Any):
        self.env = process.env
        self.callbacks = [self._interrupt]
        self._value = None
        self._ok = False
        self._defused = True
        if process.triggered:
            raise RuntimeError(f"{process!r} has terminated and cannot be interrupted")
        if process is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        self.process = process
        self.cause = cause
        self.env.schedule(self, URGENT)

    def _interrupt(self, event: "Event") -> None:
        proc = self.process
        if proc.triggered:  # terminated between scheduling and delivery
            return
        # Detach from whatever the process is currently waiting on so the
        # original event does not also resume it later.
        target = proc._target
        if type(target) is Hold:
            # Fast-path hold: orphan the heap entry; the run loop recycles
            # it without resuming anyone when it is eventually popped.
            target.proc = None
        elif target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._resume_cb)
            except ValueError:  # pragma: no cover - already detached
                pass
        proc._resume(_Thrower(Interrupt(self.cause)))


class _Thrower:
    """Minimal event-like object that makes ``_resume`` throw an exception."""

    __slots__ = ("_value", "_defused")

    # ``_resume`` reads the protocol slots directly, so mirror an Event's
    # failed state at class level.
    _ok = False

    def __init__(self, exc: BaseException):
        self._value = exc
        self._defused = True

    @property
    def ok(self) -> bool:
        return False

    @property
    def value(self) -> BaseException:
        return self._value

    @property
    def defused(self) -> bool:
        return True

    @defused.setter
    def defused(self, value: bool) -> None:  # pragma: no cover - trivial
        pass


class Process(Event):
    """Wraps a generator and runs it as a simulation process.

    The process is itself an event that is triggered when the generator
    returns (value = generator's return value) or raises (failure).
    Yield any :class:`Event` from the generator to wait for it; the
    event's value is the result of the ``yield`` expression.
    """

    __slots__ = ("_generator", "_target", "name", "_resume_cb")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: Cached bound method registered as the wake-up callback, so
        #: parking on an event does not allocate a fresh bound method.
        self._resume_cb = self._resume
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process({self.name}) at {id(self):#x}>"

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (``None`` if active)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the underlying generator terminates."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` with *cause* into this process.

        Delivery happens at the current simulation time, with kernel
        priority (before ordinary model events scheduled at that time).
        """
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value/exception of *event*.

        Hot path: reads the event-protocol slots (``_ok``/``_value``)
        directly instead of going through the properties — every event
        handed to a resume is already triggered, so the property guards
        are dead weight here.
        """
        env = self.env
        env._active_proc = self
        gen = self._generator
        while True:
            try:
                if event._ok:
                    next_event = gen.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    if not isinstance(exc, BaseException):  # pragma: no cover
                        exc = SimulationError(repr(exc))
                    next_event = gen.throw(exc)
            except StopIteration as exc:
                # Process finished.
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except BaseException as exc:
                # Process crashed: fail the process event.
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            # The generator yielded an event to wait on.
            if next_event is HOLD_COMPLETED:
                # Fast-path hold: Environment.hold already scheduled it
                # and pointed it at this process; just park.
                env._active_proc = None
                return
            try:
                if next_event.callbacks is not None:
                    # Event not yet processed: register and go to sleep.
                    next_event.callbacks.append(self._resume_cb)
                    self._target = next_event
                    env._active_proc = None
                    return
                # Already-processed event: loop immediately with its value.
                event = next_event
            except AttributeError:
                if not hasattr(next_event, "callbacks"):
                    raise TypeError(
                        f"process {self.name!r} yielded a non-event: {next_event!r}"
                    ) from None
                raise  # pragma: no cover
        # Reached only when the generator terminated.
        self._target = None
        env._active_proc = None


class ConditionValue:
    """Ordered mapping of events to values produced by a condition."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return list(self.events)

    def values(self):
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self) -> dict:
        return {e: e._value for e in self.events}


class Condition(Event):
    """A composite event triggered when *evaluate(events, count)* is true.

    ``count`` is the number of constituent events that have fired so far.
    The value of the condition is a :class:`ConditionValue` with every
    constituent event that has been processed by trigger time.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from multiple environments mixed")

        # Check for immediately-satisfied conditions (e.g. empty AllOf).
        if self._evaluate(self._events, 0) and not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def __repr__(self) -> str:
        return (
            f"<Condition {self._evaluate.__name__} of {len(self._events)} "
            f"events at {id(self):#x}>"
        )

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None and event._value is not PENDING:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            # Propagate the failure.
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # Defer value collection so all same-time events are included.
            self.succeed(None)
            self.callbacks.insert(0, self._collect)

    def _collect(self, event: Event) -> None:
        value = ConditionValue()
        self._populate_value(value)
        self._value = value

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """True when every constituent event has fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """True when at least one constituent event has fired."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition satisfied when all *events* have fired (``&`` chain)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition satisfied when any of *events* has fired (``|`` chain)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
