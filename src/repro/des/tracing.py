"""Observability for the simulation kernel itself.

The ROCC study is about instrumenting systems; this module instruments
the *simulator*: an :class:`EventLog` records every processed event
(time, kind, process name) for debugging and for the kernel-throughput
benchmarks, and :class:`EventCounter` keeps cheap per-kind counts for
long runs where retaining a log would be prohibitive.

Usage::

    env = Environment()
    with EventLog(env, limit=10_000) as log:
        env.run(until=1_000.0)
    print(log.summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .core import Environment
from .events import Event, Hold, Process, Timeout

__all__ = ["TraceEntry", "EventLog", "EventCounter", "event_kind"]


def event_kind(event: Event) -> str:
    """Short classification of an event for logs and counters."""
    if isinstance(event, Process):
        return "process"
    if isinstance(event, (Timeout, Hold)):
        # A fast-path hold is semantically a timeout, so traces stay
        # identical whichever kernel path produced the event.
        return "timeout"
    return type(event).__name__.lower()


@dataclass(frozen=True)
class TraceEntry:
    """One processed event."""

    time: float
    kind: str
    name: Optional[str]
    ok: bool


class EventLog:
    """Records processed events, optionally bounded to the last ``limit``.

    Works as a context manager that attaches/detaches itself from the
    environment's tracer list.
    """

    def __init__(self, env: Environment, limit: Optional[int] = None):
        self.env = env
        self.limit = limit
        self.entries: List[TraceEntry] = []
        self.dropped = 0

    # -- tracer protocol --------------------------------------------------
    def __call__(self, event: Event, now: float) -> None:
        if self.limit is not None and len(self.entries) >= self.limit:
            self.dropped += 1
            if not self.entries:  # limit == 0 retains nothing
                return
            self.entries.pop(0)
        self.entries.append(
            TraceEntry(
                time=now,
                kind=event_kind(event),
                name=getattr(event, "name", None),
                ok=bool(event._ok) if event.triggered else True,
            )
        )

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "EventLog":
        self.env.add_tracer(self)
        return self

    def detach(self) -> None:
        self.env.remove_tracer(self)

    def __enter__(self) -> "EventLog":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def of_kind(self, kind: str) -> List[TraceEntry]:
        return [e for e in self.entries if e.kind == kind]

    def between(self, start: float, end: float) -> List[TraceEntry]:
        return [e for e in self.entries if start <= e.time <= end]

    def summary(self) -> Dict[str, int]:
        """Event counts by kind (over retained entries)."""
        out: Dict[str, int] = {}
        for e in self.entries:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


class EventCounter:
    """O(1)-memory event counter by kind; suitable for long runs."""

    def __init__(self, env: Environment):
        self.env = env
        self.counts: Dict[str, int] = {}
        self.total = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def __call__(self, event: Event, now: float) -> None:
        kind = event_kind(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.total += 1
        if self.first_time is None:
            self.first_time = now
        self.last_time = now

    def attach(self) -> "EventCounter":
        self.env.add_tracer(self)
        return self

    def detach(self) -> None:
        self.env.remove_tracer(self)

    def __enter__(self) -> "EventCounter":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    def events_per_sim_time(self) -> float:
        """Event density over the observed simulated span."""
        if self.first_time is None or self.last_time == self.first_time:
            return float("nan")
        return self.total / (self.last_time - self.first_time)
