"""Opt-in kernel profiler: where does a simulation's wall time go?

The ROCC study is about measuring an instrumentation system's own cost;
:class:`KernelProfiler` applies the same idea to the simulator.  It is
a tracer (see :class:`~repro.des.core.Environment.add_tracer`) that
attributes host wall-clock time to the event *whose callbacks are
running* — the span between two consecutive trace calls belongs to the
earlier event — and aggregates by event kind and by process name, plus
periodic heap-occupancy samples.

The profiler costs one ``perf_counter`` call and a couple of dict
updates per event, so it is strictly opt-in: enable it with the
``--profile`` CLI flags or ``REPRO_PROFILE=1``, which
:class:`~repro.rocc.system.ParadynISSystem` honours automatically.

A profile is a plain dict (JSON-friendly) so it can cross process
boundaries from experiment-engine workers back to
:class:`~repro.experiments.engine.EngineStats`.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from .core import Environment
from .events import Hold, Process
from .tracing import event_kind

__all__ = [
    "KernelProfiler",
    "profile_enabled",
    "merge_profiles",
    "format_profile",
    "set_last_profile",
    "take_last_profile",
]


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for kernel profiling."""
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "on", "true", "yes",
    )


class KernelProfiler:
    """Tracer aggregating per-event wall time, counts, and heap depth.

    Parameters
    ----------
    env:
        Environment to observe.
    heap_interval:
        Heap occupancy is sampled every this-many events (cheap
        amortized observability of schedule pressure).
    top_n:
        How many per-process rows :meth:`report` retains.
    """

    def __init__(self, env: Environment, heap_interval: int = 256, top_n: int = 10):
        self.env = env
        self.heap_interval = max(1, int(heap_interval))
        self.top_n = int(top_n)
        self.events = 0
        self._by_kind: Dict[str, List[float]] = {}  # kind -> [count, wall, sim]
        self._by_process: Dict[str, List[float]] = {}
        self._heap_samples = 0
        self._heap_sum = 0
        self._heap_max = 0
        self._last_key: Optional[Tuple[str, Optional[str]]] = None
        self._last_wall = 0.0
        self._last_sim = 0.0
        self._t0 = 0.0
        self._wall = 0.0

    # -- tracer protocol ------------------------------------------------
    def __call__(self, event, now: float) -> None:
        t = perf_counter()
        last = self._last_key
        if last is not None:
            self._charge(last, t - self._last_wall, now - self._last_sim)
        if type(event) is Hold:
            kind = "timeout"
            proc = event.proc
            name = proc.name if proc is not None else None
        else:
            kind = event_kind(event)
            name = getattr(event, "name", None)
            if name is None:
                # Attribute anonymous events to the process they resume.
                for cb in event.callbacks or ():
                    owner = getattr(cb, "__self__", None)
                    if isinstance(owner, Process):
                        name = owner.name
                        break
        self.events += 1
        if self.events % self.heap_interval == 0:
            depth = len(self.env)
            self._heap_samples += 1
            self._heap_sum += depth
            if depth > self._heap_max:
                self._heap_max = depth
        self._last_key = (kind, name)
        self._last_wall = t
        self._last_sim = now

    def _charge(self, key: Tuple[str, Optional[str]], wall: float, sim: float) -> None:
        kind, name = key
        row = self._by_kind.get(kind)
        if row is None:
            row = self._by_kind[kind] = [0, 0.0, 0.0]
        row[0] += 1
        row[1] += wall
        row[2] += sim
        if name is not None:
            row = self._by_process.get(name)
            if row is None:
                row = self._by_process[name] = [0, 0.0, 0.0]
            row[0] += 1
            row[1] += wall
            row[2] += sim

    # -- lifecycle ------------------------------------------------------
    def attach(self) -> "KernelProfiler":
        self._t0 = perf_counter()
        self.env.add_tracer(self)
        return self

    def detach(self) -> None:
        self.env.remove_tracer(self)
        t = perf_counter()
        if self._last_key is not None:
            # Close the span of the final event.
            self._charge(self._last_key, t - self._last_wall, 0.0)
            self._last_key = None
        self._wall = t - self._t0

    def __enter__(self) -> "KernelProfiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- output ---------------------------------------------------------
    def report(self) -> dict:
        """Aggregate the run into a plain (JSON-friendly) dict."""
        wall = self._wall if self._wall > 0 else perf_counter() - self._t0
        top = sorted(
            self._by_process.items(), key=lambda kv: kv[1][1], reverse=True
        )[: self.top_n]
        return {
            "events": self.events,
            "wall_seconds": wall,
            "events_per_second": self.events / wall if wall > 0 else 0.0,
            "sim_time": self.env.now,
            "by_kind": {
                k: {"count": int(v[0]), "wall_seconds": v[1], "sim_time": v[2]}
                for k, v in sorted(self._by_kind.items())
            },
            "by_process": {
                k: {"count": int(v[0]), "wall_seconds": v[1], "sim_time": v[2]}
                for k, v in top
            },
            "heap": {
                "samples": self._heap_samples,
                "mean": (
                    self._heap_sum / self._heap_samples if self._heap_samples else 0.0
                ),
                "max": self._heap_max,
            },
            # Scheduler's own operation counters (enqueues, dequeues,
            # bucket resizes, max bucket occupancy) — the calendar
            # queue's health at a glance.
            "queue": dict(self.env.scheduler.stats()),
        }


def merge_profiles(a: Optional[dict], b: Optional[dict]) -> Optional[dict]:
    """Combine two profile dicts (sums counts/times, max of heap depth)."""
    if a is None:
        return b
    if b is None:
        return a

    def merge_rows(x: Dict[str, dict], y: Dict[str, dict]) -> Dict[str, dict]:
        out = {k: dict(v) for k, v in x.items()}
        for k, v in y.items():
            row = out.setdefault(k, {"count": 0, "wall_seconds": 0.0, "sim_time": 0.0})
            row["count"] += v["count"]
            row["wall_seconds"] += v["wall_seconds"]
            row["sim_time"] += v["sim_time"]
        return out

    wall = a["wall_seconds"] + b["wall_seconds"]
    events = a["events"] + b["events"]
    return {
        "events": events,
        "wall_seconds": wall,
        "events_per_second": events / wall if wall > 0 else 0.0,
        "sim_time": a["sim_time"] + b["sim_time"],
        "by_kind": merge_rows(a["by_kind"], b["by_kind"]),
        "by_process": merge_rows(a["by_process"], b["by_process"]),
        "heap": {
            "samples": a["heap"]["samples"] + b["heap"]["samples"],
            "mean": (
                (
                    a["heap"]["mean"] * a["heap"]["samples"]
                    + b["heap"]["mean"] * b["heap"]["samples"]
                )
                / (a["heap"]["samples"] + b["heap"]["samples"])
                if a["heap"]["samples"] + b["heap"]["samples"]
                else 0.0
            ),
            "max": max(a["heap"]["max"], b["heap"]["max"]),
        },
        "queue": _merge_queue(a.get("queue"), b.get("queue")),
    }


def _merge_queue(qa: Optional[dict], qb: Optional[dict]) -> dict:
    """Combine scheduler counter sections (tolerates legacy profiles)."""
    qa = qa or {}
    qb = qb or {}
    impl_a = qa.get("impl", "?")
    impl_b = qb.get("impl", "?")
    return {
        "impl": impl_a if impl_a == impl_b else f"{impl_a}+{impl_b}",
        "enqueues": qa.get("enqueues", 0) + qb.get("enqueues", 0),
        "dequeues": qa.get("dequeues", 0) + qb.get("dequeues", 0),
        "resizes": qa.get("resizes", 0) + qb.get("resizes", 0),
        "max_bucket": max(qa.get("max_bucket", 0), qb.get("max_bucket", 0)),
    }


def format_profile(profile: Optional[dict]) -> str:
    """Human-readable rendering of a profile dict."""
    if not profile:
        return "kernel profile: (empty)"
    lines = [
        f"kernel profile: {profile['events']} events in "
        f"{profile['wall_seconds']:.3f}s wall "
        f"({profile['events_per_second']:,.0f} ev/s), "
        f"sim time {profile['sim_time']:g}",
        f"  heap occupancy: mean {profile['heap']['mean']:.1f}, "
        f"max {profile['heap']['max']} "
        f"({profile['heap']['samples']} samples)",
    ]
    queue = profile.get("queue")
    if queue:
        lines.append(
            f"  event queue [{queue.get('impl', '?')}]: "
            f"{queue.get('enqueues', 0):,} enqueues, "
            f"{queue.get('dequeues', 0):,} dequeues, "
            f"{queue.get('resizes', 0)} resizes, "
            f"max bucket {queue.get('max_bucket', 0)}"
        )
    lines.append("  by event kind:")
    for kind, row in sorted(
        profile["by_kind"].items(), key=lambda kv: kv[1]["wall_seconds"], reverse=True
    ):
        lines.append(
            f"    {kind:<12s} {row['count']:>9d} ev  "
            f"{row['wall_seconds']:8.3f}s wall  {row['sim_time']:12.1f} sim"
        )
    if profile["by_process"]:
        lines.append("  top processes:")
        for name, row in sorted(
            profile["by_process"].items(),
            key=lambda kv: kv[1]["wall_seconds"],
            reverse=True,
        ):
            lines.append(
                f"    {name:<24s} {row['count']:>9d} ev  "
                f"{row['wall_seconds']:8.3f}s wall"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Last-profile handoff: lets layers that only see SimulationResults (the
# experiment engine's _run_cell) harvest the profile of the run that just
# finished in this process.
# ---------------------------------------------------------------------------

_last_profile: Optional[dict] = None


def set_last_profile(profile: Optional[dict]) -> None:
    global _last_profile
    _last_profile = profile


def take_last_profile() -> Optional[dict]:
    """Return and clear the most recent run's profile (or ``None``)."""
    global _last_profile
    profile, _last_profile = _last_profile, None
    return profile
