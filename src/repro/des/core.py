"""The simulation :class:`Environment`: clock, event queue, main loop.

The environment owns the simulation clock (``env.now``) and a pluggable
event scheduler (:mod:`repro.des.queues`) ordering scheduled events by
``(time, priority, sequence)`` — a calendar queue by default, selectable
via ``REPRO_DES_QUEUE={heap,calendar,ladder}``; every implementation
pops in the identical total order.  Model code creates events through
the factory methods (:meth:`timeout`, :meth:`process`, :meth:`event`,
...) and drives the simulation with :meth:`run`.

Time is a plain ``float``; this package uses **microseconds** throughout
the ROCC model, but the kernel itself is unit-agnostic.
"""

from __future__ import annotations

import os
from itertools import count
from time import monotonic
from typing import Any, Generator, Iterable, List, Optional

from .events import (
    HOLD_COMPLETED,
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    Event,
    Hold,
    Process,
    Timeout,
)
from .exceptions import (
    EmptySchedule,
    SimulationError,
    SimulationStalled,
    StopSimulation,
)
from .queues import make_scheduler

__all__ = ["Environment", "Infinity"]

#: Convenience alias used for "run forever".
Infinity: float = float("inf")

#: Cap on the free lists so pathological models cannot hoard memory.
_POOL_LIMIT = 256


def _fastpath_enabled() -> bool:
    """Read the ``REPRO_DES_FASTPATH`` escape hatch (default: on).

    Checked once per :class:`Environment`, so tests can flip the
    variable between runs to compare the generic and fast kernels.
    """
    return os.environ.get("REPRO_DES_FASTPATH", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


#: The one callback the recycler accepts: a bound ``Process._resume``.
_PROCESS_RESUME = Process._resume


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now: float = float(initial_time)
        #: The event scheduler (``REPRO_DES_QUEUE`` selects the
        #: implementation); ``_push`` is its bound enqueue, cached so
        #: the factory hot paths pay one attribute load, not two.
        self._scheduler = make_scheduler()
        self._push = self._scheduler.push
        # The auto scheduler re-points the cached ``_push`` at its
        # promoted implementation; give it the back-reference it needs.
        bind = getattr(self._scheduler, "bind", None)
        if bind is not None:
            bind(self)
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: Optional observers invoked as ``tracer(event, now)`` for every
        #: processed event (see :mod:`repro.des.tracing`).  Kept as a
        #: plain list checked with one truthiness test so the untraced
        #: hot path stays cheap.
        self._tracers: List = []
        #: ``REPRO_DES_FASTPATH=0`` disables holds and event recycling,
        #: restoring the generic kernel (the equivalence-test baseline).
        self._fastpath: bool = _fastpath_enabled()
        # Free lists for recycled Hold / Timeout objects.  An object is
        # only ever recycled once it has been popped and fully processed,
        # so nothing can observe a pooled instance.
        self._hold_pool: List[Hold] = []
        self._timeout_pool: List[Timeout] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        return self._scheduler.peek_time()

    @property
    def scheduler(self):
        """The active event scheduler (see :mod:`repro.des.queues`)."""
        return self._scheduler

    def add_tracer(self, tracer) -> None:
        """Register an observer called as ``tracer(event, now)`` for every
        processed event."""
        self._tracers.append(tracer)

    def remove_tracer(self, tracer) -> None:
        """Unregister a previously added tracer (no-op if absent)."""
        try:
            self._tracers.remove(tracer)
        except ValueError:
            pass

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) events."""
        return len(self._scheduler)

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after *delay* time units.

        On the fast path the instance may come from a free list of
        recycled timeouts (state fully reset); the observable behaviour
        is identical to a freshly constructed :class:`Timeout`.
        """
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = pool.pop()
        t.callbacks = []
        t._value = value
        t._ok = True
        t._defused = False
        t._delay = delay
        self._push((self._now + delay, NORMAL, next(self._eid), t))
        return t

    def hold(self, delay: float):
        """Park the active process for *delay* time units (fast timeout).

        Semantically identical to ``yield env.timeout(delay)`` for a
        plain process sleep, but allocation-free: no ``Timeout``, no
        callbacks list — the run loop resumes the process directly off
        the heap.  The return value must be yielded immediately and
        never composed (``hold(d) | other`` is invalid); use
        :meth:`timeout` when the event itself is needed.

        Falls back to a real :class:`Timeout` when called outside a
        process or when ``REPRO_DES_FASTPATH=0``.
        """
        proc = self._active_proc
        if proc is None or not self._fastpath:
            return self.timeout(delay)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._hold_pool
        hold = pool.pop() if pool else Hold()
        hold.proc = proc
        proc._target = hold
        self._push((self._now + delay, NORMAL, next(self._eid), hold))
        return HOLD_COMPLETED

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new :class:`Process` running *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition satisfied once all *events* fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition satisfied once any of *events* fires."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling / execution
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue *event* to be processed ``delay`` time units from now."""
        self._push((self._now + delay, priority, next(self._eid), event))

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when the queue is empty, and
        re-raises the value of any *failed* event that no waiter defused
        (an unhandled simulation error).
        """
        try:
            self._now, _, _, event = self._scheduler.pop()
        except IndexError:
            raise EmptySchedule() from None

        if type(event) is Hold:
            proc = event.proc
            if self._tracers:
                for tracer in self._tracers:
                    tracer(event, self._now)
            event.proc = None
            if len(self._hold_pool) < _POOL_LIMIT:
                self._hold_pool.append(event)
            if proc is not None:  # None: cancelled by an interrupt
                proc._resume(event)
            return

        if self._tracers:
            for tracer in self._tracers:
                tracer(event, self._now)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if type(event) is Timeout:
            # Recycle iff every waiter was a plain process resume (or the
            # list is empty after an interrupt detach): such a timeout can
            # never be re-inspected, unlike condition constituents whose
            # values are read after processing.
            if self._fastpath and len(self._timeout_pool) < _POOL_LIMIT:
                for cb in callbacks:
                    if getattr(cb, "__func__", None) is not _PROCESS_RESUME:
                        return
                # Pooled with callbacks=None: stale references still see a
                # processed event until the instance is actually reused.
                self._timeout_pool.append(event)
            return

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(repr(exc))  # pragma: no cover

    def run(
        self,
        until: Any = None,
        *,
        max_events: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
    ) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — run until the clock reaches that time (the clock is
          advanced exactly to it even if no event falls there);
        * an :class:`Event` — run until that event is processed, returning
          its value.

        ``max_events`` and ``max_wall_seconds`` arm a watchdog: if more
        than ``max_events`` events are processed, or more than
        ``max_wall_seconds`` of host wall-clock time elapses, before the
        run finishes, :class:`SimulationStalled` is raised naming the
        processes blocked at the head of the schedule.  This turns a
        livelocked model (e.g. a zero-delay event loop) into a
        diagnosable error instead of a hung experiment harness.
        """
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1")
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive")
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until ({at}) must not be before now ({self._now})")
            if at == self._now:  # SimPy semantics: nothing to do
                return None
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, URGENT, at - self._now)
        if isinstance(until, Event):
            if until.callbacks is None:  # already processed
                return until.value
            until.callbacks.append(StopSimulation.callback)

        try:
            if max_events is None and max_wall_seconds is None:
                self._run_inner()
            else:
                deadline = (
                    monotonic() + max_wall_seconds
                    if max_wall_seconds is not None
                    else None
                )
                steps = 0
                while True:
                    self.step()
                    steps += 1
                    if max_events is not None and steps >= max_events:
                        raise self._stalled(
                            f"exceeded max_events={max_events}", steps
                        )
                    # Wall-clock checks are batched so the hot loop pays
                    # one integer test per event, not a syscall.
                    if (
                        deadline is not None
                        and steps & 0x3FF == 0
                        and monotonic() >= deadline
                    ):
                        raise self._stalled(
                            f"exceeded max_wall_seconds={max_wall_seconds}", steps
                        )
        except StopSimulation as exc:
            return exc.args[0]
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "no scheduled events left but the until event was not triggered"
                ) from None
        return None

    def _run_inner(self) -> None:
        """Inlined dispatch loop for un-watchdogged runs.

        Byte-for-byte the same event semantics as :meth:`step`, with
        every per-event attribute lookup hoisted into a local.  Exits by
        raising :class:`StopSimulation` / :class:`EmptySchedule`, which
        :meth:`run` handles.
        """
        pop = self._scheduler.pop
        tracers = self._tracers  # mutated in place by add/remove_tracer
        hold_pool = self._hold_pool
        timeout_pool = self._timeout_pool
        fastpath = self._fastpath
        resume = _PROCESS_RESUME
        hold_cls = Hold
        timeout_cls = Timeout
        pool_limit = _POOL_LIMIT
        while True:
            try:
                now, _, _, event = pop()
            except IndexError:
                raise EmptySchedule() from None
            self._now = now
            cls = event.__class__
            if cls is hold_cls:
                proc = event.proc
                if tracers:
                    for tracer in tracers:
                        tracer(event, now)
                event.proc = None
                if len(hold_pool) < pool_limit:
                    hold_pool.append(event)
                if proc is not None:  # None: cancelled by an interrupt
                    resume(proc, event)
                continue
            if tracers:
                for tracer in tracers:
                    tracer(event, now)
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks is None:  # pragma: no cover - double-processing guard
                raise SimulationError(f"{event!r} processed twice")
            for callback in callbacks:
                callback(event)
            if cls is timeout_cls:
                if fastpath and len(timeout_pool) < pool_limit:
                    for cb in callbacks:
                        if getattr(cb, "__func__", None) is not resume:
                            break
                    else:
                        timeout_pool.append(event)
                continue
            if not event._ok and not event._defused:
                exc = event._value
                if isinstance(exc, BaseException):
                    raise exc
                raise SimulationError(repr(exc))  # pragma: no cover

    def _stalled(self, reason: str, steps: int) -> SimulationStalled:
        """Build a :class:`SimulationStalled` naming blocked processes."""
        blocked: List[str] = []
        for _, _, _, event in self._scheduler.smallest(16):
            if type(event) is Hold:
                # Fast-path holds carry the parked process directly
                # instead of a callbacks list.
                proc = event.proc
                if proc is not None and proc.name not in blocked:
                    blocked.append(proc.name)
                continue
            if isinstance(event, Process) and event.name not in blocked:
                blocked.append(event.name)
            for callback in event.callbacks or ():
                owner = getattr(callback, "__self__", None)
                if isinstance(owner, Process) and owner.name not in blocked:
                    blocked.append(owner.name)
        message = (
            f"simulation stalled ({reason}) at t={self._now:g} "
            f"after {steps} events"
        )
        if blocked:
            message += "; processes at the head of the schedule: " + ", ".join(
                blocked[:8]
            )
        return SimulationStalled(
            message, now=self._now, events_processed=steps, blocked=blocked
        )
