"""Pluggable event schedulers for the DES kernel.

The kernel orders scheduled events by ``(time, priority, sequence)``;
the sequence id is unique and monotone, so that triple is a *total*
order and any correct priority queue yields the exact same pop order.
That is the contract every scheduler here honours, which is why
``REPRO_DES_QUEUE`` can swap implementations without changing a single
simulation result (verified by ``differential.event_queue``).

Three implementations:

* :class:`HeapScheduler` — the classic binary heap (``heapq``).  O(log n)
  per operation but C-implemented; the reference semantics.
* :class:`CalendarQueue` — Brown's calendar queue (CACM 1988) with lazy
  bucket sorting: pushes append to unsorted buckets in O(1); a bucket is
  sorted once, when its time window becomes current, into a *run* list
  served by index.  Pushes that land below the current horizon (every
  zero-delay ``succeed()``) are insorted into the short run.  Bucket
  count resizes with occupancy and the bucket width adapts to the
  observed inter-event gap, giving amortized O(1) enqueue/dequeue.
* :class:`LadderQueue` — a ladder-queue-style two-level lazy structure
  for skewed schedules: an unsorted *top* collects far-future events and
  is sorted in bounded rungs only when the sorted *bottom* run drains.
* :class:`AutoScheduler` — the default: starts on the heap (fastest on
  near-empty schedules) and promotes, once, to a calendar queue when the
  schedule depth crosses a threshold.  The promotion is a one-way latch,
  so oscillating occupancy cannot thrash, and it provably preserves the
  pop order.

All per-operation bookkeeping is kept off the hot path: only a single
counter increments on push, dequeues are derived (``enqueues − len``),
and gap estimation happens once per window activation, not per pop.

:class:`TieBreakingHeap` is the shared tie-breaking helper for ordered
wait queues outside the kernel (``des.resources``): a heap of
``(key, seq, item)`` whose items are never compared.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush, nsmallest
from itertools import count
from math import inf
from typing import Any, Iterator, List, Tuple

__all__ = [
    "HeapScheduler",
    "CalendarQueue",
    "LadderQueue",
    "AutoScheduler",
    "TieBreakingHeap",
    "SCHEDULERS",
    "DEFAULT_QUEUE",
    "scheduler_name_from_env",
    "make_scheduler",
]

#: A scheduled entry: ``(time, priority, sequence, event)``.
Entry = Tuple[float, int, int, Any]

#: Smallest bucket count the calendar queue shrinks back to.
_MIN_BUCKETS = 16
#: Bucket-count ceiling (a backstop, not a tuning knob).
_MAX_BUCKETS = 1 << 20
#: Target events per activated window; sets width = _SPREAD × mean gap.
#: Larger windows amortize the per-activation refill machinery over
#: more pops; below-horizon insorts stay cheap because runs this size
#: are a single cache-resident memmove.
_SPREAD = 32.0
#: Largest run served from one activation: bounds the memmove cost of
#: below-horizon insorts and keeps gap samples flowing even when a
#: mis-sized window holds thousands of events.
_MAX_RUN = 1024
#: Largest sorted run the ladder queue serves at once (one "rung").
_LADDER_RUNG = 4096
#: Schedule depth at which :class:`AutoScheduler` promotes its heap to a
#: calendar queue.  Below this, C-implemented ``heapq`` beats Python
#: bucket math (the near-empty regression BENCH_DES.json documents);
#: above it the calendar's amortized O(1) wins.
_PROMOTE_AT = 512


class HeapScheduler:
    """Reference scheduler: a binary heap of entry tuples."""

    name = "heap"

    __slots__ = ("_entries", "enqueues")

    def __init__(self) -> None:
        self._entries: List[Entry] = []
        self.enqueues = 0

    def push(self, entry: Entry) -> None:
        self.enqueues += 1
        heappush(self._entries, entry)

    def pop(self) -> Entry:
        return heappop(self._entries)  # IndexError when empty

    def peek_time(self) -> float:
        entries = self._entries
        return entries[0][0] if entries else inf

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    def smallest(self, k: int) -> List[Entry]:
        """The *k* earliest entries, in order (diagnostics only)."""
        return nsmallest(k, self._entries)

    def stats(self) -> dict:
        return {
            "impl": self.name,
            "enqueues": self.enqueues,
            "dequeues": self.enqueues - len(self._entries),
            "resizes": 0,
            "max_bucket": 0,
        }


class CalendarQueue:
    """Calendar queue with lazily sorted buckets.

    Invariant: every scheduled entry with time below ``_horizon`` (the
    end of the current bucket window) lives in ``_run[_run_idx:]``,
    which is sorted; everything else sits unsorted in its bucket (or in
    ``_overflow`` for infinite times).  Pushes below the horizon insort
    into the run — the simulation clock never reaches the horizon before
    the run drains, so order is preserved; pushes above it are an O(1)
    append.  ``_refill`` advances the window, sorting exactly one
    bucket's due entries at a time; it is also where occupancy resizing,
    width adaptation, and max-bucket tracking happen, so ``push``/``pop``
    stay a handful of bytecodes.
    """

    name = "calendar"

    __slots__ = (
        "_buckets", "_nbuckets", "_mask", "_width", "_inv_width",
        "_cur", "_horizon", "_run", "_run_idx", "_overflow",
        "_dequeued", "_last_first", "_last_deq", "_gap_ewma",
        "_width_check_after", "enqueues", "resizes", "max_bucket",
    )

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._buckets: List[List[Entry]] = [[] for _ in range(_MIN_BUCKETS)]
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        #: Virtual (unmasked) index of the last *activated* window.
        self._cur = -1
        #: End of the activated window: entries below it are in the run.
        self._horizon = 0.0
        self._run: List[Entry] = []
        self._run_idx = 0
        self._overflow: List[Entry] = []
        #: Pops completed before the current run (= enqueues − len − left
        #: in run); lets ``pop`` skip a per-op dequeue counter.
        self._dequeued = 0
        self._last_first = 0.0
        self._last_deq = 0
        self._gap_ewma = 0.0
        self._width_check_after = 0
        self.enqueues = 0
        self.resizes = 0
        self.max_bucket = 0

    def push(self, entry: Entry) -> None:
        self.enqueues += 1
        t = entry[0]
        if t < self._horizon:
            # Below the horizon (zero-delay schedules, same-window
            # events): keep the run sorted.  ``lo=_run_idx`` skips the
            # consumed prefix; nothing already popped can compare
            # greater, because the entry's sequence id is the largest
            # yet issued.
            insort(self._run, entry, self._run_idx)
        elif t != inf:
            # Window k is [k*width, (k+1)*width) in *float* arithmetic —
            # the same products the activation scan compares against.
            # ``int(t * inv_width)`` can land one window off at an edge
            # (e.g. t exactly on the current horizon flooring into the
            # window just served, which would shelve the entry for a
            # whole calendar lap); the guards re-align it.
            idx = int(t * self._inv_width)
            width = self._width
            while t >= (idx + 1) * width:
                idx += 1
            while t < idx * width:
                idx -= 1
            self._buckets[idx & self._mask].append(entry)
        elif self._horizon == inf:
            # The run is already serving infinite-time entries; a new
            # one must be merged by (priority, seq), not parked behind
            # them in the overflow list.
            insort(self._run, entry, self._run_idx)
        else:
            self._overflow.append(entry)

    def pop(self) -> Entry:
        idx = self._run_idx
        run = self._run
        if idx >= len(run):
            self._refill()  # IndexError when empty
            run = self._run
            idx = self._run_idx
        self._run_idx = idx + 1
        return run[idx]

    def peek_time(self) -> float:
        if self._run_idx < len(self._run):
            return self._run[self._run_idx][0]
        try:
            self._refill()
        except IndexError:
            return inf
        return self._run[self._run_idx][0]

    def __len__(self) -> int:
        # ``_dequeued`` accounts fully-consumed runs; the consumed
        # prefix of the current run is ``_run_idx``.
        return self.enqueues - self._dequeued - self._run_idx

    def __iter__(self) -> Iterator[Entry]:
        yield from self._run[self._run_idx:]
        for bucket in self._buckets:
            yield from bucket
        yield from self._overflow

    def smallest(self, k: int) -> List[Entry]:
        """The *k* earliest entries, in order (diagnostics only)."""
        return nsmallest(k, iter(self))

    def stats(self) -> dict:
        return {
            "impl": self.name,
            "enqueues": self.enqueues,
            "dequeues": self.enqueues - len(self),
            "resizes": self.resizes,
            "max_bucket": self.max_bucket,
        }

    # -- internals ------------------------------------------------------
    def _refill(self) -> None:
        """Advance the window until the run holds the next due entries.

        Called with the run exhausted; raises ``IndexError`` when no
        entries remain anywhere.
        """
        self._dequeued += len(self._run)
        self._run = []
        self._run_idx = 0
        remaining = self.enqueues - self._dequeued
        if remaining == 0:
            raise IndexError("pop from an empty schedule")
        nbuckets = self._nbuckets
        target_width = self._gap_ewma * _SPREAD
        if (
            remaining > nbuckets << 1
            or (nbuckets > _MIN_BUCKETS and remaining < nbuckets >> 2)
            or (
                # Width drifted a factor of 4 from the gap-derived
                # target: re-bucket before runs degenerate to single
                # entries (width too small) or giant sorts (too large).
                # Rate-limited to one O(n) rebucket per n pops, so a
                # wandering gap estimate cannot thrash.
                target_width > 0.0
                and self._dequeued >= self._width_check_after
                and not (
                    0.25 * target_width
                    <= self._width
                    <= 4.0 * target_width
                )
            )
        ):
            self._resize(remaining)
            self._width_check_after = self._dequeued + remaining
        while True:
            width = self._width
            buckets = self._buckets
            mask = self._mask
            cur = self._cur
            nbuckets = self._nbuckets
            # A well-sized calendar finds the next event within a couple
            # of slots; cap the lap so a mis-sized width pays the O(n)
            # jump-and-correct below instead of an O(nbuckets) crawl.
            for _ in range(nbuckets if nbuckets < 64 else 64):
                cur += 1
                bucket = buckets[cur & mask]
                if bucket:
                    window_end = (cur + 1) * width
                    bucket.sort()
                    if bucket[-1][0] >= window_end:
                        # Split off the not-yet-due tail (future "years"
                        # sharing this slot); it stays sorted in place,
                        # which Timsort re-sorts in linear time later.
                        lo, hi = 0, len(bucket)
                        while lo < hi:
                            mid = (lo + hi) >> 1
                            if bucket[mid][0] < window_end:
                                lo = mid + 1
                            else:
                                hi = mid
                        if lo == 0:
                            continue  # nothing due this window
                        buckets[cur & mask] = bucket[lo:]
                        del bucket[lo:]
                    else:
                        buckets[cur & mask] = []
                    n_due = len(bucket)
                    if n_due > self.max_bucket:
                        self.max_bucket = n_due
                    if n_due > _MAX_RUN:
                        # Serve a bounded chunk; the sorted remainder
                        # goes back to the slot (Timsort re-verifies it
                        # in linear time) and this window is re-scanned
                        # on the next refill.  The horizon drops to the
                        # first deferred time, so push routing stays
                        # exact: ties route to the bucket, where their
                        # larger sequence ids sort them behind the
                        # deferred entries they must follow.
                        spill = bucket[_MAX_RUN:]
                        del bucket[_MAX_RUN:]
                        spill.extend(buckets[cur & mask])
                        buckets[cur & mask] = spill
                        self._run = bucket
                        self._cur = cur - 1
                        self._horizon = spill[0][0]
                    else:
                        self._run = bucket
                        self._cur = cur
                        self._horizon = window_end
                    # One gap sample per activation: elapsed event time
                    # over pops since the previous activation.
                    pops = self._dequeued - self._last_deq
                    if pops > 0:
                        first = bucket[0][0]
                        gap = (first - self._last_first) / pops
                        if 0.0 < gap < inf:
                            self._gap_ewma += 0.25 * (gap - self._gap_ewma)
                        self._last_first = first
                        self._last_deq = self._dequeued
                    return
            # A lap with nothing due: the next event is far ahead (or
            # only overflow remains) — jump straight to it.
            t_min = inf
            for bucket in buckets:
                for e in bucket:
                    if e[0] < t_min:
                        t_min = e[0]
            if t_min != inf:
                # Already paying O(n): correct a badly drifted width on
                # the spot (the rate limiter only gates in-band drift).
                target_width = self._gap_ewma * _SPREAD
                if target_width > 0.0 and not (
                    0.25 * target_width <= width <= 4.0 * target_width
                ):
                    self._resize(remaining)
                    self._width_check_after = self._dequeued + remaining
                    continue
            if t_min == inf:
                # Only infinite-time entries remain: serve them sorted.
                # The horizon pins to +inf, so any later finite pushes
                # insort ahead of them in the run — still ordered.
                overflow = self._overflow
                overflow.sort()
                self._run = overflow
                self._overflow = []
                self._horizon = inf
                return
            cur = int(t_min * self._inv_width)
            while (cur + 1) * width <= t_min:  # float-edge guards
                cur += 1
            while cur * width > t_min:
                cur -= 1
            self._cur = cur - 1

    def _resize(self, remaining: int) -> None:
        """Re-bucket to match occupancy; adapt width to observed gaps.

        Only ever called between runs (run exhausted), so the horizon
        and run invariants cannot be disturbed: rebucketing never moves
        an entry below the horizon.
        """
        target = 1 << max(remaining.bit_length(), 4)
        if target > _MAX_BUCKETS:
            target = _MAX_BUCKETS
        width = self._gap_ewma * _SPREAD
        if target == self._nbuckets and not (
            0.0 < width < inf and width != self._width
        ):
            return
        self.resizes += 1
        entries = [e for b in self._buckets for e in b]
        if 0.0 < width < inf:
            self._width = width
            self._inv_width = 1.0 / width
        self._nbuckets = target
        self._mask = mask = target - 1
        self._buckets = buckets = [[] for _ in range(target)]
        inv = self._inv_width
        width = self._width
        for e in entries:
            t = e[0]
            idx = int(t * inv)
            while t >= (idx + 1) * width:  # float-edge guards (see push)
                idx += 1
            while t < idx * width:
                idx -= 1
            buckets[idx & mask].append(e)
        horizon = self._horizon
        if horizon == inf:
            return
        # Last "activated" window under the new grid: the first window
        # whose end reaches the old horizon.  Entries at or above the
        # horizon in that window stay in their bucket and are picked up
        # by the next activation, whose end is >= the old horizon — the
        # horizon never moves backward, so the push-side run test stays
        # correct.
        cur = int(horizon * inv)
        while (cur + 1) * width < horizon:
            cur += 1
        while cur * width > horizon:
            cur -= 1
        self._cur = cur - 1


class LadderQueue:
    """Two-level lazy queue for skewed schedules (ladder-queue style).

    Far-future pushes append to an unsorted *top*; when the sorted
    *bottom* run drains, the top is sorted and the next rung (at most
    ``_LADDER_RUNG`` entries) becomes the new bottom.  The sorted
    leftover stays in the top, where Timsort re-sorts it in linear time
    on the next spawn.  Each entry is therefore fully sorted roughly
    once, regardless of how lopsided the schedule is.
    """

    name = "ladder"

    __slots__ = ("_bottom", "_idx", "_top", "enqueues", "resizes",
                 "max_bucket")

    def __init__(self) -> None:
        self._bottom: List[Entry] = []
        self._idx = 0
        self._top: List[Entry] = []
        self.enqueues = 0
        self.resizes = 0
        self.max_bucket = 0

    def push(self, entry: Entry) -> None:
        self.enqueues += 1
        bottom = self._bottom
        if self._idx < len(bottom) and entry < bottom[-1]:
            # Below the bottom's horizon: keep the active run sorted.
            insort(bottom, entry, self._idx)
        else:
            self._top.append(entry)

    def pop(self) -> Entry:
        idx = self._idx
        bottom = self._bottom
        if idx >= len(bottom):
            if not self._top:
                raise IndexError("pop from an empty schedule")
            self._spawn()
            bottom = self._bottom
            idx = 0
        self._idx = idx + 1
        return bottom[idx]

    def peek_time(self) -> float:
        if self._idx < len(self._bottom):
            return self._bottom[self._idx][0]
        if not self._top:
            return inf
        self._spawn()
        return self._bottom[0][0]

    def __len__(self) -> int:
        return len(self._bottom) - self._idx + len(self._top)

    def __iter__(self) -> Iterator[Entry]:
        yield from self._bottom[self._idx:]
        yield from self._top

    def smallest(self, k: int) -> List[Entry]:
        """The *k* earliest entries, in order (diagnostics only)."""
        return nsmallest(k, iter(self))

    def stats(self) -> dict:
        return {
            "impl": self.name,
            "enqueues": self.enqueues,
            "dequeues": self.enqueues - len(self),
            "resizes": self.resizes,
            "max_bucket": self.max_bucket,
        }

    # -- internals ------------------------------------------------------
    def _spawn(self) -> None:
        self.resizes += 1
        top = self._top
        top.sort()
        if len(top) > _LADDER_RUNG:
            self._bottom = top[:_LADDER_RUNG]
            self._top = top[_LADDER_RUNG:]
        else:
            self._bottom = top
            self._top = []
        self._idx = 0
        if len(self._bottom) > self.max_bucket:
            self.max_bucket = len(self._bottom)


class AutoScheduler:
    """Occupancy-adaptive scheduler: heap first, calendar once deep.

    Near-empty schedules (a timeout chain, a handful of processes) are
    fastest on the C-implemented heap; deep schedules (large cells) are
    fastest on the calendar queue.  This facade starts on a
    :class:`HeapScheduler` and *promotes* to a :class:`CalendarQueue`
    the first time the schedule reaches ``promote_at`` pending entries.

    Promotion is a one-way latch — the queue never demotes back to the
    heap when the schedule drains.  That hysteresis means a workload
    oscillating around the threshold re-buckets at most once, and it
    cannot change pop order: both implementations honour the total
    ``(time, priority, sequence)`` order, so rebuilding the pending set
    in either structure yields the identical pop sequence.

    An :class:`~repro.des.core.Environment` caches ``scheduler.push``
    once; :meth:`bind` lets the promotion re-point that cache at the
    calendar's own ``push`` so the post-promotion fast path pays no
    delegation.  ``pop`` stays a one-hop delegate (stable bound method,
    required by the cached dispatch loop).
    """

    name = "auto"

    __slots__ = ("_impl", "_env", "promote_at", "promotions",
                 "_enq_offset", "_deq_offset")

    def __init__(self, promote_at: int = _PROMOTE_AT) -> None:
        self._impl = HeapScheduler()
        self._env = None
        self.promote_at = promote_at
        self.promotions = 0
        self._enq_offset = 0
        self._deq_offset = 0

    def bind(self, env) -> None:
        """Let the owning environment's cached ``push`` be re-pointed
        at promotion time (see :class:`~repro.des.core.Environment`)."""
        self._env = env

    def push(self, entry: Entry) -> None:
        impl = self._impl
        impl.push(entry)
        if self.promotions == 0 and len(impl._entries) >= self.promote_at:
            self._promote()

    def pop(self) -> Entry:
        return self._impl.pop()

    def peek_time(self) -> float:
        return self._impl.peek_time()

    def __len__(self) -> int:
        return len(self._impl)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._impl)

    def smallest(self, k: int) -> List[Entry]:
        """The *k* earliest entries, in order (diagnostics only)."""
        return self._impl.smallest(k)

    def stats(self) -> dict:
        s = self._impl.stats()
        s["impl"] = f"auto({s['impl']})"
        s["enqueues"] += self._enq_offset
        s["dequeues"] += self._deq_offset
        return s

    # -- internals ------------------------------------------------------
    def _promote(self) -> None:
        heap = self._impl
        pending = heap._entries
        # Entry order into the calendar is irrelevant: the total order
        # restores the exact heap pop sequence.
        calendar = CalendarQueue()
        push = calendar.push
        for entry in pending:
            push(entry)
        # Continuity of the counters: the calendar starts having seen
        # only the pending set, so offset its numbers by what the heap
        # already enqueued/served.
        self._enq_offset = heap.enqueues - len(pending)
        self._deq_offset = heap.enqueues - len(pending)
        self._impl = calendar
        self.promotions += 1
        env = self._env
        if env is not None and getattr(env._push, "__self__", None) is self:
            # Re-point the environment's cached enqueue at the calendar
            # directly: post-promotion pushes pay zero delegation.
            env._push = calendar.push


class TieBreakingHeap:
    """Heap of ``(key, seq, item)``: FIFO among equal keys, items never
    compared.  The same tie-breaking discipline the kernel schedulers
    use, packaged for ordered wait queues (``des.resources``)."""

    __slots__ = ("_entries", "_seq")

    def __init__(self) -> None:
        self._entries: List[tuple] = []
        self._seq = count()

    def push(self, key: Any, item: Any) -> None:
        heappush(self._entries, (key, next(self._seq), item))

    def pop(self) -> Any:
        """Remove and return the item with the smallest key (FIFO on
        ties); raises ``IndexError`` when empty."""
        return heappop(self._entries)[2]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarQueue,
    "ladder": LadderQueue,
    "auto": AutoScheduler,
}

#: The kernel's default event queue: heap while shallow, calendar once
#: deep (see :class:`AutoScheduler`).
DEFAULT_QUEUE = "auto"


def scheduler_name_from_env() -> str:
    """Resolve ``REPRO_DES_QUEUE`` (default: :data:`DEFAULT_QUEUE`)."""
    name = os.environ.get("REPRO_DES_QUEUE", "").strip().lower()
    if not name:
        return DEFAULT_QUEUE
    if name not in SCHEDULERS:
        raise ValueError(
            f"REPRO_DES_QUEUE={name!r} is not one of "
            f"{sorted(SCHEDULERS)}"
        )
    return name


def make_scheduler(name: str = None):
    """Instantiate the scheduler *name* (or the environment's choice)."""
    return SCHEDULERS[name or scheduler_name_from_env()]()
