"""Statistics accumulators for observing a running simulation.

Two accumulator flavours cover the metrics the ROCC study needs:

* :class:`Tally` — discrete observations (e.g. per-sample monitoring
  latency): count, mean, variance, min/max, optional retention of the
  raw series.
* :class:`TimeWeighted` — piecewise-constant signals integrated over
  time (e.g. number of busy CPUs, queue length): time-average and
  integral ("busy time").

Both are cheap (O(1) per observation, Welford updates) so they can be
attached to hot paths of the simulator.
"""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["Tally", "TimeWeighted"]


class Tally:
    """Streaming mean/variance of discrete observations (Welford)."""

    __slots__ = ("name", "_n", "_mean", "_m2", "_min", "_max", "_total", "series")

    def __init__(self, name: str = "", keep_series: bool = False):
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0
        #: Raw observations, retained only if ``keep_series`` was set.
        self.series: Optional[List[float]] = [] if keep_series else None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.series is not None:
            self.series.append(value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._total

    @property
    def mean(self) -> float:
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        return self._m2 / (self._n - 1) if self._n > 1 else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n else math.nan

    def merge(self, other: "Tally") -> None:
        """Fold *other*'s observations into this tally (parallel Welford).

        Merging a tally into itself double-counts by design (it behaves
        exactly like observing every value a second time).  Merging a
        non-empty tally that did *not* retain its series into one that
        does is an error: the retained series could no longer mirror the
        observation stream, which would silently corrupt any order
        statistics computed from it.
        """
        if other._n == 0:
            return
        if self.series is not None and other.series is None:
            raise ValueError(
                f"cannot merge {other.name or 'tally'!r} (no retained "
                f"series) into {self.name or 'tally'!r} (keep_series=True): "
                "the series would stop mirroring the observations"
            )
        if self._n == 0:
            self._n = other._n
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
        else:
            n = self._n + other._n
            delta = other._mean - self._mean
            self._m2 += other._m2 + delta * delta * self._n * other._n / n
            self._mean = (self._mean * self._n + other._mean * other._n) / n
            self._n = n
            self._total += other._total
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        if self.series is not None and other.series is not None:
            self.series.extend(other.series)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tally({self.name!r}, n={self._n}, mean={self.mean:.4g}, "
            f"std={self.std:.4g})"
        )


class TimeWeighted:
    """Integrates a piecewise-constant signal over simulation time.

    Call :meth:`update` whenever the signal changes; read
    :meth:`integral` (area under the curve up to *now*) or
    :meth:`time_average`.

    An optional ``on_change(now, value)`` callback fires after every
    level change — observability watchers use it to sample occupancy
    without the accumulator knowing about them.  It defaults to ``None``
    and costs one attribute test per update.
    """

    __slots__ = ("name", "_value", "_last_time", "_start_time", "_area",
                 "_max", "on_change")

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0):
        self.name = name
        self._value = float(initial)
        self._last_time = float(start_time)
        self._start_time = float(start_time)
        self._area = 0.0
        self._max = float(initial)
        self.on_change = None

    @property
    def value(self) -> float:
        """Current level of the signal."""
        return self._value

    def update(self, value: float, now: float) -> None:
        """Set the signal to *value* at time *now*."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time} ({self.name})"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(value)
        if value > self._max:
            self._max = float(value)
        if self.on_change is not None:
            self.on_change(now, self._value)

    def increment(self, delta: float, now: float) -> None:
        """Adjust the signal by *delta* at time *now*."""
        self.update(self._value + delta, now)

    def integral(self, now: float) -> float:
        """Area under the signal from start to *now*."""
        if now < self._last_time:
            raise ValueError("time went backwards")
        return self._area + self._value * (now - self._last_time)

    def time_average(self, now: float) -> float:
        """Time-weighted mean of the signal from start to *now*."""
        span = now - self._start_time
        return self.integral(now) / span if span > 0 else math.nan

    @property
    def maximum(self) -> float:
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeWeighted({self.name!r}, value={self._value:.4g})"
