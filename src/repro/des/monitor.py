"""Statistics accumulators for observing a running simulation.

Two accumulator flavours cover the metrics the ROCC study needs:

* :class:`Tally` — discrete observations (e.g. per-sample monitoring
  latency): count, mean, variance, min/max, optional retention of the
  raw series.
* :class:`TimeWeighted` — piecewise-constant signals integrated over
  time (e.g. number of busy CPUs, queue length): time-average and
  integral ("busy time").

Both are cheap (O(1) per observation, Welford updates) so they can be
attached to hot paths of the simulator.

Long runs add two O(1)-memory companions: :class:`P2Quantile`, the
Jain & Chlamtac P² estimator (CACM 1985) for streaming percentiles, and
:class:`ReservoirSample` (Vitter's Algorithm R) for a bounded uniform
sample of an unbounded observation stream.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import List, Optional

__all__ = ["Tally", "TimeWeighted", "P2Quantile", "ReservoirSample"]


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Five markers track the running min, max, the target quantile ``q``
    and the two intermediate quantiles; marker heights are adjusted with
    a piecewise-parabolic fit as observations arrive.  Memory is O(1)
    and each observation costs a handful of comparisons, so the
    estimator can ride the receipt path of arbitrarily long runs where
    a stored series would grow without bound.

    Accuracy: the estimate converges on the true quantile for smooth
    distributions; in validation against ``np.percentile`` on the
    simulator's latency streams (heavy-tailed lognormal-ish mixtures,
    n ≥ 10⁵) the relative error of p50/p90 stays within a few percent
    and p99 within ~10% — adequate for the trend plots the paper
    reports, not for unit-test-tight assertions (use a stored series
    below the cap for those).
    """

    __slots__ = ("q", "_n", "_heights", "_pos", "_desired", "_incr")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must lie in (0, 1): {q}")
        self.q = q
        self._n = 0
        self._heights: List[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._incr = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        """Fold one observation into the estimate."""
        n = self._n
        self._n = n + 1
        heights = self._heights
        if n < 5:
            # Initialization: collect the first five observations.
            heights.append(value)
            if n == 4:
                heights.sort()
            return
        pos = self._pos
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        desired = self._desired
        incr = self._incr
        for i in range(5):
            desired[i] += incr[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                d = 1.0 if d >= 0.0 else -1.0
                hi, hl, hr = heights[i], heights[i - 1], heights[i + 1]
                pi, pl, pr = pos[i], pos[i - 1], pos[i + 1]
                # Piecewise-parabolic (P²) prediction.
                h = hi + d / (pr - pl) * (
                    (pi - pl + d) * (hr - hi) / (pr - pi)
                    + (pr - pi - d) * (hi - hl) / (pi - pl)
                )
                if not hl < h < hr:
                    # Parabola left the bracket: fall back to linear.
                    h = hi + d * (
                        (hr - hi) / (pr - pi) if d > 0 else (hl - hi) / (pl - pi)
                    )
                heights[i] = h
                pos[i] += d

    @property
    def count(self) -> int:
        return self._n

    @property
    def value(self) -> float:
        """Current estimate of the ``q``-quantile (NaN when empty)."""
        n = self._n
        if n == 0:
            return math.nan
        heights = self._heights
        if n <= 5:
            # Exact while everything observed still fits in the markers.
            s = sorted(heights)
            # Linear interpolation matching np.percentile's default.
            rank = self.q * (n - 1)
            lo = int(rank)
            hi = min(lo + 1, n - 1)
            frac = rank - lo
            return s[lo] * (1.0 - frac) + s[hi] * frac
        return heights[2]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"P2Quantile(q={self.q}, n={self._n}, value={self.value:.4g})"


class ReservoirSample:
    """Uniform fixed-size sample of an unbounded stream (Algorithm R).

    Every observation ever seen has probability ``size / n`` of being in
    the reservoir, so order statistics computed from it are unbiased
    estimates of the stream's.  Seeded deterministically (from the name,
    by default) so runs remain reproducible.
    """

    __slots__ = ("size", "_items", "_n", "_rng")

    def __init__(self, size: int, seed: Optional[int] = None, name: str = ""):
        if size < 1:
            raise ValueError("reservoir size must be >= 1")
        self.size = int(size)
        self._items: List[float] = []
        self._n = 0
        if seed is None:
            seed = zlib.crc32(name.encode("utf-8"))
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Offer one observation to the reservoir."""
        n = self._n
        self._n = n + 1
        items = self._items
        if len(items) < self.size:
            items.append(value)
        else:
            j = self._rng.randrange(n + 1)
            if j < self.size:
                items[j] = value

    @property
    def count(self) -> int:
        """Observations offered (not the reservoir occupancy)."""
        return self._n

    @property
    def items(self) -> List[float]:
        """The current sample (at most ``size`` values, unordered)."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReservoirSample(size={self.size}, n={self._n})"


class Tally:
    """Streaming mean/variance of discrete observations (Welford).

    ``keep_series`` retains the raw observations; ``series_cap`` bounds
    that retention: past the cap the series degrades gracefully into a
    uniform :class:`ReservoirSample`-style subsample (Algorithm R) of
    the whole stream instead of growing without bound, so long runs
    stay memory-flat while order statistics computed from the series
    remain unbiased.  The replacement RNG is seeded from the tally name,
    keeping runs reproducible.
    """

    __slots__ = ("name", "_n", "_mean", "_m2", "_min", "_max", "_total",
                 "series", "_series_cap", "_series_rng")

    def __init__(
        self,
        name: str = "",
        keep_series: bool = False,
        series_cap: Optional[int] = None,
    ):
        if series_cap is not None and series_cap < 1:
            raise ValueError("series_cap must be >= 1")
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0
        #: Raw observations, retained only if ``keep_series`` was set.
        self.series: Optional[List[float]] = [] if keep_series else None
        self._series_cap = series_cap
        self._series_rng: Optional[random.Random] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        series = self.series
        if series is not None:
            cap = self._series_cap
            if cap is None or len(series) < cap:
                series.append(value)
            else:
                rng = self._series_rng
                if rng is None:
                    rng = random.Random(zlib.crc32(self.name.encode("utf-8")))
                    self._series_rng = rng
                j = rng.randrange(self._n)
                if j < cap:
                    series[j] = value

    @property
    def series_subsampled(self) -> bool:
        """Whether the retained series has degraded to a subsample."""
        return (
            self.series is not None
            and self._series_cap is not None
            and self._n > self._series_cap
        )

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._total

    @property
    def mean(self) -> float:
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        return self._m2 / (self._n - 1) if self._n > 1 else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n else math.nan

    def merge(self, other: "Tally") -> None:
        """Fold *other*'s observations into this tally (parallel Welford).

        Merging a tally into itself double-counts by design (it behaves
        exactly like observing every value a second time).  Merging a
        non-empty tally that did *not* retain its series into one that
        does is an error: the retained series could no longer mirror the
        observation stream, which would silently corrupt any order
        statistics computed from it.
        """
        if other._n == 0:
            return
        if self.series is not None and other.series is None:
            raise ValueError(
                f"cannot merge {other.name or 'tally'!r} (no retained "
                f"series) into {self.name or 'tally'!r} (keep_series=True): "
                "the series would stop mirroring the observations"
            )
        if self.series is not None and (
            self.series_subsampled
            or other.series_subsampled
            or (
                self._series_cap is not None
                and self._n + other._n > self._series_cap
            )
        ):
            raise ValueError(
                f"cannot merge into {self.name or 'tally'!r}: a capped "
                "series that has started subsampling no longer mirrors "
                "the observation stream, so the merged series would be "
                "biased (raise series_cap or merge before overflow)"
            )
        if self._n == 0:
            self._n = other._n
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
        else:
            n = self._n + other._n
            delta = other._mean - self._mean
            self._m2 += other._m2 + delta * delta * self._n * other._n / n
            self._mean = (self._mean * self._n + other._mean * other._n) / n
            self._n = n
            self._total += other._total
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        if self.series is not None and other.series is not None:
            self.series.extend(other.series)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tally({self.name!r}, n={self._n}, mean={self.mean:.4g}, "
            f"std={self.std:.4g})"
        )


class TimeWeighted:
    """Integrates a piecewise-constant signal over simulation time.

    Call :meth:`update` whenever the signal changes; read
    :meth:`integral` (area under the curve up to *now*) or
    :meth:`time_average`.

    An optional ``on_change(now, value)`` callback fires after every
    level change — observability watchers use it to sample occupancy
    without the accumulator knowing about them.  It defaults to ``None``
    and costs one attribute test per update.
    """

    __slots__ = ("name", "_value", "_last_time", "_start_time", "_area",
                 "_max", "on_change")

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0):
        self.name = name
        self._value = float(initial)
        self._last_time = float(start_time)
        self._start_time = float(start_time)
        self._area = 0.0
        self._max = float(initial)
        self.on_change = None

    @property
    def value(self) -> float:
        """Current level of the signal."""
        return self._value

    def update(self, value: float, now: float) -> None:
        """Set the signal to *value* at time *now*."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time} ({self.name})"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(value)
        if value > self._max:
            self._max = float(value)
        if self.on_change is not None:
            self.on_change(now, self._value)

    def increment(self, delta: float, now: float) -> None:
        """Adjust the signal by *delta* at time *now*.

        Hot-path variant of :meth:`update`: the body is inlined and the
        monotonic-time guard dropped — kernel callers pass ``env.now``,
        which cannot go backwards.
        """
        value = self._value + delta
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        if value > self._max:
            self._max = value
        if self.on_change is not None:
            self.on_change(now, value)

    def integral(self, now: float) -> float:
        """Area under the signal from start to *now*."""
        if now < self._last_time:
            raise ValueError("time went backwards")
        return self._area + self._value * (now - self._last_time)

    def time_average(self, now: float) -> float:
        """Time-weighted mean of the signal from start to *now*."""
        span = now - self._start_time
        return self.integral(now) / span if span > 0 else math.nan

    @property
    def maximum(self) -> float:
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeWeighted({self.name!r}, value={self._value:.4g})"
