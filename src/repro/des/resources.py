"""Shared-resource primitives: FIFO, priority, and preemptive resources.

A :class:`Resource` models a server (or pool of *capacity* servers) that
processes acquire with ``request()`` and release with ``release()`` —
typically via the request's context-manager protocol::

    with resource.request() as req:
        yield req              # wait for a server
        yield env.timeout(d)   # occupy it

:class:`PriorityResource` serves waiting requests in priority order
(lower number = more important).  :class:`PreemptiveResource` may
additionally evict a lower-priority user, interrupting its process with
a :class:`Preempted` cause.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from .events import Event, Process
from .queues import TieBreakingHeap

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = [
    "Preempted",
    "Request",
    "PriorityRequest",
    "Release",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
]


class Preempted:
    """Cause object delivered with the :class:`~.exceptions.Interrupt`
    raised in a process evicted from a :class:`PreemptiveResource`."""

    __slots__ = ("by", "usage_since", "resource")

    def __init__(self, by: Optional[Process], usage_since: float, resource: "Resource"):
        #: The process whose request triggered the preemption.
        self.by = by
        #: Simulation time at which the evicted request acquired the resource.
        self.usage_since = usage_since
        #: The resource the preemption happened on.
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Preempted(by={self.by!r}, usage_since={self.usage_since})"


class Request(Event):
    """Request event for :class:`Resource`; fires when a server is granted."""

    __slots__ = ("resource", "proc", "usage_since")

    def __init__(self, resource: "Resource"):
        env = resource.env
        super().__init__(env)
        self.resource = resource
        self.proc: Optional[Process] = env._active_proc
        #: Time the request was granted (set when it succeeds).
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc_val: Any, exc_tb: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the resource if held, or withdraw a pending request."""
        if not self.triggered:
            self.resource._remove_from_queue(self)
        elif self in self.resource.users:
            self.resource.release(self)


class PriorityRequest(Request):
    """Request with a priority and optional preemption flag."""

    __slots__ = ("priority", "preempt", "time", "key")

    def __init__(self, resource: "Resource", priority: int = 0, preempt: bool = False):
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        # Lower key sorts first: priority, then FIFO within priority,
        # preempting requests ahead of non-preempting ones at equal time.
        self.key = (priority, self.time, not preempt)
        super().__init__(resource)


class Release(Event):
    """Event representing a completed release (fires immediately)."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue."""

    request_cls = Request

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = int(capacity)
        #: Requests currently holding a server.
        self.users: List[Request] = []
        #: Pending requests (FIFO for the base class).
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        """Total number of servers."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of servers currently in use."""
        return len(self.users)

    def request(self, **kwargs: Any) -> Request:
        """Create (and enqueue) a request for one server."""
        return self.request_cls(self, **kwargs)

    def release(self, request: Request) -> Release:
        """Release the server held by *request* and serve the next waiter."""
        return Release(self, request)

    # -- internals ------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed()

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise RuntimeError(
                f"cannot release {release.request!r}: not a current user"
            ) from None
        self._trigger_next()

    def _trigger_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self._pop_next())

    def _pop_next(self) -> Request:
        return self.queue.pop(0)

    def _remove_from_queue(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by request priority."""

    request_cls = PriorityRequest

    def __init__(self, env: "Environment", capacity: int = 1):
        super().__init__(env, capacity)
        # Shared kernel tie-breaking discipline: FIFO among equal keys,
        # requests themselves never compared.
        self._heap = TieBreakingHeap()

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self._enqueue(request)

    def _enqueue(self, request: PriorityRequest) -> None:
        self._heap.push(request.key, request)
        self.queue.append(request)  # kept for inspection/len()

    def _pop_next(self) -> Request:
        while True:
            request = self._heap.pop()
            if request in self.queue:
                self.queue.remove(request)
                return request

    def _remove_from_queue(self, request: Request) -> None:
        # Lazy deletion: drop from the mirror list; the heap entry is
        # skipped in _pop_next.
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _trigger_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self._pop_next())


class PreemptiveResource(PriorityResource):
    """Priority resource where urgent requests evict less-urgent users.

    A request with ``preempt=True`` that finds all servers busy compares
    itself against the *least important* current user; if strictly more
    important (smaller priority number) it evicts that user: the victim's
    request is released and its process is interrupted with a
    :class:`Preempted` cause.
    """

    def _do_request(self, request: PriorityRequest) -> None:  # type: ignore[override]
        if len(self.users) >= self._capacity and request.preempt:
            # Find the least-important user (largest key).
            victim = max(self.users, key=lambda u: u.key)  # type: ignore[attr-defined]
            if victim.key > request.key:  # type: ignore[attr-defined]
                self.users.remove(victim)
                if victim.proc is not None and victim.proc.is_alive:
                    usage_since = (
                        victim.usage_since
                        if victim.usage_since is not None
                        else self.env.now
                    )
                    victim.proc.interrupt(
                        Preempted(
                            by=request.proc,
                            usage_since=usage_since,
                            resource=self,
                        )
                    )
        super()._do_request(request)
