"""Buffered object exchange between processes: :class:`Store` and friends.

A :class:`Store` holds up to ``capacity`` items.  ``put(item)`` returns an
event that fires once the item is accepted (immediately if there is
room, otherwise when space frees up — this is how the ROCC model's
finite Unix pipe blocks a writing application process).  ``get()``
returns an event that fires with the next item.

:class:`FilterStore` lets getters select items with a predicate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["StorePut", "StoreGet", "FilterStoreGet", "Store", "FilterStore"]


class StorePut(Event):
    """Event that fires once the store has accepted ``item``."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.store = store
        self.item = item
        store._put_waiters.append(self)
        store._trigger()

    def __enter__(self) -> "StorePut":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the put if it has not been accepted yet."""
        if not self.triggered:
            try:
                self.store._put_waiters.remove(self)
            except ValueError:  # pragma: no cover
                pass


class StoreGet(Event):
    """Event that fires with the retrieved item as its value."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self.store = store
        store._get_waiters.append(self)
        store._trigger()

    def __enter__(self) -> "StoreGet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the get if it has not been satisfied yet."""
        if not self.triggered:
            try:
                self.store._get_waiters.remove(self)
            except ValueError:  # pragma: no cover
                pass


class FilterStoreGet(StoreGet):
    """Get event that only accepts items matching ``filter``."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class Store:
    """FIFO buffer of Python objects with finite or infinite capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        """Maximum number of items the store holds."""
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    @property
    def put_queue(self) -> List[StorePut]:
        """Pending (blocked) put events."""
        return self._put_waiters

    @property
    def get_queue(self) -> List[StoreGet]:
        """Pending get events."""
        return self._get_waiters

    def put(self, item: Any) -> StorePut:
        """Offer *item* to the store; the returned event fires on accept.

        A put that can proceed immediately returns an *already-processed*
        event: a yielding process continues synchronously instead of
        taking a trip through the kernel schedule, and a parked getter
        (if any) is handed the item directly.  Semantics are unchanged —
        acceptance still happens at the current simulation time — but a
        producer looping on nothing but non-blocking puts never yields
        control, so interleave real work (as every model here does).
        """
        if len(self.items) < self._capacity and not self._put_waiters:
            getters = self._get_waiters
            if getters:
                # Hand straight to the oldest waiting getter (FIFO): the
                # item would be popped again at this same instant anyway.
                getters.pop(0).succeed(item)
            else:
                self.items.append(item)
            ev = StorePut.__new__(StorePut)
            ev.env = self.env
            ev.callbacks = None  # already processed
            ev._value = None
            ev._ok = True
            ev._defused = False
            ev.store = self
            ev.item = item
            return ev
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request the next item; the event's value is the item.

        Like :meth:`put`, a get that finds an item returns an
        already-processed event carrying it.
        """
        items = self.items
        if items and not self._get_waiters:
            ev = StoreGet.__new__(StoreGet)
            ev.env = self.env
            ev.callbacks = None  # already processed
            ev._value = items.pop(0)
            ev._ok = True
            ev._defused = False
            ev.store = self
            if self._put_waiters:
                self._trigger()  # space freed: admit a blocked put
            return ev
        return StoreGet(self)

    # -- internals ------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        """Match pending puts and gets until nothing more can proceed."""
        progressed = True
        while progressed:
            progressed = False
            i = 0
            while i < len(self._put_waiters):
                event = self._put_waiters[i]
                if self._do_put(event):
                    self._put_waiters.pop(i)
                    progressed = True
                else:
                    i += 1
            i = 0
            while i < len(self._get_waiters):
                event = self._get_waiters[i]
                if self._do_get(event):
                    self._get_waiters.pop(i)
                    progressed = True
                else:
                    i += 1


class FilterStore(Store):
    """Store whose getters may select items with an arbitrary predicate.

    Getters are still served in FIFO order, but a getter whose filter
    matches no current item does not block getters behind it.

    Filtered matching cannot use the base class's direct-handoff fast
    paths (a waiting getter may reject the incoming item), so puts and
    gets always go through real events here.
    """

    def put(self, item: Any) -> StorePut:
        """Offer *item*; waiting getters are matched through filters."""
        return StorePut(self, item)

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:
        """Request the first item satisfying *filter*."""
        return FilterStoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        filt = getattr(event, "filter", None) or (lambda item: True)
        for i, item in enumerate(self.items):
            if filt(item):
                self.items.pop(i)
                event.succeed(item)
                return True
        return False
