"""repro — reproduction of *Modeling, Evaluation, and Testing of
Paradyn Instrumentation System* (Waheed, Rover, Hollingsworth; SC 1996).

Package layout
--------------
``repro.des``
    From-scratch discrete-event simulation kernel (the substrate).
``repro.variates``
    Distributions, reproducible streams, MLE fitting, goodness-of-fit.
``repro.workload``
    AIX-like synthetic tracing, NAS benchmark profiles, the Table-1/2
    characterization pipeline, process state machines.
``repro.rocc``
    The Resource OCCupancy model of the Paradyn instrumentation system:
    NOW / SMP / MPP architectures, CF / BF policies, direct / tree
    forwarding — the paper's primary contribution.
``repro.faults``
    Declarative fault injection (daemon crashes, message loss and
    corruption, pipe stalls, CPU slowdowns) and recovery policies for
    robustness experiments on the ROCC model.
``repro.analytical``
    Section-3 operational analysis, equations (1)–(16), plus exact MVA.
``repro.expdesign``
    2^k·r factorial designs, allocation of variation, PCA, CIs.
``repro.experiments``
    One registered runner per paper table/figure; ``python -m
    repro.experiments <id>`` regenerates any artifact.

Quick start::

    from repro.rocc import SimulationConfig, simulate

    cf = simulate(SimulationConfig(nodes=8, batch_size=1))
    bf = simulate(SimulationConfig(nodes=8, batch_size=32))
    print(1 - bf.pd_cpu_seconds_per_node / cf.pd_cpu_seconds_per_node)
"""

__version__ = "1.0.0"

from . import analytical, des, expdesign, faults, rocc, variates, workload  # noqa: F401

__all__ = [
    "des",
    "variates",
    "workload",
    "rocc",
    "faults",
    "analytical",
    "expdesign",
    "__version__",
]
