"""Invariant, operational-law, and differential verification.

The harness that keeps the simulator honest — see ``python -m
repro.verify --help`` for the command-line battery, or use the pieces
programmatically:

>>> from repro.verify import audit_results
>>> violations = audit_results(results, config)

Three pillars:

* :mod:`repro.verify.invariants` — structural audits every
  :class:`~repro.rocc.metrics.SimulationResults` must pass;
* :mod:`repro.verify.oplaws` — utilization law / Little's law /
  analytic-model cross-checks with tolerance bands;
* :mod:`repro.verify.differential` — flipped-knob re-execution
  (fast path, watchdog, worker pool, cell cache, flush no-op) with
  field-by-field result diffs.

:mod:`repro.verify.properties` adds Hypothesis-generated random
configurations over all of the above.
"""

from .differential import (
    check_bf_flush_noop,
    check_cache,
    check_event_queue,
    check_fastpath,
    check_open_workload,
    check_parallel_kernel,
    check_resilient_engine,
    check_watchdog,
    check_workers,
    diff_results,
    differential_checks,
)
from .invariants import audit_results
from .oplaws import (
    applicable,
    check_against_analytic,
    check_littles_law,
    check_operational_laws,
    check_utilization_law,
)
from .report import VerificationReport, Violation

__all__ = [
    "Violation",
    "VerificationReport",
    "audit_results",
    "applicable",
    "check_operational_laws",
    "check_utilization_law",
    "check_littles_law",
    "check_against_analytic",
    "diff_results",
    "differential_checks",
    "check_fastpath",
    "check_watchdog",
    "check_workers",
    "check_cache",
    "check_bf_flush_noop",
    "check_open_workload",
    "check_resilient_engine",
    "check_event_queue",
    "check_parallel_kernel",
]
