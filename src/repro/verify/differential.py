"""Differential verification: one config, two execution paths, no diff.

The simulator carries several knobs that change *how* a run executes
but promise not to change *what* it computes:

* ``REPRO_DES_FASTPATH`` — the DES kernel's hold/pooling/inline fast
  path vs the generic event loop;
* the kernel watchdog — ``max_events`` forces the ``step()`` loop
  instead of the inlined ``_run_inner``;
* engine workers — process-pool scheduling vs the serial loop;
* the cell cache — a result loaded from disk vs freshly computed;
* a BF flush timeout under batch size 1 — the flush loop can never see
  a non-empty batch, so enabling it must be a no-op;
* the resilient engine — armed retries and a generous per-cell
  deadline around a run that needs neither must leave it untouched;
* ``REPRO_DES_QUEUE`` — the calendar/ladder event schedulers vs the
  reference binary heap (the schedule key is a total order, so every
  correct priority queue must pop the identical sequence);
* ``REPRO_DES_PARALLEL`` / ``lp_workers`` — the partitioned parallel
  kernel vs the sequential kernel (bit-identical up to a handful of
  re-associated float sums), including its sequential fallback on
  ineligible configurations.

Each checker here executes both sides of one such promise and diffs the
:class:`SimulationResults` field by field (NaN == NaN); any difference
is a :class:`~repro.verify.report.Violation` naming the field.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import fields
from math import isnan
from typing import Iterable, List, Optional

from ..experiments.engine import CellCache, ExperimentEngine
from ..rocc.config import (
    Architecture,
    ForwardingTopology,
    NetworkMode,
    SimulationConfig,
)
from ..rocc.metrics import SimulationResults
from ..rocc.system import simulate
from .report import Violation

__all__ = [
    "diff_results",
    "check_fastpath",
    "check_watchdog",
    "check_workers",
    "check_cache",
    "check_bf_flush_noop",
    "check_resilient_engine",
    "check_event_queue",
    "check_parallel_kernel",
    "check_open_workload",
    "check_planner",
    "differential_checks",
]


def diff_results(
    a: SimulationResults,
    b: SimulationResults,
    ignore: Iterable[str] = (),
) -> List[str]:
    """Field-by-field differences between two results (NaN == NaN)."""
    skip = frozenset(ignore)
    diffs: List[str] = []
    for f in fields(a):
        if f.name in skip:
            continue
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, float) and isinstance(y, float):
            if x == y or (isnan(x) and isnan(y)):
                continue
        elif x == y:
            continue
        diffs.append(f"{f.name}: {x!r} != {y!r}")
    return diffs


def _subject(config: SimulationConfig) -> str:
    return (
        f"{config.architecture.value} n={config.nodes} "
        f"b={config.batch_size} seed={config.seed}"
    )


def _diff_violation(invariant: str, config: SimulationConfig,
                    diffs: List[str], what: str) -> Violation:
    shown = "; ".join(diffs[:4])
    more = f" (+{len(diffs) - 4} more fields)" if len(diffs) > 4 else ""
    return Violation(
        invariant=invariant,
        detail=f"{what} changed the results: {shown}{more}",
        subject=_subject(config),
    )


def _simulate_with_env(config: SimulationConfig, var: str,
                       value: str) -> SimulationResults:
    """Run one simulation with an environment knob pinned, then restore."""
    old = os.environ.get(var)
    os.environ[var] = value
    try:
        return simulate(config)
    finally:
        if old is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = old


def check_fastpath(config: SimulationConfig) -> List[Violation]:
    """Fast-path kernel vs the generic kernel: bit-identical results."""
    fast = _simulate_with_env(config, "REPRO_DES_FASTPATH", "1")
    generic = _simulate_with_env(config, "REPRO_DES_FASTPATH", "0")
    diffs = diff_results(fast, generic)
    if diffs:
        return [_diff_violation(
            "differential.fastpath", config, diffs,
            "REPRO_DES_FASTPATH=0 vs 1",
        )]
    return []


def check_watchdog(config: SimulationConfig) -> List[Violation]:
    """Watchdog-instrumented ``step()`` loop vs the inlined run loop.

    A ``max_events`` budget far above what the run needs must not change
    anything — only the dispatch loop differs.
    """
    plain = simulate(config)
    watched = simulate(config.with_(max_events=1_000_000_000))
    diffs = diff_results(plain, watched)
    if diffs:
        return [_diff_violation(
            "differential.watchdog", config, diffs,
            "enabling the event-count watchdog",
        )]
    return []


def check_workers(config: SimulationConfig,
                  repetitions: int = 2) -> List[Violation]:
    """Serial engine vs a two-worker process pool: identical cells."""
    reps = [
        config.with_(replication=config.replication + i)
        for i in range(repetitions)
    ]
    no_cache = CellCache(enabled=False)
    with ExperimentEngine(workers=1, cache=no_cache) as serial:
        expected = serial.run_cells(reps)
    with ExperimentEngine(workers=2, cache=no_cache) as pool:
        actual = pool.run_cells(reps)
    out: List[Violation] = []
    for i, (e, a) in enumerate(zip(expected, actual)):
        diffs = diff_results(e, a)
        if diffs:
            out.append(_diff_violation(
                "differential.workers", reps[i], diffs,
                f"running replication {i} on a worker pool",
            ))
    return out


def check_cache(config: SimulationConfig,
                cache_root: Optional[str] = None) -> List[Violation]:
    """Cold compute-and-store vs warm load: the pickle round-trip is
    exact."""
    created = cache_root is None
    root = cache_root or tempfile.mkdtemp(prefix="repro-verify-cache-")
    try:
        cache = CellCache(root=root, enabled=True)
        with ExperimentEngine(workers=1, cache=cache) as engine:
            (cold,) = engine.run_cells([config])
            (warm,) = engine.run_cells([config])
        diffs = diff_results(cold, warm)
        if diffs:
            return [_diff_violation(
                "differential.cache", config, diffs,
                "reloading the run from the cell cache",
            )]
        return []
    finally:
        if created:
            import shutil

            shutil.rmtree(root, ignore_errors=True)


def check_bf_flush_noop(config: SimulationConfig) -> List[Violation]:
    """Under CF (batch size 1) a flush timeout must change nothing.

    The collect loop forwards each sample in the same step that batches
    it, so the flush loop never observes a partial batch; its only
    footprint is extra timer events, which must not perturb the model.
    """
    cf = simulate(config.with_(batch_size=1, batch_flush_timeout=None))
    bf1 = simulate(config.with_(batch_size=1, batch_flush_timeout=50_000.0))
    diffs = diff_results(cf, bf1)
    if diffs:
        return [_diff_violation(
            "differential.bf_flush_noop", config, diffs,
            "a flush timeout under batch size 1",
        )]
    return []


def check_resilient_engine(
    config: SimulationConfig, repetitions: int = 2
) -> List[Violation]:
    """Plain engine vs :class:`ResilientEngine` with the machinery armed.

    Retries, the per-cell deadline (set far above what the run needs),
    and the attempt accounting wrap *around* the simulation; a healthy
    run must come out bit-identical.  Together with ``check_watchdog``
    this licenses the resilience layer's core assumption: re-executing a
    cell under a deadline yields the same results as the first try.
    """
    from ..experiments.resilience import ResilientEngine, RetryPolicy

    reps = [
        config.with_(replication=config.replication + i)
        for i in range(repetitions)
    ]
    no_cache = CellCache(enabled=False)
    with ExperimentEngine(workers=1, cache=no_cache) as plain:
        expected = plain.run_cells(reps)
    with ResilientEngine(
        workers=1,
        cache=no_cache,
        retry=RetryPolicy(max_attempts=3),
        cell_timeout=3600.0,
    ) as resilient:
        actual = resilient.run_cells(reps)
    out: List[Violation] = []
    for i, (e, a) in enumerate(zip(expected, actual)):
        diffs = diff_results(e, a)
        if diffs:
            out.append(_diff_violation(
                "differential.resilience", reps[i], diffs,
                f"running replication {i} on the resilient engine",
            ))
    if resilient.stats.retries or resilient.stats.cell_timeouts:
        out.append(Violation(
            invariant="differential.resilience",
            detail=(
                "a healthy run consumed resilience machinery: "
                f"{resilient.stats.retries} retries, "
                f"{resilient.stats.cell_timeouts} deadline breaches"
            ),
            subject=_subject(config),
        ))
    return out


def check_event_queue(config: SimulationConfig) -> List[Violation]:
    """Pluggable event schedulers are interchangeable.

    The kernel's schedule entry is ``(time, priority, seq, event)`` with
    a monotone unique ``seq``, so the comparison key is a *total* order
    and any correct priority queue must pop entries in exactly the same
    sequence.  This check runs the same configuration under
    ``REPRO_DES_QUEUE=heap`` (the reference binary heap), ``calendar``,
    ``ladder``, and ``auto`` (heap promoting to calendar mid-run) and
    requires bit-identical results.

    Beyond the plain run it repeats the calendar-vs-heap comparison on
    the two variants whose dispatch is most order-sensitive: the
    watchdog ``step()`` loop and a fault-injected run (daemon crash plus
    recovery), where a single transposed pop would skew the whole
    recovery timeline.
    """
    from ..faults.recovery import RecoveryPolicy
    from ..faults.spec import DaemonCrash, FaultPlan

    dur = config.duration
    fault_cfg = config.with_(
        faults=FaultPlan((
            DaemonCrash(node=0, at=dur * 0.4, restart_after=dur * 0.1),
        )),
        recovery=RecoveryPolicy(max_retries=1),
    )
    out: List[Violation] = []

    # Plain run: all three implementations against the heap reference.
    ref = _simulate_with_env(config, "REPRO_DES_QUEUE", "heap")
    for name in ("calendar", "ladder", "auto"):
        alt = _simulate_with_env(config, "REPRO_DES_QUEUE", name)
        diffs = diff_results(ref, alt)
        if diffs:
            out.append(_diff_violation(
                "differential.event_queue", config, diffs,
                f"REPRO_DES_QUEUE={name} vs heap",
            ))

    # Watchdog and fault-injection variants: default impl vs heap.
    for what, cfg in (
        ("watchdog", config.with_(max_events=1_000_000_000)),
        ("fault injection", fault_cfg),
    ):
        ref = _simulate_with_env(cfg, "REPRO_DES_QUEUE", "heap")
        alt = _simulate_with_env(cfg, "REPRO_DES_QUEUE", "calendar")
        diffs = diff_results(ref, alt)
        if diffs:
            out.append(_diff_violation(
                "differential.event_queue", cfg, diffs,
                f"REPRO_DES_QUEUE=calendar vs heap under {what}",
            ))
    return out


#: Result fields the parallel kernel may differ on in the last ulp:
#: their sequential values accumulate floats across all nodes in one
#: global completion-time order, while a partitioned run adds per-LP
#: partial sums — float addition does not associate.  Everything else
#: must be bit-identical (per-node busy times are keyed by node, and
#: latency tallies live wholly on the main LP).
_PARALLEL_ULP_FIELDS = (
    "network_utilization",
    "pd_network_utilization",
    "pipe_blocked_time",
)

_PARALLEL_REL_TOL = 1e-9


def check_parallel_kernel(config: SimulationConfig) -> List[Violation]:
    """The partitioned parallel kernel reproduces the sequential kernel.

    Eligible configurations (contention-free network, direct
    forwarding, no global couplers) run under K ∈ {2, 4} LP workers and
    must match the sequential results bit-for-bit, except for the few
    re-associated float sums in :data:`_PARALLEL_ULP_FIELDS`, which get
    a 1e-9 relative tolerance.  Ineligible configurations (tree
    forwarding, fault injection) must fall back to the sequential
    kernel and therefore match *exactly*.
    """
    from ..faults.spec import DaemonCrash, FaultPlan
    from ..rocc.partition import parallel_ineligibility

    out: List[Violation] = []

    def compare(cfg: SimulationConfig, k: int, what: str,
                exact: bool) -> None:
        seq = simulate(cfg)
        par = simulate(cfg, lp_workers=k)
        ignore = ("observability",) if exact else (
            ("observability",) + _PARALLEL_ULP_FIELDS
        )
        diffs = diff_results(seq, par, ignore=ignore)
        if not exact:
            for f in _PARALLEL_ULP_FIELDS:
                a, b = getattr(seq, f), getattr(par, f)
                if a == b:
                    continue
                scale = max(abs(a), abs(b))
                if scale == 0.0 or abs(a - b) / scale > _PARALLEL_REL_TOL:
                    diffs.append(f"{f}: {a!r} !~ {b!r} (rel tol 1e-9)")
        if diffs:
            out.append(_diff_violation(
                "differential.parallel_kernel", cfg, diffs, what,
            ))

    if parallel_ineligibility(config) is None:
        for k in (2, 4):
            compare(config, k, f"running on {k} LP workers", exact=False)
    else:
        compare(config, 2, "the sequential fallback", exact=True)
        # If only the network model blocks partitioning (the shared-
        # Ethernet NOW default), flip to contention-free so every
        # battery run still exercises the real parallel path.
        cf = config.with_(network_mode=NetworkMode.CONTENTION_FREE)
        if parallel_ineligibility(cf) is None:
            for k in (2, 4):
                compare(cf, k,
                        f"running the CF variant on {k} LP workers",
                        exact=False)

    # Ineligible variants must take the sequential fallback untouched.
    dur = config.duration
    faulted = config.with_(
        faults=FaultPlan((
            DaemonCrash(node=0, at=dur * 0.5, restart_after=dur * 0.1),
        )),
    )
    compare(faulted, 4, "the fault-injection fallback", exact=True)
    if config.nodes > 1 and config.architecture is Architecture.MPP:
        treed = config.with_(forwarding=ForwardingTopology.TREE)
        compare(treed, 4, "the tree-forwarding fallback", exact=True)
    return out


def check_open_workload(config: SimulationConfig) -> List[Violation]:
    """Open-workload traffic is deterministic and no-op at zero rate.

    Three promises of :mod:`repro.workload.generators`:

    1. a ``stationary:rate=0`` spec emits no events, so the run must
       match the traffic-free run on every field except the config
       summary (which deliberately names the workload);
    2. the same open-workload config simulated twice is bit-identical
       (the generator rebuilds its stream per run from the cell's
       seed sequence);
    3. an open-workload cell is bit-identical across the serial
       engine, a two-worker pool, and a warm cache reload — i.e. the
       cell fingerprint covers the traffic spec and the result
       survives the pickle round-trip.
    """
    from ..workload.generators import TrafficSpec

    out: List[Violation] = []

    # 1. zero-rate open workload == closed-only run.
    closed = simulate(config.with_(traffic=None))
    zero = simulate(config.with_(traffic=TrafficSpec.parse("stationary:rate=0")))
    diffs = diff_results(closed, zero, ignore=("config_summary",))
    if diffs:
        out.append(_diff_violation(
            "differential.open_workload", config, diffs,
            "a zero-rate open workload",
        ))

    open_cfg = config.with_(
        traffic=TrafficSpec.parse("open:avg_users=50,rpm=120,window_s=0.1")
    )

    # 2. replay determinism of one open-workload run.
    first = simulate(open_cfg)
    second = simulate(open_cfg)
    diffs = diff_results(first, second)
    if diffs:
        out.append(_diff_violation(
            "differential.open_workload", open_cfg, diffs,
            "re-simulating the same open-workload config",
        ))

    # 3. serial vs worker pool vs warm cache on the open-workload cell.
    no_cache = CellCache(enabled=False)
    with ExperimentEngine(workers=1, cache=no_cache) as serial:
        (expected,) = serial.run_cells([open_cfg])
    with ExperimentEngine(workers=2, cache=no_cache) as pool:
        (pooled,) = pool.run_cells([open_cfg])
    diffs = diff_results(expected, pooled)
    if diffs:
        out.append(_diff_violation(
            "differential.open_workload", open_cfg, diffs,
            "running the open-workload cell on a worker pool",
        ))
    root = tempfile.mkdtemp(prefix="repro-verify-openwl-")
    try:
        cache = CellCache(root=root, enabled=True)
        with ExperimentEngine(workers=1, cache=cache) as engine:
            (cold,) = engine.run_cells([open_cfg])
            (warm,) = engine.run_cells([open_cfg])
        diffs = diff_results(cold, warm)
        if not diffs:
            diffs = diff_results(expected, warm)
        if diffs:
            out.append(_diff_violation(
                "differential.open_workload", open_cfg, diffs,
                "reloading the open-workload cell from the cache",
            ))
    finally:
        import shutil

        shutil.rmtree(root, ignore_errors=True)
    return out


def check_planner(config: SimulationConfig,
                  repetitions: int = 2) -> List[Violation]:
    """Planned runs simulate cells bit-identically to unplanned runs.

    The experiment planner (:mod:`repro.planner`) promises that the
    cells it *does* simulate are exactly the cells a fixed-r run would
    have produced — same configs, same seeds, same replication
    numbering — so pruning only ever removes information, never skews
    it.  This check builds a small 2^2 design around *config* (sampling
    period ×1/×8, batch size 1/8), runs it planned and unplanned on
    cache-less engines, and diffs every replication of every cell the
    planner simulated against the unplanned run's.  It also asserts
    that pruned cells are reported as tagged surrogates, never as
    simulation output.
    """
    from ..expdesign.factorial import Factor, FactorialDesign
    from ..experiments.runners import run_design
    from ..experiments.engine import use_engine
    from ..planner import run_planned

    design = FactorialDesign([
        Factor("sampling_period", config.sampling_period,
               config.sampling_period * 8, "B"),
        Factor("batch_size", 1, 8, "C"),
    ])

    def make(run) -> SimulationConfig:
        return config.with_(
            sampling_period=run["sampling_period"],
            batch_size=int(run["batch_size"]),
        )

    no_cache = CellCache(enabled=False)
    with ExperimentEngine(workers=1, cache=no_cache) as plain:
        with use_engine(plain):
            unplanned = run_design(design, make, repetitions=repetitions)
    with ExperimentEngine(workers=1, cache=no_cache) as engine:
        with use_engine(engine):
            planned = run_planned(design, make, repetitions=repetitions)

    out: List[Violation] = []
    for cell in planned.cells:
        if cell.source == "surrogate":
            if cell.results is not None:
                out.append(Violation(
                    invariant="differential.planner",
                    detail=(
                        f"pruned cell {cell.index} carries simulation "
                        "results"
                    ),
                    subject=_subject(config),
                ))
            if "surrogate" not in cell.tag:
                out.append(Violation(
                    invariant="differential.planner",
                    detail=(
                        f"pruned cell {cell.index} is not tagged as a "
                        f"surrogate (tag: {cell.tag!r})"
                    ),
                    subject=_subject(config),
                ))
            continue
        expected = unplanned[cell.index].results
        actual = cell.results.results
        for r, (e, a) in enumerate(zip(expected, actual)):
            diffs = diff_results(e, a)
            if diffs:
                out.append(_diff_violation(
                    "differential.planner", config, diffs,
                    f"planned cell {cell.index} replication {r}",
                ))
        if len(actual) < min(repetitions, len(expected)):
            out.append(Violation(
                invariant="differential.planner",
                detail=(
                    f"planned cell {cell.index} ran {len(actual)} "
                    f"replications, unplanned ran {len(expected)}"
                ),
                subject=_subject(config),
            ))
    return out


def differential_checks(
    config: SimulationConfig,
    include_workers: bool = True,
) -> List[Violation]:
    """Every differential check for one configuration."""
    out: List[Violation] = []
    out.extend(check_fastpath(config))
    out.extend(check_watchdog(config))
    out.extend(check_cache(config))
    out.extend(check_bf_flush_noop(config))
    out.extend(check_resilient_engine(config))
    out.extend(check_event_queue(config))
    out.extend(check_parallel_kernel(config))
    out.extend(check_open_workload(config))
    out.extend(check_planner(config))
    if include_workers:
        out.extend(check_workers(config))
    return out
