"""``python -m repro.verify`` — the verification harness entry point.

Runs a battery of simulations across NOW/SMP/MPP operating points and
subjects every result to the three verification pillars:

1. structural invariant audits (:mod:`repro.verify.invariants`),
2. operational-law checks with tolerance bands
   (:mod:`repro.verify.oplaws`),
3. differential re-execution under flipped implementation knobs
   (:mod:`repro.verify.differential`).

``--full`` widens the battery and adds the Hypothesis property sweep
(:mod:`repro.verify.properties`); ``--selftest`` deliberately corrupts
a result to prove the harness can still see: it must detect the
injected conservation violation and exit non-zero naming it (exit 1),
or exit 2 if detection failed — either way the selftest never exits 0.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..faults.recovery import RecoveryPolicy
from ..faults.spec import DaemonCrash, FaultPlan, NetworkFault
from ..rocc.config import (
    Architecture,
    ForwardingTopology,
    NetworkMode,
    SimulationConfig,
)
from ..rocc.system import simulate
from .differential import differential_checks
from .invariants import audit_results
from .oplaws import applicable, check_operational_laws
from .report import VerificationReport, Violation

__all__ = ["main", "run_verification", "run_selftest"]


def _battery(quick: bool, seed: int) -> List[Tuple[str, SimulationConfig]]:
    """Operating points to verify; labels show up in progress output."""
    dur = 1_500_000.0 if quick else 5_000_000.0
    points = [
        ("now-cf", SimulationConfig(
            nodes=4, duration=dur, seed=seed,
            network_mode=NetworkMode.CONTENTION_FREE,
        )),
        ("now-bf", SimulationConfig(
            nodes=4, batch_size=8, duration=dur, seed=seed,
            network_mode=NetworkMode.CONTENTION_FREE,
        )),
        ("smp", SimulationConfig(
            architecture=Architecture.SMP, nodes=4,
            app_processes_per_node=4, daemons=2,
            duration=dur, seed=seed,
        )),
        ("mpp-tree", SimulationConfig(
            architecture=Architecture.MPP, nodes=4,
            forwarding=ForwardingTopology.TREE,
            duration=dur, seed=seed,
        )),
        ("faults-recovery", SimulationConfig(
            nodes=2, duration=dur, warmup=dur * 0.2,
            sampling_period=20_000.0, seed=seed,
            include_pvmd=False, include_other=False,
            faults=FaultPlan((
                DaemonCrash(node=0, at=dur * 0.4, restart_after=dur * 0.1),
                NetworkFault(loss_probability=0.1,
                             corruption_probability=0.05),
            )),
            recovery=RecoveryPolicy(max_retries=2),
        )),
    ]
    if not quick:
        points += [
            ("now-bf32", SimulationConfig(
                nodes=8, batch_size=32, duration=dur, seed=seed,
                network_mode=NetworkMode.CONTENTION_FREE,
            )),
            ("now-warmup", SimulationConfig(
                nodes=4, duration=dur, warmup=dur * 0.3, seed=seed,
            )),
            ("mpp-direct", SimulationConfig(
                architecture=Architecture.MPP, nodes=8, duration=dur,
                seed=seed,
            )),
        ]
    return points


#: The config differential checks re-execute (kept small: each check is
#: two full simulations).
def _differential_config(quick: bool, seed: int) -> SimulationConfig:
    return SimulationConfig(
        nodes=2,
        duration=800_000.0 if quick else 2_000_000.0,
        sampling_period=20_000.0,
        seed=seed,
    )


def run_verification(
    quick: bool = True,
    seed: int = 0,
    log: Callable[[str], None] = lambda msg: None,
) -> VerificationReport:
    """Run the full battery; returns the collected report."""
    report = VerificationReport()
    for label, config in _battery(quick, seed):
        t0 = time.perf_counter()
        results = simulate(config)
        report.extend(audit_results(results, config), section="invariants")
        if applicable(config):
            report.extend(
                check_operational_laws(config, results), section="oplaws"
            )
        log(f"  {label}: {time.perf_counter() - t0:.1f}s")

    diff_cfg = _differential_config(quick, seed)
    t0 = time.perf_counter()
    report.extend(
        differential_checks(diff_cfg, include_workers=True),
        section="differential",
        checks=10,
    )
    # The differential runs also yield two more audited results' worth
    # of coverage implicitly; audit one of them explicitly for the
    # fault-plan + watchdog combination.
    fault_cfg = diff_cfg.with_(
        faults=FaultPlan((DaemonCrash(node=0, at=300_000.0,
                                      restart_after=100_000.0),)),
        recovery=RecoveryPolicy(max_retries=1),
        max_events=1_000_000_000,
    )
    report.extend(
        audit_results(simulate(fault_cfg), fault_cfg), section="invariants"
    )
    log(f"  differential: {time.perf_counter() - t0:.1f}s")

    if not quick:
        from .properties import run_property_checks

        t0 = time.perf_counter()
        report.extend(
            run_property_checks(seed=seed),
            section="properties",
            checks=2,
        )
        log(f"  properties: {time.perf_counter() - t0:.1f}s")
    return report


def run_selftest(seed: int = 0, out=sys.stderr) -> int:
    """Prove the harness detects a planted conservation violation.

    Returns the process exit code: 1 when the violation was detected
    (the harness works — and the non-zero exit keeps a mis-wired CI
    step from quietly passing), 2 when it slipped through.
    """
    config = SimulationConfig(nodes=2, duration=500_000.0, seed=seed)
    results = simulate(config)
    broken = dataclasses.replace(
        results, samples_received=results.samples_received
        + results.samples_generated + 1,
    )
    violations = audit_results(broken, config)
    conservation = [
        v for v in violations if v.invariant == "conservation.sample_balance"
    ]
    if conservation:
        print(
            "SELFTEST OK: planted violation detected — "
            f"{conservation[0]}",
            file=out,
        )
        return 1
    print(
        "SELFTEST FAILED: planted conservation violation went undetected "
        f"(found instead: {[str(v) for v in violations]})",
        file=out,
    )
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Invariant, operational-law, and differential "
                    "verification of the ROCC simulator.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="small battery, no property sweep (default)")
    mode.add_argument("--full", action="store_true",
                      help="wide battery plus the Hypothesis properties")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for every generated config")
    parser.add_argument("--selftest", action="store_true",
                        help="plant a conservation violation and prove the "
                             "harness detects it (always exits non-zero)")
    args = parser.parse_args(argv)

    if args.selftest:
        return run_selftest(seed=args.seed)

    quick = not args.full
    print(f"repro.verify: {'quick' if quick else 'full'} battery, "
          f"seed={args.seed}")
    report = run_verification(quick=quick, seed=args.seed, log=print)
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
