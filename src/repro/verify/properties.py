"""Property-based verification over random valid configurations.

Hypothesis generates small-but-varied :class:`SimulationConfig`\\ s —
across architectures, batching policies, warmup, pipe sizes, and fault
plans — and every generated run must satisfy the structural invariants
of :mod:`repro.verify.invariants`.  A second property pins the DES
fast-path equivalence on random configs rather than the hand-picked
ones in the test suite.

The strategies deliberately keep runs short (≤ 1 simulated second) so a
property pass stays interactive; the point is breadth of the config
space, not length of any one run.
"""

from __future__ import annotations

from typing import List, Optional

from hypothesis import given, seed as hyp_seed, settings, strategies as st

from ..faults.recovery import RecoveryPolicy
from ..faults.spec import DaemonCrash, FaultPlan, NetworkFault
from ..rocc.config import Architecture, ForwardingTopology, SimulationConfig
from ..rocc.system import simulate
from .differential import check_fastpath
from .invariants import audit_results
from .report import Violation

__all__ = [
    "simulation_configs",
    "run_property_checks",
]


def _fault_plans(duration: float,
                 max_node: int) -> st.SearchStrategy[Optional[FaultPlan]]:
    crash = st.builds(
        DaemonCrash,
        node=st.integers(min_value=0, max_value=max_node),
        at=st.floats(min_value=duration * 0.1, max_value=duration * 0.6),
        restart_after=st.one_of(
            st.none(), st.floats(min_value=10_000.0, max_value=duration * 0.3)
        ),
    )
    net = st.builds(
        NetworkFault,
        loss_probability=st.floats(min_value=0.0, max_value=0.3),
        corruption_probability=st.floats(min_value=0.0, max_value=0.2),
    )
    plan = st.lists(st.one_of(crash, net), min_size=1, max_size=2).map(
        lambda specs: FaultPlan(tuple(specs))
    )
    return st.one_of(st.none(), plan)


@st.composite
def simulation_configs(draw, with_faults: bool = True) -> SimulationConfig:
    """A random small-but-valid :class:`SimulationConfig`."""
    arch = draw(st.sampled_from(
        [Architecture.NOW, Architecture.SMP, Architecture.MPP]
    ))
    duration = draw(st.floats(min_value=200_000.0, max_value=1_000_000.0))
    warmup = draw(st.one_of(
        st.just(0.0),
        st.floats(min_value=0.0, max_value=duration * 0.4),
    ))
    batch_size = draw(st.integers(min_value=1, max_value=8))
    kwargs = dict(
        architecture=arch,
        nodes=draw(st.integers(min_value=2, max_value=4)),
        sampling_period=draw(st.floats(min_value=5_000.0, max_value=50_000.0)),
        batch_size=batch_size,
        batch_flush_timeout=draw(st.one_of(
            st.none(), st.floats(min_value=20_000.0, max_value=100_000.0)
        )),
        app_processes_per_node=draw(st.integers(min_value=1, max_value=2)),
        pipe_capacity=draw(st.integers(min_value=4, max_value=64)),
        include_pvmd=draw(st.booleans()),
        include_other=draw(st.booleans()),
        duration=duration,
        warmup=warmup,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    if arch is Architecture.SMP:
        kwargs["daemons"] = draw(st.integers(min_value=1, max_value=2))
        # app_processes_per_node is the SMP total; keep ≥ daemons so
        # every daemon has a writer.
        kwargs["app_processes_per_node"] = draw(
            st.integers(min_value=kwargs["daemons"], max_value=4)
        )
    if arch is Architecture.MPP:
        kwargs["forwarding"] = draw(st.sampled_from(
            [ForwardingTopology.DIRECT, ForwardingTopology.TREE]
        ))
    if with_faults:
        # Crash targets index a *daemon*: one per node on NOW/MPP, the
        # configured daemon count on the SMP.
        if arch is Architecture.SMP:
            max_node = kwargs["daemons"] - 1
        else:
            max_node = kwargs["nodes"] - 1
        plan = draw(_fault_plans(duration, max_node))
        if plan is not None:
            kwargs["faults"] = plan
            if draw(st.booleans()):
                kwargs["recovery"] = RecoveryPolicy(
                    max_retries=draw(st.integers(min_value=0, max_value=3))
                )
    return SimulationConfig(**kwargs)


def run_property_checks(
    seed: int = 0,
    max_examples: int = 25,
    fastpath_examples: int = 5,
) -> List[Violation]:
    """Run the Hypothesis properties programmatically (CLI entry).

    Returns the violations found (first counterexample per property);
    the pytest suite in ``tests/verify`` runs the same properties with
    shrinking and the counterexample database.
    """
    found: List[Violation] = []

    @hyp_seed(seed)
    @settings(max_examples=max_examples, deadline=None, database=None,
              print_blob=False)
    @given(config=simulation_configs())
    def invariants_hold(config: SimulationConfig) -> None:
        violations = audit_results(simulate(config), config)
        assert not violations, "; ".join(str(v) for v in violations)

    @hyp_seed(seed)
    @settings(max_examples=fastpath_examples, deadline=None, database=None,
              print_blob=False)
    @given(config=simulation_configs(with_faults=False))
    def fastpath_equivalent(config: SimulationConfig) -> None:
        violations = check_fastpath(config)
        assert not violations, "; ".join(str(v) for v in violations)

    for name, prop in (
        ("property.invariants", invariants_hold),
        ("property.fastpath", fastpath_equivalent),
    ):
        try:
            prop()
        except Exception as exc:  # counterexample OR a crash mid-run
            first = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
            found.append(Violation(
                invariant=name,
                detail=f"{type(exc).__name__}: {first}",
                subject="hypothesis counterexample",
            ))
    return found
