"""Invariant auditors over :class:`~repro.rocc.metrics.SimulationResults`.

Every simulation run — whatever the architecture, policy, or fault plan
— must satisfy a set of structural invariants that follow from the
model itself, not from any particular parameterization:

* **conservation** — every sample generated is received, dropped, or
  still in flight; never more received+dropped than generated, and the
  per-reason drop breakdown sums to the drop total.
* **capacity** — no resource is busier than ``capacity × duration``:
  all CPU utilizations lie in [0, 1], per-node busy breakdowns fit the
  node, a single-server network never exceeds utilization 1.
* **tally consistency** — counted batches imply counted samples, batch
  sizes bound the ratio, and throughputs re-derive from the counters.
* **latency sanity** — percentiles are monotone (p50 ≤ p90 ≤ p99),
  non-negative, present exactly when samples were received, and the
  total latency (creation → receipt) dominates the forwarding latency
  (ready → receipt).

:func:`audit_results` runs them all and returns the violations found.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..obs.metrics import registry as obs_registry
from ..rocc.config import Architecture, NetworkMode, SimulationConfig
from ..rocc.metrics import SimulationResults
from .report import Violation

__all__ = ["audit_results"]

#: Relative slack for float-sum comparisons (busy-time accumulators add
#: millions of small floats; exact equality would be wrong to demand).
_REL_EPS = 1e-9


def _violation(name: str, detail: str, results: SimulationResults,
               **observed: float) -> Violation:
    return Violation(
        invariant=name,
        detail=detail,
        subject=results.config_summary,
        observed=observed,
    )


# ---------------------------------------------------------------------------
# Individual auditors (each returns a list of violations)
# ---------------------------------------------------------------------------

def _audit_conservation(r: SimulationResults) -> List[Violation]:
    out: List[Violation] = []
    counters = {
        "samples_generated": r.samples_generated,
        "samples_received": r.samples_received,
        "samples_dropped": r.samples_dropped,
        "batches_received": r.batches_received,
        "retransmissions": r.retransmissions,
        "messages_lost": r.messages_lost,
        "messages_corrupted": r.messages_corrupted,
        "forward_timeouts": r.forward_timeouts,
        "daemon_crashes": r.daemon_crashes,
    }
    for name, value in counters.items():
        if value < 0:
            out.append(_violation(
                "conservation.counter_sign",
                f"{name} is negative: {value}",
                r, **{name: value},
            ))
    in_flight = r.samples_generated - r.samples_received - r.samples_dropped
    if in_flight < 0:
        out.append(_violation(
            "conservation.sample_balance",
            "more samples received+dropped than generated: "
            f"generated={r.samples_generated} received={r.samples_received} "
            f"dropped={r.samples_dropped} (in-flight would be {in_flight})",
            r,
            generated=r.samples_generated,
            received=r.samples_received,
            dropped=r.samples_dropped,
        ))
    by_reason = sum(r.drops_by_reason.values())
    if by_reason != r.samples_dropped:
        out.append(_violation(
            "conservation.drop_reasons",
            f"drops_by_reason sums to {by_reason} but samples_dropped is "
            f"{r.samples_dropped} ({dict(r.drops_by_reason)})",
            r, by_reason=by_reason, samples_dropped=r.samples_dropped,
        ))
    return out


def _audit_capacity(r: SimulationResults,
                    config: Optional[SimulationConfig]) -> List[Violation]:
    out: List[Violation] = []
    if not r.duration > 0:
        out.append(_violation(
            "capacity.duration",
            f"non-positive measured duration {r.duration}", r,
            duration=r.duration,
        ))
        return out  # everything below divides by duration
    # The RR scheduler charges busy time when a slice *completes* (see
    # repro.rocc.cpu): a slice straddling the warmup snapshot is charged
    # entirely to the measured window, over-crediting it by at most one
    # quantum per server.  The capacity invariant carries exactly that
    # documented slack — no more.
    quantum_slack = 0.0
    if config is not None and config.warmup > 0:
        quantum_slack = config.workload.cpu_quantum
    utilizations = {
        "pd_cpu_utilization_per_node": r.pd_cpu_utilization_per_node,
        "app_cpu_utilization_per_node": r.app_cpu_utilization_per_node,
        "main_cpu_utilization": r.main_cpu_utilization,
        "is_cpu_utilization_per_node": r.is_cpu_utilization_per_node,
    }
    slack = 1.0 + quantum_slack / r.duration + _REL_EPS
    for name, u in utilizations.items():
        if not 0.0 - _REL_EPS <= u <= slack:
            out.append(_violation(
                "capacity.cpu_utilization",
                f"{name} outside [0, 1]: {u}", r, **{name: u},
            ))
    if r.pd_network_utilization < -_REL_EPS:
        out.append(_violation(
            "capacity.network_utilization",
            f"pd_network_utilization negative: {r.pd_network_utilization}",
            r, pd_network_utilization=r.pd_network_utilization,
        ))
    if r.network_utilization < r.pd_network_utilization * (1.0 - _REL_EPS):
        out.append(_violation(
            "capacity.network_component",
            "daemon share of the network exceeds the total: "
            f"pd={r.pd_network_utilization} total={r.network_utilization}",
            r,
            pd_network_utilization=r.pd_network_utilization,
            network_utilization=r.network_utilization,
        ))
    if (config is not None
            and config.effective_network_mode is NetworkMode.SHARED
            and r.network_utilization > slack):
        out.append(_violation(
            "capacity.network_utilization",
            "single-server shared network busier than capacity: "
            f"utilization {r.network_utilization}",
            r, network_utilization=r.network_utilization,
        ))
    # Raw per-node busy breakdown must fit each node's CPU complement.
    if config is not None and r.cpu_busy:
        if config.architecture is Architecture.SMP:
            servers = config.nodes
        else:
            servers = config.cpus_per_node
        node_capacity = servers * r.duration + servers * quantum_slack
        per_node: dict = {}
        for (node, _owner), busy in r.cpu_busy.items():
            if busy < -_REL_EPS * r.duration:
                out.append(_violation(
                    "capacity.negative_busy",
                    f"negative busy time {busy} at node {node}", r,
                ))
            per_node[node] = per_node.get(node, 0.0) + busy
        for node, busy in per_node.items():
            if busy > node_capacity * (1.0 + _REL_EPS):
                out.append(_violation(
                    "capacity.node_busy",
                    f"node {node} busy {busy:.6g}µs exceeds capacity "
                    f"{node_capacity:.6g}µs (capacity × duration)",
                    r, busy=busy, capacity=node_capacity,
                ))
    if r.pipe_blocked_time < 0:
        out.append(_violation(
            "capacity.pipe_blocked",
            f"negative pipe blocked time {r.pipe_blocked_time}", r,
        ))
    elif config is not None:
        # Blocked time is summed over writers: no more writer-µs can be
        # spent blocked than exist.  SMP configs count total processes.
        if config.architecture is Architecture.SMP:
            writers = config.app_processes_per_node
        else:
            writers = config.nodes * config.app_processes_per_node
        limit = r.duration * writers
        if r.pipe_blocked_time > limit * (1.0 + _REL_EPS):
            out.append(_violation(
                "capacity.pipe_blocked",
                f"pipe blocked time {r.pipe_blocked_time:.6g}µs exceeds "
                f"the {limit:.6g} writer-µs available", r,
            ))
    if r.daemon_downtime < 0:
        out.append(_violation(
            "capacity.daemon_downtime",
            f"negative daemon downtime {r.daemon_downtime}", r,
        ))
    return out


def _audit_tallies(r: SimulationResults,
                   config: Optional[SimulationConfig]) -> List[Violation]:
    out: List[Violation] = []
    if r.batches_received > r.samples_received:
        out.append(_violation(
            "tally.batches_vs_samples",
            f"{r.batches_received} batches counted but only "
            f"{r.samples_received} samples — every counted batch "
            "contributes at least one counted sample",
            r,
            batches_received=r.batches_received,
            samples_received=r.samples_received,
        ))
    if r.duration > 0:
        expected = r.samples_received / (r.duration / 1e6)
        if not math.isclose(r.received_throughput, expected,
                            rel_tol=1e-9, abs_tol=1e-12):
            out.append(_violation(
                "tally.received_throughput",
                "received_throughput does not re-derive from the counters: "
                f"field={r.received_throughput} "
                f"samples_received/seconds={expected}",
                r,
                received_throughput=r.received_throughput,
                expected=expected,
            ))
    if r.samples_generated > 0:
        combined = r.delivery_ratio + r.drop_ratio
        if combined > 1.0 + _REL_EPS:
            out.append(_violation(
                "tally.ratios",
                f"delivery_ratio + drop_ratio = {combined} > 1", r,
                combined=combined,
            ))
    if config is not None and r.forward_calls_per_node < 0:
        out.append(_violation(
            "tally.forward_calls",
            f"negative forward_calls_per_node {r.forward_calls_per_node}", r,
        ))
    return out


def _audit_latency(r: SimulationResults) -> List[Violation]:
    out: List[Violation] = []
    ps = {
        50: r.monitoring_latency_p50,
        90: r.monitoring_latency_p90,
        99: r.monitoring_latency_p99,
    }
    have_samples = r.samples_received > 0
    for q, v in ps.items():
        if have_samples and not math.isfinite(v):
            out.append(_violation(
                "latency.percentile_missing",
                f"{r.samples_received} samples received but p{q} is {v} — "
                "percentiles must be present whenever data exists",
                r,
            ))
        if not have_samples and not math.isnan(v):
            out.append(_violation(
                "latency.percentile_phantom",
                f"no samples received but p{q} = {v}", r,
            ))
        if math.isfinite(v) and v < 0:
            out.append(_violation(
                "latency.percentile_sign", f"p{q} negative: {v}", r,
            ))
    p50, p90, p99 = ps[50], ps[90], ps[99]
    if all(math.isfinite(v) for v in (p50, p90, p99)):
        if not p50 <= p90 <= p99:
            out.append(_violation(
                "latency.percentile_monotone",
                f"percentiles not monotone: p50={p50} p90={p90} p99={p99}",
                r, p50=p50, p90=p90, p99=p99,
            ))
    for name, v in (
        ("monitoring_latency_forwarding", r.monitoring_latency_forwarding),
        ("monitoring_latency_total", r.monitoring_latency_total),
        ("recovery_latency", r.recovery_latency),
    ):
        if math.isfinite(v) and v < 0:
            out.append(_violation(
                "latency.mean_sign", f"{name} negative: {v}", r,
            ))
    if have_samples and not math.isfinite(r.monitoring_latency_forwarding):
        out.append(_violation(
            "latency.mean_missing",
            f"{r.samples_received} samples received but the mean "
            f"forwarding latency is {r.monitoring_latency_forwarding}",
            r,
        ))
    fwd, total = r.monitoring_latency_forwarding, r.monitoring_latency_total
    if math.isfinite(fwd) and math.isfinite(total):
        # creation precedes batch readiness for every sample, so the
        # total (creation → receipt) dominates the forwarding latency.
        if total < fwd * (1.0 - 1e-9) - 1e-9:
            out.append(_violation(
                "latency.total_dominates_forwarding",
                f"total latency {total} < forwarding latency {fwd}",
                r, total=total, forwarding=fwd,
            ))
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def audit_results(
    results: SimulationResults,
    config: Optional[SimulationConfig] = None,
) -> List[Violation]:
    """Audit one run's results against every structural invariant.

    *config* is optional but unlocks the checks that need to know the
    machine (per-node CPU capacity, network mode, fault plan): with it,
    a fault-free config additionally asserts that nothing was dropped,
    crashed, or retransmitted.
    """
    out: List[Violation] = []
    out.extend(_audit_conservation(results))
    out.extend(_audit_capacity(results, config))
    out.extend(_audit_tallies(results, config))
    out.extend(_audit_latency(results))
    if config is not None and config.faults is None:
        for name, value in (
            ("samples_dropped", results.samples_dropped),
            ("daemon_crashes", results.daemon_crashes),
            ("messages_lost", results.messages_lost),
            ("messages_corrupted", results.messages_corrupted),
            ("retransmissions", results.retransmissions),
        ):
            if value != 0:
                out.append(_violation(
                    "faultfree.clean",
                    f"no faults injected but {name} = {value}",
                    results, **{name: value},
                ))
    reg = obs_registry()
    reg.counter("verify.audits", "results audited").inc()
    if out:
        reg.counter("verify.violations", "invariant violations found").inc(
            len(out)
        )
    return out
