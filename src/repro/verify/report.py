"""Violation records and the report a verification pass produces.

Every checker in :mod:`repro.verify` speaks the same small vocabulary: a
check either passes silently or yields :class:`Violation` records; a
:class:`VerificationReport` collects them together with a count of the
checks that ran, so "0 violations" can be told apart from "0 checks".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Violation", "VerificationReport"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant / law / equivalence, with its evidence.

    ``invariant`` is a stable dotted identifier (e.g.
    ``conservation.sample_balance``) that tests and the CLI grep for;
    ``detail`` is the human-readable evidence with the numbers in it.
    """

    invariant: str
    detail: str
    #: What was being verified (config summary, check label, ...).
    subject: str = ""
    #: Measured values backing the finding, for programmatic triage.
    observed: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        return f"{self.invariant}{where}: {self.detail}"


@dataclass
class VerificationReport:
    """Outcome of one verification pass."""

    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0
    #: Optional per-section check counts for the CLI summary.
    sections: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and self.checks_run > 0

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations, section: Optional[str] = None,
               checks: int = 1) -> None:
        """Fold one checker's output (a violation list) into the report."""
        self.violations.extend(violations)
        self.checks_run += checks
        if section:
            self.sections[section] = self.sections.get(section, 0) + checks

    def merge(self, other: "VerificationReport") -> None:
        self.violations.extend(other.violations)
        self.checks_run += other.checks_run
        for k, v in other.sections.items():
            self.sections[k] = self.sections.get(k, 0) + v

    def format(self) -> str:
        lines = []
        if self.sections:
            per = ", ".join(f"{k}={v}" for k, v in sorted(self.sections.items()))
            lines.append(f"checks run: {self.checks_run} ({per})")
        else:
            lines.append(f"checks run: {self.checks_run}")
        if not self.violations:
            lines.append("all invariants hold")
        else:
            lines.append(f"{len(self.violations)} violation(s):")
            for v in self.violations:
                lines.append(f"  FAIL {v}")
        return "\n".join(lines)
