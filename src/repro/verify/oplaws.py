"""Operational-law checks on simulator output (§3 of the paper).

The paper's back-of-the-envelope analysis rests on the operational laws
(utilization law U = X·S, Little's law N = X·R, flow balance).  The
simulator does not *use* those laws — it executes the model event by
event — so the laws double as an independent cross-check: if measured
busy time disagrees with (completed operations × mean service demand),
either the accounting or the scheduler is wrong.

Three families of checks, each with an explicit tolerance band (the
service demands are random variates, so exact equality is wrong to
demand; the band shrinks as 1/√n with the operation count):

* :func:`check_utilization_law` — measured daemon / main-process CPU
  busy time vs the U = X·S reconstruction from the run's own counters
  and the configured cost models.
* :func:`check_littles_law` — the time-average in-flight population
  N = X·R implied by throughput and latency must be non-negative,
  finite, and fit the model's physical buffer capacity.
* :func:`check_against_analytic` — the NOW/SMP/MPP analytic models
  (equations (1)–(16)) agree with simulated utilizations below
  saturation and lower-bound the simulated latency (the §3 caveat:
  analysis omits CPU contention, so it is systematically optimistic).

All checks apply to fault-free, non-adaptive operating points with no
warmup — the regime where flow balance holds exactly; callers gate on
:func:`applicable`.
"""

from __future__ import annotations

import math
from typing import List

from ..analytical.mpp import MPPAnalyticalModel
from ..analytical.now import NOWAnalyticalModel
from ..analytical.operational import ISDemands, littles_law_population
from ..analytical.smp import SMPAnalyticalModel
from ..rocc.config import Architecture, ForwardingTopology, SimulationConfig
from ..rocc.metrics import SimulationResults
from .report import Violation

__all__ = [
    "applicable",
    "check_utilization_law",
    "check_littles_law",
    "check_against_analytic",
    "check_operational_laws",
]


def applicable(config: SimulationConfig) -> bool:
    """Whether the operational-law regime applies to *config*.

    Faults break flow balance (drops), adaptive management changes the
    demand mid-run, warmup decouples busy-time snapshots from epoch
    -filtered counters, and barriers throttle the arrival process.
    """
    return (
        config.faults is None
        and config.adaptive is None
        and config.warmup == 0.0
        and config.barrier_period is None
        and config.instrumented
    )


def _n_daemons(config: SimulationConfig) -> int:
    if config.architecture is Architecture.SMP:
        return config.daemons
    return config.nodes


def _band(n_ops: float, floor: float) -> float:
    """Relative tolerance for a sum of ~*n_ops* exponential demands."""
    if n_ops <= 0:
        return 1.0
    return max(floor, 4.0 / math.sqrt(n_ops))


def check_utilization_law(
    config: SimulationConfig,
    results: SimulationResults,
    tolerance: float = 0.15,
) -> List[Violation]:
    """U = X·S: busy time re-derived from counters and cost models."""
    out: List[Violation] = []
    r = results
    seconds = r.duration / 1e6
    if seconds <= 0:
        return out
    costs = config.daemon_costs
    n_daemons = _n_daemons(config)
    forwarded = r.throughput_per_daemon * n_daemons * seconds
    forward_calls = r.forward_calls_per_node * config.nodes
    merge_mean = (
        costs.merge_cpu.mean if costs.merge_cpu is not None
        else costs.forward_cpu.mean
    )
    # Collection CPU is paid when a sample is *collected*, which may be
    # before it is forwarded (samples parked in a partial batch at the
    # end of the run paid collection but are not in the forwarded
    # count).  The counters therefore bracket the busy time: at least
    # every forwarded sample was collected, at most every generated one.
    fixed_pd = (
        forwarded * costs.per_sample_batch_cpu
        + (forward_calls + r.retransmissions) * costs.forward_cpu.mean
        + r.merges_total * merge_mean
    )
    expected_lo = fixed_pd + forwarded * costs.collection_cpu.mean
    expected_hi = fixed_pd + r.samples_generated * costs.collection_cpu.mean
    measured_pd = r.pd_cpu_time_per_node * config.nodes
    ops = forwarded + forward_calls + r.merges_total
    band = _band(ops, tolerance)
    if expected_lo > 0 and not (
        expected_lo * (1.0 - band) <= measured_pd <= expected_hi * (1.0 + band)
    ):
        out.append(Violation(
            invariant="oplaw.utilization_pd",
            detail=(
                "daemon CPU busy time disagrees with U = X·S: measured "
                f"{measured_pd:.6g}µs outside "
                f"[{expected_lo:.6g}, {expected_hi:.6g}]µs expected from "
                f"{forwarded:.0f} samples forwarded / {forward_calls:.0f} "
                f"calls / {r.merges_total} merges (±{band:.0%})"
            ),
            subject=r.config_summary,
            observed={"measured": measured_pd, "expected_lo": expected_lo,
                      "expected_hi": expected_hi, "band": band},
        ))
    main = config.main_costs
    expected_main = (
        r.batches_received * main.receive_cpu.mean
        + r.samples_received * main.per_sample_cpu.mean
    )
    ops_main = r.batches_received + r.samples_received
    band_main = _band(ops_main, tolerance)
    if (expected_main > 0
            and abs(r.main_cpu_time - expected_main) > band_main * expected_main):
        out.append(Violation(
            invariant="oplaw.utilization_main",
            detail=(
                "main-process CPU busy time disagrees with U = X·S: "
                f"measured {r.main_cpu_time:.6g}µs vs {expected_main:.6g}µs "
                f"expected from {r.batches_received} batches / "
                f"{r.samples_received} samples (±{band_main:.0%})"
            ),
            subject=r.config_summary,
            observed={"measured": r.main_cpu_time, "expected": expected_main,
                      "band": band_main},
        ))
    return out


def check_littles_law(
    config: SimulationConfig,
    results: SimulationResults,
) -> List[Violation]:
    """N = X·R: the implied in-flight population fits the buffers.

    X is the receipt throughput (samples/µs) and R the mean total
    latency (creation → receipt), so N is the time-average number of
    samples somewhere between creation and receipt.  That population
    physically lives in the pipes, the daemons' partial batches, and the
    handful of batches a daemon can have in transfer at once — a hard
    (if loose) upper bound.
    """
    out: List[Violation] = []
    r = results
    if r.duration <= 0 or r.samples_received == 0:
        return out
    x = r.samples_received / r.duration  # samples per µs
    rt = r.monitoring_latency_total
    if not math.isfinite(rt):
        return out  # latency invariants report this separately
    population = littles_law_population(x, rt)
    if not math.isfinite(population) or population < 0:
        out.append(Violation(
            invariant="oplaw.littles_population",
            detail=f"N = X·R is not a population: X={x} R={rt} N={population}",
            subject=r.config_summary,
            observed={"throughput": x, "latency": rt},
        ))
        return out
    if config.architecture is Architecture.SMP:
        writers = config.app_processes_per_node
    else:
        writers = config.nodes * config.app_processes_per_node
    n_daemons = _n_daemons(config)
    # Per daemon: one partial batch plus at most a few batches in
    # flight (collect, flush, merge, retry each hold ≤ 1).
    bound = (
        writers * config.pipe_capacity
        + n_daemons * 5 * config.batch_size
    )
    if population > bound:
        out.append(Violation(
            invariant="oplaw.littles_population_bound",
            detail=(
                f"Little's-law population N = X·R = {population:.4g} "
                f"exceeds the model's buffer capacity {bound} "
                "(pipes + partial batches + in-transfer batches)"
            ),
            subject=r.config_summary,
            observed={"population": population, "bound": float(bound)},
        ))
    return out


def check_against_analytic(
    config: SimulationConfig,
    results: SimulationResults,
    utilization_tolerance: float = 0.35,
    latency_slack: float = 0.25,
) -> List[Violation]:
    """Equations (1)–(16) vs the simulator at one operating point."""
    out: List[Violation] = []
    r = results
    demands = ISDemands.from_cost_models(
        config.daemon_costs, config.main_costs, config.batch_size
    )
    arch = config.architecture
    if arch is Architecture.SMP:
        model = SMPAnalyticalModel(
            nodes=config.nodes,
            sampling_period=config.sampling_period,
            batch_size=config.batch_size,
            app_processes=config.app_processes_per_node,
            daemons=config.daemons,
            demands=demands,
        )
    elif arch is Architecture.MPP:
        model = MPPAnalyticalModel(
            nodes=config.nodes,
            sampling_period=config.sampling_period,
            batch_size=config.batch_size,
            app_processes_per_node=config.app_processes_per_node,
            tree=config.forwarding is ForwardingTopology.TREE,
            demands=demands,
        )
    else:
        model = NOWAnalyticalModel(
            nodes=config.nodes,
            sampling_period=config.sampling_period,
            batch_size=config.batch_size,
            app_processes_per_node=config.app_processes_per_node,
            demands=demands,
        )
    a_util = model.pd_cpu_utilization()
    if arch is Architecture.SMP:
        # Eq (7) carries the §3.2 daemon factor (λ scaled by k); the
        # simulator reports the pool's utilization by the daemon class,
        # which is that quantity divided by k.
        a_util /= config.daemons
    s_util = r.pd_cpu_utilization_per_node
    # Flow balance only holds below saturation; near U = 1 the open
    # model diverges from any finite simulation.
    if 0.0 < a_util < 0.7:
        if abs(s_util - a_util) > utilization_tolerance * a_util:
            out.append(Violation(
                invariant="oplaw.analytic_utilization",
                detail=(
                    f"simulated Pd utilization {s_util:.4g} disagrees with "
                    f"the analytic model's {a_util:.4g} "
                    f"(±{utilization_tolerance:.0%})"
                ),
                subject=r.config_summary,
                observed={"analytic": a_util, "simulated": s_util},
            ))
        a_lat = model.monitoring_latency()
        s_lat = r.monitoring_latency_forwarding
        # The analytic latency omits CPU contention with the application
        # (the §3 caveat) so it lower-bounds the simulation.  Two
        # regimes where the bound does not apply: the SMP model's R(λ)
        # uses the k-scaled λ of eq (7), and under BF (batch > 1) the
        # analytic demand includes per-sample collection CPU that the
        # simulator pays *before* stamping the batch ready.
        if (arch is not Architecture.SMP
                and config.batch_size == 1
                and math.isfinite(a_lat) and math.isfinite(s_lat)
                and s_lat < a_lat * (1.0 - latency_slack)):
            out.append(Violation(
                invariant="oplaw.analytic_latency_bound",
                detail=(
                    f"simulated forwarding latency {s_lat:.6g}µs falls "
                    f"below the contention-free analytic bound "
                    f"{a_lat:.6g}µs"
                ),
                subject=r.config_summary,
                observed={"analytic": a_lat, "simulated": s_lat},
            ))
    return out


def check_operational_laws(
    config: SimulationConfig,
    results: SimulationResults,
    tolerance: float = 0.15,
) -> List[Violation]:
    """All operational-law checks for one (config, results) pair."""
    if not applicable(config):
        return []
    out: List[Violation] = []
    out.extend(check_utilization_law(config, results, tolerance=tolerance))
    out.extend(check_littles_law(config, results))
    out.extend(check_against_analytic(config, results))
    return out
