"""Batch-means analysis for steady-state simulation output.

The paper's what-if experiments use independent replications; for long
single runs (the adaptive-management studies, the saturated operating
points) the standard alternative is the **method of batch means** (Law &
Kelton §9.5): split one long output series into contiguous batches,
treat batch averages as approximately independent observations, and put
a t-interval around their mean.  :func:`batch_means` implements it with
a lag-1 autocorrelation diagnostic so callers can tell when the batch
count is too aggressive for the series' correlation structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .confidence import MeanCI, mean_confidence_interval

__all__ = ["BatchMeansResult", "batch_means", "lag1_autocorrelation"]


def lag1_autocorrelation(series: Sequence[float]) -> float:
    """Lag-1 sample autocorrelation (0 for n < 2 or constant series)."""
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 2:
        return 0.0
    xc = x - x.mean()
    denom = float(np.dot(xc, xc))
    if denom == 0.0:
        return 0.0
    return float(np.dot(xc[:-1], xc[1:]) / denom)


@dataclass
class BatchMeansResult:
    """Outcome of a batch-means analysis."""

    ci: MeanCI
    n_batches: int
    batch_size: int
    discarded: int  # trailing observations that did not fill a batch
    batch_lag1: float  # autocorrelation between successive batch means

    @property
    def batches_look_independent(self) -> bool:
        """Rule of thumb: |lag-1 autocorrelation| below ~2/sqrt(k)."""
        return abs(self.batch_lag1) < 2.0 / math.sqrt(max(self.n_batches, 1))


def batch_means(
    series: Sequence[float],
    n_batches: int = 20,
    level: float = 0.90,
    warmup: int = 0,
) -> BatchMeansResult:
    """Confidence interval for the steady-state mean of *series*.

    Parameters
    ----------
    series:
        Raw per-observation output (e.g. per-sample latencies in event
        order).
    n_batches:
        Number of contiguous batches; 10–30 is conventional.
    level:
        Confidence level of the t-interval on the batch means.
    warmup:
        Observations to discard from the front (initial transient).
    """
    x = np.asarray(series, dtype=float)
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    x = x[warmup:]
    if n_batches < 2:
        raise ValueError("need at least two batches")
    if x.size < 2 * n_batches:
        raise ValueError(
            f"series too short: {x.size} observations for {n_batches} batches"
        )
    batch_size = x.size // n_batches
    used = batch_size * n_batches
    means = x[:used].reshape(n_batches, batch_size).mean(axis=1)
    return BatchMeansResult(
        ci=mean_confidence_interval(means, level=level),
        n_batches=n_batches,
        batch_size=batch_size,
        discarded=int(x.size - used),
        batch_lag1=lag1_autocorrelation(means),
    )
