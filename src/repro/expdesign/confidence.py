"""Confidence intervals on simulation output (the paper uses 90 %).

"The mean values of the two metrics ... are derived within 90 %
confidence intervals from a sample of fifty values" (§4.1).  These
helpers provide the t-based interval and the repetition-count check
("is r large enough for the target half-width?").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["MeanCI", "mean_confidence_interval", "repetitions_needed"]


@dataclass(frozen=True)
class MeanCI:
    """A mean with its confidence interval."""

    mean: float
    low: float
    high: float
    level: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (∞ for a zero mean)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def mean_confidence_interval(
    data: Sequence[float], level: float = 0.90
) -> MeanCI:
    """t-based CI for the mean of iid observations."""
    from scipy.stats import t as t_dist

    arr = np.asarray(data, dtype=float)
    # NaN/inf observations come from runs that produced no data for the
    # metric (e.g. a latency series with zero samples); they carry no
    # information about the mean, so exclude them rather than letting a
    # single NaN poison the whole interval.
    arr = arr[np.isfinite(arr)]
    n = arr.size
    if n < 2:
        raise ValueError(
            f"need at least two finite observations for a CI, got {n} "
            f"(of {len(data)} supplied)"
        )
    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / math.sqrt(n))
    h = float(t_dist.ppf(0.5 + level / 2.0, n - 1)) * sem
    return MeanCI(mean=mean, low=mean - h, high=mean + h, level=level, n=n)


def repetitions_needed(
    data: Sequence[float],
    target_relative_half_width: float,
    level: float = 0.90,
) -> int:
    """Estimate how many repetitions reach the target relative precision.

    Standard pilot-run sizing: n* = (z s / (ε x̄))², rounded up, at
    least the pilot size.
    """
    from scipy.stats import norm

    arr = np.asarray(data, dtype=float)
    if arr.size < 2:
        raise ValueError("need a pilot sample of at least two observations")
    if target_relative_half_width <= 0:
        raise ValueError("target_relative_half_width must be positive")
    mean = float(arr.mean())
    if mean == 0:
        raise ValueError("cannot size repetitions for a zero-mean response")
    s = float(arr.std(ddof=1))
    z = float(norm.ppf(0.5 + level / 2.0))
    n_star = (z * s / (target_relative_half_width * mean)) ** 2
    return max(int(math.ceil(n_star)), arr.size)
