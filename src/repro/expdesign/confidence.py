"""Confidence intervals on simulation output (the paper uses 90 %).

"The mean values of the two metrics ... are derived within 90 %
confidence intervals from a sample of fifty values" (§4.1).  These
helpers provide the t-based interval and the repetition-count check
("is r large enough for the target half-width?").

Both helpers are total over real pilot data — including the degenerate
samples an adaptive replication driver inevitably feeds them:

* fewer than two finite observations yield a *degenerate*
  :class:`MeanCI` (infinite half-width, ``n`` = the finite count)
  rather than raising — the caller sees "no precision yet" and keeps
  replicating;
* zero-variance samples (common under common-random-numbers sweeps
  where a metric is deterministic) yield a zero-width interval and a
  repetition estimate equal to the pilot size — converged, not a
  division by zero;
* non-finite observations (NaN latency from a run with no samples) are
  excluded consistently by both helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["MeanCI", "mean_confidence_interval", "repetitions_needed"]


@dataclass(frozen=True)
class MeanCI:
    """A mean with its confidence interval.

    A *degenerate* interval (fewer than two finite observations, see
    :func:`mean_confidence_interval`) has ``low = -inf``/``high = inf``;
    its :attr:`half_width` and :attr:`relative_half_width` are ``inf``,
    so precision tests like ``ci.relative_half_width <= target`` are
    well-defined and simply fail until more data arrives.
    """

    mean: float
    low: float
    high: float
    level: float
    n: int

    @property
    def degenerate(self) -> bool:
        """Whether the interval carries no precision information."""
        return self.n < 2

    @property
    def half_width(self) -> float:
        if self.degenerate:
            return math.inf
        return (self.high - self.low) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (∞ for a zero or
        undefined mean)."""
        if self.mean == 0 or not math.isfinite(self.mean):
            return math.inf
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def mean_confidence_interval(
    data: Sequence[float], level: float = 0.90
) -> MeanCI:
    """t-based CI for the mean of iid observations.

    NaN/inf observations come from runs that produced no data for the
    metric (e.g. a latency series with zero samples); they carry no
    information about the mean, so they are excluded rather than letting
    a single NaN poison the whole interval.  With fewer than two finite
    observations left there is no variance estimate, and the result is
    a degenerate interval: ``mean`` is the single observation (or NaN
    for none), ``low``/``high`` are ∓∞, and ``n`` is the finite count.
    Zero-variance samples produce an exact zero-width interval.
    """
    from scipy.stats import t as t_dist

    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    arr = np.asarray(data, dtype=float)
    arr = arr[np.isfinite(arr)]
    n = int(arr.size)
    if n < 2:
        mean = float(arr[0]) if n == 1 else math.nan
        return MeanCI(mean=mean, low=-math.inf, high=math.inf,
                      level=level, n=n)
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / math.sqrt(n))
    h = float(t_dist.ppf(0.5 + level / 2.0, n - 1)) * sem
    return MeanCI(mean=mean, low=mean - h, high=mean + h, level=level, n=n)


def repetitions_needed(
    data: Sequence[float],
    target_relative_half_width: float,
    level: float = 0.90,
) -> int:
    """Estimate how many repetitions reach the target relative precision.

    Standard pilot-run sizing: n* = (z s / (ε x̄))², rounded up, at
    least the pilot size.  Total over degenerate pilots:

    * non-finite observations are excluded (matching
      :func:`mean_confidence_interval`);
    * fewer than two finite observations → no variance estimate, so no
      extrapolation is attempted and the result is ``max(n_finite, 2)``
      (the smallest sample a CI can be formed from);
    * zero variance → the target is met at any n ≥ 2: returns the pilot
      size;
    * zero mean → the *relative* criterion is undefined (the true
      half-width target is 0·ε = 0); again no extrapolation is
      attempted and the pilot size is returned — callers that genuinely
      need convergence on a zero-mean response must use an absolute
      criterion instead.
    """
    from scipy.stats import norm

    if target_relative_half_width <= 0:
        raise ValueError("target_relative_half_width must be positive")
    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    arr = np.asarray(data, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size < 2:
        return max(int(arr.size), 2)
    mean = float(arr.mean())
    s = float(arr.std(ddof=1))
    if mean == 0 or s == 0:
        return int(arr.size)
    z = float(norm.ppf(0.5 + level / 2.0))
    n_star = (z * s / (target_relative_half_width * mean)) ** 2
    return max(int(math.ceil(n_star)), int(arr.size))
