"""Fractional factorial designs: 2^(k-p) with generator relations.

The paper runs full 2^4 designs; screening more factors (§4.1 lists six)
at the same budget calls for fractional designs (Jain ch. 19).  A
:class:`FractionalFactorialDesign` is built from base factors plus
generator equations like ``"E=ABCD"``: the generated factor's level in
each run is the product of the base columns, which confounds (aliases)
each effect with its generalized interactions with the defining words.

The alias structure is computed explicitly so an analysis can report
what each estimated effect is confounded with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .factorial import Factor, FactorialDesign

__all__ = ["FractionalFactorialDesign"]


def _word_mul(a: str, b: str) -> str:
    """Product of two effect words under x^2 = I (e.g. AB * BC = AC).

    ``"I"`` is the identity word, not a factor letter.
    """
    counts: Dict[str, int] = {}
    for ch in a + b:
        if ch == "I":
            continue
        counts[ch] = counts.get(ch, 0) + 1
    word = "".join(sorted(ch for ch, n in counts.items() if n % 2 == 1))
    return word or "I"


@dataclass
class FractionalFactorialDesign:
    """A 2^(k-p) design from ``base_factors`` and ``generators``.

    ``generators`` map generated-factor objects to defining words over
    the base factor labels, e.g. ``{Factor("flush", 0, 1, "E"): "ABCD"}``.
    """

    base_factors: Sequence[Factor]
    generators: Dict[Factor, str]

    def __post_init__(self) -> None:
        self._base = FactorialDesign(list(self.base_factors))
        base_labels = set(self._base.labels)
        for factor, word in self.generators.items():
            label = factor.label or factor.name[0].upper()
            if label in base_labels:
                raise ValueError(f"generated label {label!r} collides with base")
            if not word or not set(word) <= base_labels:
                raise ValueError(
                    f"generator {word!r} must be a word over base labels "
                    f"{sorted(base_labels)}"
                )

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Total number of factors (base + generated)."""
        return len(self.base_factors) + len(self.generators)

    @property
    def p(self) -> int:
        return len(self.generators)

    @property
    def n_runs(self) -> int:
        return 2 ** len(self.base_factors)

    @property
    def resolution_words(self) -> List[str]:
        """The defining relation's words (I = word for each generator)."""
        words = []
        for factor, word in self.generators.items():
            label = factor.label or factor.name[0].upper()
            words.append(_word_mul(label, word))
        return words

    @property
    def resolution(self) -> int:
        """Design resolution: length of the shortest defining word."""
        full = self.defining_relation()
        lengths = [len(w) for w in full if w != "I"]
        return min(lengths) if lengths else 0

    def defining_relation(self) -> List[str]:
        """All words equal to identity (the defining contrast subgroup)."""
        words = {"I"}
        for w in self.resolution_words:
            words |= {_word_mul(w, existing) for existing in list(words)}
        return sorted(words, key=lambda w: (len(w), w))

    # ------------------------------------------------------------------
    def runs(self) -> Iterator[Dict[str, Any]]:
        """Yield factor-name → value mappings for the 2^(k-p) runs."""
        base_signs = self._base.signs()
        label_to_col = {lab: i for i, lab in enumerate(self._base.labels)}
        for row in base_signs:
            run = {
                f.name: f.level(int(s))
                for f, s in zip(self.base_factors, row)
            }
            for factor, word in self.generators.items():
                sign = 1
                for ch in word:
                    sign *= int(row[label_to_col[ch]])
                run[factor.name] = factor.level(sign)
            yield run

    def signs(self) -> Tuple[List[str], np.ndarray]:
        """Labels and ±1 columns for all k factors over the 2^(k-p) runs."""
        base_signs = self._base.signs()
        labels = list(self._base.labels)
        cols = [base_signs[:, i] for i in range(len(labels))]
        label_to_col = {lab: i for i, lab in enumerate(labels)}
        for factor, word in self.generators.items():
            col = np.ones(self.n_runs, dtype=int)
            for ch in word:
                col = col * base_signs[:, label_to_col[ch]]
            labels.append(factor.label or factor.name[0].upper())
            cols.append(col)
        return labels, np.column_stack(cols)

    def estimate_effects(
        self, responses: Sequence[Sequence[float]]
    ) -> Dict[str, float]:
        """Estimate every estimable contrast from 2^(k-p)·r responses.

        Returns a mapping from contrast label to the estimated effect,
        where each label lists its alias chain (e.g. ``"A=BCD"`` in a
        resolution-IV half fraction): the contrast measures the *sum*
        of the aliased effects, which is all a fraction can resolve.
        Responses must be in the standard order of :meth:`runs`.
        """
        y = np.asarray(responses, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if y.shape[0] != self.n_runs:
            raise ValueError(
                f"expected {self.n_runs} runs in standard order, got {y.shape[0]}"
            )
        run_means = y.mean(axis=1)
        # Full effect columns over the *base* factorial.
        base_labels, base_cols = self._base.effect_columns()
        out: Dict[str, float] = {}
        for label, col in zip(base_labels, base_cols.T):
            q = float(col @ run_means / self.n_runs)
            chain = [label] + self.aliases(label)
            # Keep only the shortest few words for readability.
            chain = sorted(set(chain), key=lambda w: (len(w), w))
            out["=".join(chain)] = q
        return out

    def aliases(self, effect: str) -> List[str]:
        """Effects confounded with *effect* under the defining relation."""
        out = set()
        for word in self.defining_relation():
            if word == "I":
                continue
            out.add(_word_mul(effect, word))
        out.discard(effect)
        return sorted(out, key=lambda w: (len(w), w))
