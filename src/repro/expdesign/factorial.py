"""2^k·r factorial experiment designs (Jain, chapters 17–18).

The paper evaluates each architecture with a 2^k·r factorial design:
k factors at two levels each, r repetitions per cell, followed by an
allocation-of-variation analysis (:mod:`repro.expdesign.effects`).

:class:`FactorialDesign` enumerates the 2^k runs in standard (Yates)
order and produces the sign table including all interaction columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["Factor", "FactorialDesign"]


@dataclass(frozen=True)
class Factor:
    """A two-level experimental factor.

    ``label`` is the single-letter code used in the paper's figures
    (A = number of nodes, B = sampling period, ...).
    """

    name: str
    low: Any
    high: Any
    label: str = ""

    def level(self, sign: int) -> Any:
        """Value at the −1 (low) or +1 (high) level."""
        if sign not in (-1, 1):
            raise ValueError("sign must be -1 or +1")
        return self.low if sign == -1 else self.high


class FactorialDesign:
    """A full 2^k factorial over the given factors."""

    def __init__(self, factors: Sequence[Factor]):
        if not factors:
            raise ValueError("need at least one factor")
        labels = [f.label or f.name[0].upper() for f in factors]
        if len(set(labels)) != len(labels):
            raise ValueError(f"factor labels must be unique, got {labels}")
        self.factors = list(factors)
        self.labels = labels

    @property
    def k(self) -> int:
        return len(self.factors)

    @property
    def n_runs(self) -> int:
        return 2**self.k

    # ------------------------------------------------------------------
    def signs(self) -> np.ndarray:
        """(2^k, k) matrix of ±1 in standard order (first factor fastest)."""
        out = np.empty((self.n_runs, self.k), dtype=int)
        for i, combo in enumerate(product((-1, 1), repeat=self.k)):
            # product varies the *last* element fastest; reverse for Yates.
            out[i] = combo[::-1]
        return out

    def runs(self) -> Iterator[Dict[str, Any]]:
        """Yield factor-name → value mappings for all 2^k runs."""
        for row in self.signs():
            yield {
                f.name: f.level(int(s)) for f, s in zip(self.factors, row)
            }

    def configs(self, make_config: Callable[[Dict[str, Any]], Any]) -> List[Any]:
        """Materialize one experiment cell description per run.

        *make_config* maps a run's ``{factor name: value}`` dict to
        whatever the experiment layer schedules (typically a
        ``SimulationConfig``); the list is in standard (Yates) order so
        row *i* lines up with ``signs()[i]`` and ``run_label(i)``.  This
        is the seam the parallel experiment engine uses: the design
        enumerates cells, ``repro.experiments.run_design`` batches them.
        """
        return [make_config(run) for run in self.runs()]

    # ------------------------------------------------------------------
    def effect_columns(self) -> Tuple[List[str], np.ndarray]:
        """Labels and sign columns for all main effects and interactions.

        Returns ``(labels, matrix)`` where matrix has shape
        ``(2^k, 2^k - 1)``: one column per effect (A, B, AB, C, AC, ...),
        ordered by interaction order then position.
        """
        base = self.signs()
        labels: List[str] = []
        cols: List[np.ndarray] = []
        for order in range(1, self.k + 1):
            for idxs in combinations(range(self.k), order):
                labels.append("".join(self.labels[i] for i in idxs))
                col = np.ones(self.n_runs, dtype=int)
                for i in idxs:
                    col = col * base[:, i]
                cols.append(col)
        return labels, np.column_stack(cols)

    def run_label(self, index: int) -> str:
        """Compact description of run *index* (e.g. ``A+ B- C+``)."""
        row = self.signs()[index]
        return " ".join(
            f"{lab}{'+' if s > 0 else '-'}" for lab, s in zip(self.labels, row)
        )
