"""``repro.expdesign`` — 2^k·r factorial designs and their analysis.

Provides the paper's §4.1 methodology: full factorial designs,
allocation of variation (what the paper presents as "principal
component analysis"), true PCA as an independent cross-check, and
t-based confidence intervals on simulation output.
"""

from .batchmeans import BatchMeansResult, batch_means, lag1_autocorrelation
from .confidence import MeanCI, mean_confidence_interval, repetitions_needed
from .effects import EffectShare, VariationResult, allocate_variation
from .factorial import Factor, FactorialDesign
from .fractional import FractionalFactorialDesign
from .pca import PCAResult, pca

__all__ = [
    "Factor",
    "FactorialDesign",
    "FractionalFactorialDesign",
    "batch_means",
    "BatchMeansResult",
    "lag1_autocorrelation",
    "allocate_variation",
    "VariationResult",
    "EffectShare",
    "pca",
    "PCAResult",
    "mean_confidence_interval",
    "MeanCI",
    "repetitions_needed",
]
