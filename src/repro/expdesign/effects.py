"""Allocation of variation for 2^k·r designs — the paper's "PCA".

What the paper calls principal component analysis (Figures 16, 20, 25;
Tables 7, 8) is Jain's *allocation of variation*: in a 2^k·r factorial
design, the total variation of the response decomposes exactly into a
sum of squares per effect (main effects and interactions) plus
experimental error, and each effect's share quantifies its importance:

    q_e  = (1/2^k) Σ_i sign_e(i) · ȳ_i          (effect estimate)
    SS_e = 2^k · r · q_e²
    SSE  = Σ_i Σ_j (y_ij − ȳ_i)²
    SST  = Σ SS_e + SSE

:func:`allocate_variation` returns the fractions and, when r > 1,
confidence intervals on the effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .factorial import FactorialDesign

__all__ = ["EffectShare", "VariationResult", "allocate_variation"]


@dataclass(frozen=True)
class EffectShare:
    """One effect's contribution to the response variation."""

    label: str
    effect: float  # q_e: half the change from low to high level
    sum_of_squares: float
    fraction: float  # share of total variation, in [0, 1]
    ci_low: Optional[float] = None  # CI on the effect (needs r > 1)
    ci_high: Optional[float] = None

    @property
    def significant(self) -> bool:
        """Whether the CI excludes zero (always True without a CI)."""
        if self.ci_low is None or self.ci_high is None:
            return True
        return not (self.ci_low <= 0.0 <= self.ci_high)


@dataclass
class VariationResult:
    """Full allocation-of-variation outcome."""

    mean: float
    total_variation: float
    shares: List[EffectShare] = field(default_factory=list)
    error_fraction: float = 0.0

    def fraction(self, label: str) -> float:
        for s in self.shares:
            if s.label == label:
                return s.fraction
        raise KeyError(label)

    def top(self, n: int = 3) -> List[EffectShare]:
        """The n largest contributors, descending."""
        return sorted(self.shares, key=lambda s: s.fraction, reverse=True)[:n]

    def as_percentages(self) -> Dict[str, float]:
        """Label → percentage map, plus ``"error"`` (the figures' 'Rest')."""
        out = {s.label: 100.0 * s.fraction for s in self.shares}
        out["error"] = 100.0 * self.error_fraction
        return out

    def format(self) -> str:
        """Render like the paper's stacked-bar annotations."""
        parts = [
            f"{s.label} {100 * s.fraction:.1f}%"
            for s in sorted(self.shares, key=lambda s: s.fraction, reverse=True)
            if s.fraction >= 0.005
        ]
        if self.error_fraction >= 0.005:
            parts.append(f"error {100 * self.error_fraction:.1f}%")
        return " | ".join(parts)


def allocate_variation(
    design: FactorialDesign,
    responses: Sequence[Sequence[float]],
    confidence: float = 0.90,
) -> VariationResult:
    """Allocate response variation across all 2^k − 1 effects.

    Parameters
    ----------
    design:
        The factorial design whose standard-order runs produced the data.
    responses:
        ``2^k`` rows of ``r`` repetitions each (r may be 1).
    confidence:
        Level for the effect CIs when r > 1.
    """
    y = np.asarray(responses, dtype=float)
    if y.ndim == 1:
        y = y[:, None]
    if not np.isfinite(y).all():
        raise ValueError(
            "responses contain NaN/inf — a design cell produced no "
            "observations (e.g. a batch never completed within the "
            "simulated duration); lengthen the run or adjust the levels"
        )
    n_runs, r = y.shape
    if n_runs != design.n_runs:
        raise ValueError(
            f"expected {design.n_runs} runs in standard order, got {n_runs}"
        )

    run_means = y.mean(axis=1)
    grand_mean = float(run_means.mean())
    labels, columns = design.effect_columns()

    effects = columns.T @ run_means / n_runs  # q_e for each effect
    ss_effects = n_runs * r * effects**2
    sse = float(((y - run_means[:, None]) ** 2).sum())
    sst = float(ss_effects.sum() + sse)

    # CI on effects: s_e = sqrt(SSE / (2^k (r-1))) / sqrt(2^k r).
    ci_half: Optional[float] = None
    if r > 1 and sse > 0:
        from scipy.stats import t as t_dist

        dof = n_runs * (r - 1)
        s2e = sse / dof
        se_effect = math.sqrt(s2e / (n_runs * r))
        ci_half = float(t_dist.ppf(0.5 + confidence / 2.0, dof)) * se_effect

    shares = []
    for label, q, ss in zip(labels, effects, ss_effects):
        lo = hi = None
        if ci_half is not None:
            lo, hi = float(q - ci_half), float(q + ci_half)
        shares.append(
            EffectShare(
                label=label,
                effect=float(q),
                sum_of_squares=float(ss),
                fraction=float(ss / sst) if sst > 0 else 0.0,
                ci_low=lo,
                ci_high=hi,
            )
        )
    return VariationResult(
        mean=grand_mean,
        total_variation=sst,
        shares=shares,
        error_fraction=float(sse / sst) if sst > 0 else 0.0,
    )
