"""Principal component analysis proper (SVD-based).

The paper's "PCA" figures are allocation of variation
(:mod:`repro.expdesign.effects`); this module provides the real thing
for completeness — it is used in the validation experiments to confirm
that the dominant axis of variation in the measured overhead matrix
aligns with the forwarding-policy factor, an independent check of the
factorial attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["PCAResult", "pca"]


@dataclass
class PCAResult:
    """Outcome of a PCA on an (observations × variables) matrix."""

    mean: np.ndarray
    scale: np.ndarray
    components: np.ndarray  # (n_components, n_variables), rows unit norm
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    scores: np.ndarray  # projected observations

    @property
    def n_components(self) -> int:
        return self.components.shape[0]

    def loading(self, component: int, variable: int) -> float:
        """Loading of *variable* on *component*."""
        return float(self.components[component, variable])

    def dominant_variable(self, component: int = 0) -> int:
        """Index of the variable with the largest |loading| on a component."""
        return int(np.argmax(np.abs(self.components[component])))


def pca(
    data: Sequence[Sequence[float]],
    n_components: Optional[int] = None,
    standardize: bool = True,
) -> PCAResult:
    """PCA via SVD of the (centered, optionally standardized) data."""
    X = np.asarray(data, dtype=float)
    if X.ndim != 2:
        raise ValueError("data must be 2-D (observations × variables)")
    n, p = X.shape
    if n < 2:
        raise ValueError("need at least two observations")
    mean = X.mean(axis=0)
    Xc = X - mean
    if standardize:
        scale = Xc.std(axis=0, ddof=1)
        scale[scale == 0] = 1.0
        Xc = Xc / scale
    else:
        scale = np.ones(p)
    _, s, vt = np.linalg.svd(Xc, full_matrices=False)
    var = s**2 / (n - 1)
    total = float(var.sum())
    ratio = var / total if total > 0 else np.zeros_like(var)
    k = min(n_components or p, vt.shape[0])
    return PCAResult(
        mean=mean,
        scale=scale,
        components=vt[:k],
        explained_variance=var[:k],
        explained_variance_ratio=ratio[:k],
        scores=Xc @ vt[:k].T,
    )
