"""Operational laws used by the paper's back-of-the-envelope analysis.

Section 3 applies the classic operational laws (Denning & Buzen; the
paper cites Jain and Lazowska et al.) under a flow-balance assumption:

* utilization law  U = X · D,
* forced-flow law  X_k = V_k · X,
* Little's law     N = X · R,
* the open single-server residence time R = D / (1 - U).

The helpers here keep the unit discipline (times in µs, rates in 1/µs)
and saturate gracefully: a utilization ≥ 1 yields an infinite residence
time instead of a negative one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "utilization_law",
    "forced_flow_law",
    "littles_law_population",
    "littles_law_response",
    "residence_time_open",
    "ISDemands",
]


def utilization_law(throughput: float, demand: float) -> float:
    """U = X · D (both in consistent units)."""
    if throughput < 0 or demand < 0:
        raise ValueError("throughput and demand must be non-negative")
    return throughput * demand


def forced_flow_law(system_throughput: float, visit_ratio: float) -> float:
    """X_k = V_k · X."""
    if visit_ratio < 0:
        raise ValueError("visit ratio must be non-negative")
    return system_throughput * visit_ratio


def littles_law_population(throughput: float, response: float) -> float:
    """N = X · R."""
    return throughput * response


def littles_law_response(population: float, throughput: float) -> float:
    """R = N / X."""
    if throughput <= 0:
        return math.inf
    return population / throughput


def residence_time_open(demand: float, utilization: float) -> float:
    """R = D / (1 − U) for an open single-server queue; ∞ at saturation."""
    if demand < 0:
        raise ValueError("demand must be non-negative")
    if utilization >= 1.0:
        return math.inf
    return demand / (1.0 - utilization)


@dataclass(frozen=True)
class ISDemands:
    """Per-forwarding-operation service demands of the IS, µs.

    ``d_pd_cpu`` — daemon CPU per forwarded unit; ``d_pd_network`` —
    network occupancy per forward; ``d_main_cpu`` — main-process CPU per
    received unit; ``d_pdm_cpu`` — merge CPU at a non-leaf tree daemon.

    Two constructions are provided:

    * :meth:`paper` — Table 2 verbatim (the paper's analytic inputs):
      demands do **not** grow with the batch size, so utilization scales
      exactly as 1/b, which is what Figures 9–15 plot.
    * :meth:`from_cost_models` — the simulator's decomposition, where a
      batch of b samples costs ``collect·b + forward`` daemon CPU etc.;
      used when comparing analytic curves against simulation output.
    """

    d_pd_cpu: float
    d_pd_network: float
    d_main_cpu: float
    d_pdm_cpu: float

    @classmethod
    def paper(cls) -> "ISDemands":
        return cls(
            d_pd_cpu=267.0,
            d_pd_network=71.0,
            d_main_cpu=3208.0,
            d_pdm_cpu=267.0,
        )

    @classmethod
    def from_cost_models(cls, daemon_costs, main_costs, batch_size: int) -> "ISDemands":
        """Demands per batch under the simulator's cost decomposition."""
        b = int(batch_size)
        d_pd = (
            daemon_costs.collection_cpu.mean * b
            + daemon_costs.forward_cpu.mean
            + daemon_costs.per_sample_batch_cpu * b
        )
        merge = (
            daemon_costs.merge_cpu.mean
            if daemon_costs.merge_cpu is not None
            else daemon_costs.forward_cpu.mean
        )
        return cls(
            d_pd_cpu=d_pd,
            d_pd_network=71.0 + daemon_costs.per_sample_network * max(0, b - 1),
            d_main_cpu=main_costs.receive_cpu.mean + main_costs.per_sample_cpu.mean * b,
            d_pdm_cpu=merge,
        )
