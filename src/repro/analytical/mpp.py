"""Operational analysis of the MPP case — equations (13)–(16).

Direct forwarding reuses the NOW equations (1)–(6) on a contention-free
network.  Binary-tree forwarding adds merge work at non-leaf daemons:
with n a power of two there are n/2 leaves (λ_m = 0), n/2 − 1 nodes
with two children (λ_m = 2λ), and one with a single child (λ_m = λ):

    μ_Pd,CPU = [ (n/2) λ D_Pd,CPU
               + (n/2 − 1)(λ D_Pd,CPU + 2λ D_Pdm,CPU)
               + λ D_Pdm,CPU ] / n                      (13)
    μ_Paradyn,CPU = 2 λ D_Paradyn,CPU                   (14)
    μ_Pd,Network = [ (n/2) λ D_Pd,Net
               + (n/2 − 1)(λ D_Pd,Net + 2λ D_Pd,Net)
               + λ D_Pd,Net ] / n                       (15)*
    R = (D_Pd,CPU + D_Pdm,CPU)/(1 − μ_Pd,CPU)
        + D_Pd,Network/(1 − μ_Pd,Network)               (16)

(*) Equation (15) as printed contains a ``λ D_Pd,CPU`` term inside the
network expression; we implement the evident intent (``λ D_Pd,Network``)
and note the typo.  The merged-sample network occupancy equals the
local one (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .now import NOWAnalyticalModel
from .operational import ISDemands, residence_time_open

__all__ = ["MPPAnalyticalModel"]


@dataclass
class MPPAnalyticalModel:
    """Analytic IS metrics for an MPP, direct or binary-tree forwarding."""

    nodes: int = 256
    sampling_period: float = 40_000.0
    batch_size: int = 1
    app_processes_per_node: int = 1
    tree: bool = False
    demands: ISDemands = field(default_factory=ISDemands.paper)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        self._direct = NOWAnalyticalModel(
            nodes=self.nodes,
            sampling_period=self.sampling_period,
            batch_size=self.batch_size,
            app_processes_per_node=self.app_processes_per_node,
            demands=self.demands,
        )

    # ------------------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """λ per node (eq 1), 1/µs."""
        return self._direct.arrival_rate

    def pd_cpu_utilization(self) -> float:
        """μ_Pd,CPU per node — eq (2) direct, eq (13) tree."""
        if not self.tree:
            return self._direct.pd_cpu_utilization()
        n = self.nodes
        lam = self.arrival_rate
        d_pd = self.demands.d_pd_cpu
        d_pdm = self.demands.d_pdm_cpu
        if n < 2:
            return lam * d_pd
        leaves = (n / 2) * lam * d_pd
        two_children = max(0.0, n / 2 - 1) * (lam * d_pd + 2 * lam * d_pdm)
        one_child = lam * d_pdm + lam * d_pd
        # The printed equation counts the single-child node's local work
        # inside the one_child term implicitly; we include it explicitly
        # so every node contributes its local λ·D_Pd once.
        return (leaves + two_children + one_child) / n

    def paradyn_cpu_utilization(self) -> float:
        """μ_Paradyn,CPU — eq (5) direct, eq (14) tree."""
        if not self.tree:
            return self._direct.paradyn_cpu_utilization()
        return 2.0 * self.arrival_rate * self.demands.d_main_cpu

    def pd_network_utilization(self) -> float:
        """μ_Pd,Network — eq (3) direct, eq (15, corrected) tree."""
        if not self.tree:
            return self._direct.pd_network_utilization()
        n = self.nodes
        lam = self.arrival_rate
        d_net = self.demands.d_pd_network
        if n < 2:
            return lam * d_net
        leaves = (n / 2) * lam * d_net
        two_children = max(0.0, n / 2 - 1) * (lam * d_net + 2 * lam * d_net)
        one_child = lam * d_net + lam * d_net
        return (leaves + two_children + one_child) / n

    def monitoring_latency(self) -> float:
        """R(λ), µs — eq (4) direct, eq (16) tree."""
        if not self.tree:
            return self._direct.monitoring_latency()
        return residence_time_open(
            self.demands.d_pd_cpu + self.demands.d_pdm_cpu,
            self.pd_cpu_utilization(),
        ) + residence_time_open(
            self.demands.d_pd_network, self.pd_network_utilization()
        )

    def app_cpu_utilization(self) -> float:
        """μ_Application,CPU per node (eq 6 applied to eq 13's μ_Pd)."""
        return 1.0 - self.pd_cpu_utilization()
