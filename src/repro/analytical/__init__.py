"""``repro.analytical`` — the paper's Section 3 operational analysis.

Implements equations (1)–(16): arrival-rate definitions, utilization /
forced-flow / Little's laws, per-architecture models (NOW, SMP, MPP
with direct or binary-tree forwarding), plus exact MVA for the closed
application workload the paper discusses and dismisses.
"""

from .mpp import MPPAnalyticalModel
from .mva import MVACenter, MVAResult, mva
from .now import NOWAnalyticalModel
from .operational import (
    ISDemands,
    forced_flow_law,
    littles_law_population,
    littles_law_response,
    residence_time_open,
    utilization_law,
)
from .smp import SMPAnalyticalModel

__all__ = [
    "utilization_law",
    "forced_flow_law",
    "littles_law_population",
    "littles_law_response",
    "residence_time_open",
    "ISDemands",
    "mva",
    "MVACenter",
    "MVAResult",
    "NOWAnalyticalModel",
    "SMPAnalyticalModel",
    "MPPAnalyticalModel",
]
