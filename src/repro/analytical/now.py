"""Operational analysis of the NOW case — equations (1)–(6).

The Paradyn-daemon workload is treated as an open (transaction)
workload with per-node arrival rate

    λ = 1/T · 1/b · m                                   (1)

where T is the sampling period, b the batch size, and m the number of
application processes per node.  The remaining metrics follow from the
utilization law, forced flow, and Little's law under flow balance:

    μ_Pd,CPU      = λ · D_Pd,CPU                        (2)
    μ_Pd,Network  = n λ · D_Pd,Network                  (3)
    R             = D_CPU/(1−μ_CPU) + D_Net/(1−μ_Net)   (4)
    μ_Paradyn,CPU = n λ · D_Paradyn,CPU                 (5)
    μ_App,CPU     = 1 − μ_Pd,CPU                        (6)

Equation (6) is the paper's own caveat-laden approximation (it ignores
the application's network blocking), reproduced as printed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .operational import ISDemands, residence_time_open

__all__ = ["NOWAnalyticalModel"]


@dataclass
class NOWAnalyticalModel:
    """Analytic IS metrics for a network-of-workstations system."""

    nodes: int = 8
    sampling_period: float = 40_000.0  # µs
    batch_size: int = 1
    app_processes_per_node: int = 1
    demands: ISDemands = field(default_factory=ISDemands.paper)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.sampling_period <= 0:
            raise ValueError("sampling_period must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.app_processes_per_node < 1:
            raise ValueError("app_processes_per_node must be >= 1")

    # ------------------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """λ — Pd forwarding-request arrival rate per node, 1/µs (eq 1)."""
        return (
            1.0
            / self.sampling_period
            / self.batch_size
            * self.app_processes_per_node
        )

    def pd_cpu_utilization(self) -> float:
        """μ_Pd,CPU per node (eq 2)."""
        return self.arrival_rate * self.demands.d_pd_cpu

    def pd_network_utilization(self) -> float:
        """μ_Pd,Network of the shared network (eq 3)."""
        return self.nodes * self.arrival_rate * self.demands.d_pd_network

    def monitoring_latency(self) -> float:
        """R(λ) per forwarded unit, µs (eq 4)."""
        return residence_time_open(
            self.demands.d_pd_cpu, self.pd_cpu_utilization()
        ) + residence_time_open(
            self.demands.d_pd_network, self.pd_network_utilization()
        )

    def paradyn_cpu_utilization(self) -> float:
        """μ_Paradyn,CPU of the main process host (eq 5)."""
        return self.nodes * self.arrival_rate * self.demands.d_main_cpu

    def app_cpu_utilization(self) -> float:
        """μ_Application,CPU per node (eq 6) — an upper bound, see §3."""
        return 1.0 - self.pd_cpu_utilization()
