"""Operational analysis of the SMP case — equations (7)–(12).

The SMP pools ``n`` CPUs; multiple Paradyn daemons may share them, so
the arrival-rate definition gains a daemon factor (§3.2):

    λ = 1/T · 1/b · m · k

with m application processes and k daemons.  (As the paper defines it,
adding daemons multiplies the *IS request* rate — each daemon handles
its share of the samples but the rate is expressed per-daemon-request;
we implement the equation as printed.)  Then:

    μ_Pd,CPU      = λ · D_Pd,CPU / n                    (7)
    μ_Paradyn,CPU = λ · D_Paradyn,CPU / n               (8)
    μ_IS,CPU      = (k μ_Pd + μ_Paradyn)/(k + 1)        (9)
    μ_App,CPU     = 1 − μ_IS,CPU                        (10)
    μ_Pd,Bus      = λ · D_Pd,Bus                        (11)
    R             = (D_Pd,CPU/n)/(1−μ_Pd,CPU)
                    + D_Pd,Bus/(1−μ_Pd,Bus)             (12)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .operational import ISDemands, residence_time_open

__all__ = ["SMPAnalyticalModel"]


@dataclass
class SMPAnalyticalModel:
    """Analytic IS metrics for a shared-memory multiprocessor."""

    nodes: int = 16  # number of CPUs
    sampling_period: float = 40_000.0
    batch_size: int = 1
    app_processes: int = 32  # total on the SMP
    daemons: int = 1
    demands: ISDemands = field(default_factory=ISDemands.paper)
    #: Bus occupancy per forward, µs (defaults to the network demand).
    d_pd_bus: float | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.daemons < 1 or self.app_processes < 1:
            raise ValueError("nodes, daemons, app_processes must be >= 1")
        if self.sampling_period <= 0 or self.batch_size < 1:
            raise ValueError("bad sampling_period / batch_size")
        if self.d_pd_bus is None:
            self.d_pd_bus = self.demands.d_pd_network

    # ------------------------------------------------------------------
    @property
    def arrival_rate(self) -> float:
        """λ with the SMP daemon factor (§3.2), 1/µs."""
        return (
            1.0
            / self.sampling_period
            / self.batch_size
            * self.app_processes
            * self.daemons
        )

    def pd_cpu_utilization(self) -> float:
        """μ_Pd,CPU (eq 7)."""
        return self.arrival_rate * self.demands.d_pd_cpu / self.nodes

    def paradyn_cpu_utilization(self) -> float:
        """μ_Paradyn,CPU (eq 8)."""
        return self.arrival_rate * self.demands.d_main_cpu / self.nodes

    def is_cpu_utilization(self) -> float:
        """μ_IS,CPU (eq 9)."""
        k = self.daemons
        return (
            k * self.pd_cpu_utilization() + self.paradyn_cpu_utilization()
        ) / (k + 1)

    def app_cpu_utilization(self) -> float:
        """μ_Application,CPU (eq 10)."""
        return 1.0 - self.is_cpu_utilization()

    def bus_utilization(self) -> float:
        """μ_Pd,Bus (eq 11)."""
        return self.arrival_rate * self.d_pd_bus

    def monitoring_latency(self) -> float:
        """R(λ), µs (eq 12)."""
        return residence_time_open(
            self.demands.d_pd_cpu / self.nodes, self.pd_cpu_utilization()
        ) + residence_time_open(self.d_pd_bus, self.bus_utilization())
