"""Exact Mean Value Analysis for closed single-class queueing networks.

Section 3 notes that the application workload forms a *closed* network
(a process issues one occupancy request at a time) and that MVA could
in principle yield the application throughput — before dismissing it
because it cannot capture the IS/application CPU contention.  We
implement exact MVA anyway: it provides the closed-network half of the
mixed model, is used in tests as an independent cross-check of the
simulator's uninstrumented application throughput, and documents
*why* the paper fell back to equation (6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["MVACenter", "MVAResult", "mva"]


@dataclass(frozen=True)
class MVACenter:
    """One service center: name, per-visit service demand (µs), type.

    ``delay=True`` marks an infinite-server (pure delay) center — e.g.
    a contention-free network — where no queueing occurs.
    """

    name: str
    demand: float
    delay: bool = False


@dataclass
class MVAResult:
    """Outcome of exact MVA at population N."""

    population: int
    throughput: float  # customers per µs
    response_time: float  # µs per cycle through all centers
    center_residence: List[float]
    center_queue: List[float]
    center_utilization: List[float]

    def utilization(self, name: str, centers: Sequence[MVACenter]) -> float:
        for i, c in enumerate(centers):
            if c.name == name:
                return self.center_utilization[i]
        raise KeyError(name)


def mva(
    centers: Sequence[MVACenter],
    population: int,
    think_time: float = 0.0,
) -> MVAResult:
    """Exact single-class MVA (Reiser & Lavenberg recursion).

    Parameters
    ----------
    centers:
        Queueing/delay centers with per-cycle demands ``D_k``.
    population:
        Number of circulating customers N ≥ 1.
    think_time:
        Pure delay Z between cycles, µs.
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if any(c.demand < 0 for c in centers):
        raise ValueError("demands must be non-negative")
    K = len(centers)
    queue = [0.0] * K
    throughput = 0.0
    residence = [0.0] * K
    for n in range(1, population + 1):
        for k, c in enumerate(centers):
            if c.delay:
                residence[k] = c.demand
            else:
                residence[k] = c.demand * (1.0 + queue[k])
        total_r = sum(residence)
        throughput = n / (think_time + total_r) if (think_time + total_r) > 0 else 0.0
        queue = [throughput * r for r in residence]
    utilization = [throughput * c.demand for c in centers]
    return MVAResult(
        population=population,
        throughput=throughput,
        response_time=sum(residence),
        center_residence=list(residence),
        center_queue=list(queue),
        center_utilization=utilization,
    )
