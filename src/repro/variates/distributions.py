"""Probability distributions used by the ROCC workload model.

The paper (Table 2) parameterizes request lengths with **exponential**
and **lognormal** distributions and considers **Weibull** as a fitting
candidate (Figure 8).  Distributions here are parameterized the way the
paper reports them — e.g. ``Lognormal(mean, std)`` takes the *observed*
mean and standard deviation of the data, not the log-space parameters —
so model code can transcribe Table 2 literally.

Every distribution supports scalar and vectorized sampling from a
``numpy.random.Generator``, plus pdf/cdf/ppf and exact moments, which
the fitting and goodness-of-fit modules rely on.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

import numpy as np

__all__ = [
    "Distribution",
    "Deterministic",
    "Uniform",
    "Exponential",
    "Erlang",
    "Lognormal",
    "Weibull",
    "Normal",
    "Hyperexponential",
    "Pareto",
    "Empirical",
]

ArrayLike = Union[float, np.ndarray]


class Distribution(ABC):
    """A one-dimensional distribution over non-negative reals."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abstractmethod
    def var(self) -> float:
        """Variance."""

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.var)

    @property
    def support_min(self) -> float:
        """Greatest lower bound of the support (infimum).

        Used by the parallel-kernel partitioner to derive conservative
        lookahead from link latency distributions: no draw is ever below
        this value.  The base implementation returns 0.0 — every
        distribution here is over non-negative reals, so zero is always
        a safe (if loose) bound; subclasses with a tighter known floor
        (:class:`Deterministic`, :class:`Uniform`) override it.
        """
        return 0.0

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        """Draw one value (``size=None``) or an array of ``size`` values."""

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* values as a float64 array (the hot block-refill path).

        Consumes exactly the same generator state as ``sample(rng, n)``,
        so block-buffered and per-call sampling yield identical
        sequences.  Subclasses whose vectorized draw is already a float64
        ndarray override this to skip the ``asarray`` normalization.
        """
        return np.asarray(self.sample(rng, n), dtype=float)

    @abstractmethod
    def pdf(self, x: ArrayLike) -> ArrayLike:
        """Probability density at *x*."""

    @abstractmethod
    def cdf(self, x: ArrayLike) -> ArrayLike:
        """Cumulative distribution at *x*."""

    @abstractmethod
    def ppf(self, q: ArrayLike) -> ArrayLike:
        """Quantile function (inverse cdf) at probability *q*."""

    def loglik(self, data: np.ndarray) -> float:
        """Total log-likelihood of *data* under this distribution."""
        with np.errstate(divide="ignore"):
            return float(np.sum(np.log(self.pdf(np.asarray(data, dtype=float)))))

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(mean={self.mean:.6g}, std={self.std:.6g})"


class Deterministic(Distribution):
    """Degenerate distribution: always returns ``value``."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError("value must be non-negative")
        self.value = float(value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def var(self) -> float:
        return 0.0

    @property
    def support_min(self) -> float:
        return self.value

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        if size is None:
            return self.value
        return np.full(size, self.value)

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # No randomness to draw; rng state is untouched either way.
        return np.full(n, self.value)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.where(x == self.value, np.inf, 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.where(x >= self.value, 1.0, 0.0)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        q = np.asarray(q, dtype=float)
        return np.full_like(q, self.value)


class Uniform(Distribution):
    """Continuous uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if high <= low:
            raise ValueError("high must exceed low")
        self.low = float(low)
        self.high = float(high)

    @property
    def support_min(self) -> float:
        return self.low

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def var(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return rng.uniform(self.low, self.high, size)

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, n)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.low) / (self.high - self.low), 0.0, 1.0)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        q = np.asarray(q, dtype=float)
        return self.low + q * (self.high - self.low)


class Exponential(Distribution):
    """Exponential distribution parameterized by its **mean** (as in Table 2)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    @property
    def rate(self) -> float:
        """Rate parameter λ = 1/mean."""
        return 1.0 / self._mean

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def var(self) -> float:
        return self._mean * self._mean

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return rng.exponential(self._mean, size)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        lam = self.rate
        return np.where(x >= 0, lam * np.exp(-lam * x), 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, 1.0 - np.exp(-self.rate * x), 0.0)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        q = np.asarray(q, dtype=float)
        return -self._mean * np.log1p(-q)


class Erlang(Distribution):
    """Erlang (gamma with integer shape ``k``) with the given **mean**."""

    def __init__(self, k: int, mean: float):
        if k < 1:
            raise ValueError("k must be >= 1")
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.k = int(k)
        self._mean = float(mean)
        self.theta = self._mean / self.k  # scale of each stage

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def var(self) -> float:
        return self.k * self.theta**2

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return rng.gamma(self.k, self.theta, size)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        from scipy.stats import gamma

        return gamma.pdf(np.asarray(x, dtype=float), self.k, scale=self.theta)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        from scipy.stats import gamma

        return gamma.cdf(np.asarray(x, dtype=float), self.k, scale=self.theta)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        from scipy.stats import gamma

        return gamma.ppf(np.asarray(q, dtype=float), self.k, scale=self.theta)


class Lognormal(Distribution):
    """Lognormal parameterized by the **observed mean and std** of the data.

    The paper writes ``lognormal(a, b)`` for "a lognormal random variable
    with mean *a* and [standard deviation] *b*" (Table 2).  Internally we
    solve for the log-space parameters::

        sigma^2 = ln(1 + (std/mean)^2)
        mu      = ln(mean) - sigma^2 / 2
    """

    def __init__(self, mean: float, std: float):
        if mean <= 0:
            raise ValueError("mean must be positive")
        if std < 0:
            raise ValueError("std must be non-negative")
        self._mean = float(mean)
        self._std = float(std)
        cv2 = (std / mean) ** 2
        self.sigma2 = math.log1p(cv2)
        self.sigma = math.sqrt(self.sigma2)
        self.mu = math.log(mean) - 0.5 * self.sigma2

    @classmethod
    def from_log_params(cls, mu: float, sigma: float) -> "Lognormal":
        """Construct from log-space parameters (μ, σ of the underlying normal)."""
        mean = math.exp(mu + 0.5 * sigma * sigma)
        var = (math.exp(sigma * sigma) - 1.0) * math.exp(2 * mu + sigma * sigma)
        return cls(mean, math.sqrt(var))

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def var(self) -> float:
        return self._std * self._std

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return rng.lognormal(self.mu, self.sigma, size)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        xp = x[pos] if x.ndim else (x if x > 0 else None)
        if x.ndim:
            if self.sigma == 0:
                return np.where(x == self._mean, np.inf, 0.0)
            z = (np.log(x[pos]) - self.mu) / self.sigma
            out[pos] = np.exp(-0.5 * z * z) / (
                x[pos] * self.sigma * math.sqrt(2 * math.pi)
            )
            return out
        if xp is None or self.sigma == 0:
            return 0.0
        z = (math.log(xp) - self.mu) / self.sigma
        return math.exp(-0.5 * z * z) / (xp * self.sigma * math.sqrt(2 * math.pi))

    def cdf(self, x: ArrayLike) -> ArrayLike:
        from scipy.special import ndtr

        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore"):
            z = (np.log(np.maximum(x, 1e-300)) - self.mu) / max(self.sigma, 1e-300)
        return np.where(x > 0, ndtr(z), 0.0)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        from scipy.special import ndtri

        q = np.asarray(q, dtype=float)
        return np.exp(self.mu + self.sigma * ndtri(q))


class Weibull(Distribution):
    """Weibull with shape ``k`` and scale ``lam`` (Figure 8 fit candidate)."""

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        self.shape = float(shape)
        self.scale = float(scale)

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def var(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1 * g1)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return self.scale * rng.weibull(self.shape, size)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(invalid="ignore", divide="ignore"):
            out = (k / lam) * (x / lam) ** (k - 1.0) * np.exp(-((x / lam) ** k))
        return np.where(x >= 0, np.nan_to_num(out, posinf=np.inf), 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, 1.0 - np.exp(-((np.maximum(x, 0) / self.scale) ** self.shape)), 0.0)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        q = np.asarray(q, dtype=float)
        return self.scale * (-np.log1p(-q)) ** (1.0 / self.shape)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape:.6g}, scale={self.scale:.6g})"


class Normal(Distribution):
    """Normal distribution, optionally truncated at zero when sampling.

    Request lengths are non-negative; ``truncate=True`` (default) clips
    samples at zero, matching how measurement noise is generated for the
    synthetic traces.  Moments reported are those of the *untruncated*
    normal.
    """

    def __init__(self, mean: float, std: float, truncate: bool = True):
        if std < 0:
            raise ValueError("std must be non-negative")
        self._mean = float(mean)
        self._std = float(std)
        self.truncate = truncate

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def var(self) -> float:
        return self._std * self._std

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        out = rng.normal(self._mean, self._std, size)
        if self.truncate:
            out = np.maximum(out, 0.0) if size is not None else max(out, 0.0)
        return out

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        s = max(self._std, 1e-300)
        z = (x - self._mean) / s
        return np.exp(-0.5 * z * z) / (s * math.sqrt(2 * math.pi))

    def cdf(self, x: ArrayLike) -> ArrayLike:
        from scipy.special import ndtr

        x = np.asarray(x, dtype=float)
        return ndtr((x - self._mean) / max(self._std, 1e-300))

    def ppf(self, q: ArrayLike) -> ArrayLike:
        from scipy.special import ndtri

        q = np.asarray(q, dtype=float)
        return self._mean + self._std * ndtri(q)


class Hyperexponential(Distribution):
    """Mixture of exponentials: phase *i* with probability ``p_i``.

    The standard model for service times with coefficient of variation
    above 1 (e.g. bimodal request lengths mixing short control messages
    with large data transfers); complements the Table-2 families when
    exploring workload sensitivity.
    """

    def __init__(self, probs: Sequence[float], means: Sequence[float]):
        p = np.asarray(probs, dtype=float)
        m = np.asarray(means, dtype=float)
        if p.shape != m.shape or p.ndim != 1 or p.size == 0:
            raise ValueError("probs and means must be equal-length 1-D")
        if (p < 0).any() or abs(p.sum() - 1.0) > 1e-9:
            raise ValueError("probs must be non-negative and sum to 1")
        if (m <= 0).any():
            raise ValueError("phase means must be positive")
        self.probs = p
        self.means = m

    @property
    def mean(self) -> float:
        return float(np.dot(self.probs, self.means))

    @property
    def var(self) -> float:
        second_moment = float(np.dot(self.probs, 2.0 * self.means**2))
        return second_moment - self.mean**2

    @property
    def cv(self) -> float:
        """Coefficient of variation (>= 1 for any hyperexponential)."""
        return self.std / self.mean

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        if size is None:
            phase = rng.choice(self.probs.size, p=self.probs)
            return float(rng.exponential(self.means[phase]))
        phases = rng.choice(self.probs.size, size=size, p=self.probs)
        return rng.exponential(self.means[phases])

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for p, m in zip(self.probs, self.means):
            out = out + np.where(x >= 0, p / m * np.exp(-np.maximum(x, 0) / m), 0.0)
        return np.where(x >= 0, out, 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for p, m in zip(self.probs, self.means):
            out = out + p * (1.0 - np.exp(-np.maximum(x, 0) / m))
        return np.where(x >= 0, out, 0.0)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        # No closed form: bisection on the cdf (vectorized).
        q = np.atleast_1d(np.asarray(q, dtype=float))
        lo = np.zeros_like(q)
        hi = np.full_like(q, float(self.means.max()))
        # Grow hi until cdf(hi) exceeds every q.
        for _ in range(200):
            mask = np.asarray(self.cdf(hi)) < q
            if not mask.any():
                break
            hi = np.where(mask, hi * 2.0, hi)
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            below = np.asarray(self.cdf(mid)) < q
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
        out = 0.5 * (lo + hi)
        return out if out.size > 1 else float(out[0])

    def __repr__(self) -> str:
        return (
            f"Hyperexponential(probs={self.probs.tolist()}, "
            f"means={self.means.tolist()})"
        )


class Pareto(Distribution):
    """Pareto (Lomax-style, ``x >= xm``) — heavy-tail fitting candidate."""

    def __init__(self, alpha: float, xm: float):
        if alpha <= 0 or xm <= 0:
            raise ValueError("alpha and xm must be positive")
        self.alpha = float(alpha)
        self.xm = float(xm)

    @property
    def mean(self) -> float:
        if self.alpha <= 1:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    @property
    def var(self) -> float:
        a = self.alpha
        if a <= 2:
            return math.inf
        return self.xm**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return self.xm * (1.0 + rng.pareto(self.alpha, size))

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = self.alpha * self.xm**self.alpha / np.maximum(x, 1e-300) ** (
                self.alpha + 1.0
            )
        return np.where(x >= self.xm, out, 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore"):
            out = 1.0 - (self.xm / np.maximum(x, 1e-300)) ** self.alpha
        return np.where(x >= self.xm, out, 0.0)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        q = np.asarray(q, dtype=float)
        return self.xm / (1.0 - q) ** (1.0 / self.alpha)

    def __repr__(self) -> str:
        return f"Pareto(alpha={self.alpha:.6g}, xm={self.xm:.6g})"


class Empirical(Distribution):
    """Resamples from an observed data set (with replacement).

    Used to drive "trace playback" style simulations where the fitted
    distribution is replaced by the raw measurements.
    """

    def __init__(self, data: Sequence[float]):
        arr = np.asarray(data, dtype=float)
        if arr.size == 0:
            raise ValueError("data must be non-empty")
        self.data = np.sort(arr)

    @property
    def mean(self) -> float:
        return float(np.mean(self.data))

    @property
    def var(self) -> float:
        return float(np.var(self.data, ddof=1)) if self.data.size > 1 else 0.0

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        out = rng.choice(self.data, size=size, replace=True)
        return float(out) if size is None else out

    def pdf(self, x: ArrayLike) -> ArrayLike:  # histogram density
        hist, edges = np.histogram(self.data, bins="auto", density=True)
        x = np.asarray(x, dtype=float)
        idx = np.clip(np.searchsorted(edges, x, side="right") - 1, 0, len(hist) - 1)
        inside = (x >= edges[0]) & (x <= edges[-1])
        return np.where(inside, hist[idx], 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self.data, x, side="right") / self.data.size

    def ppf(self, q: ArrayLike) -> ArrayLike:
        q = np.asarray(q, dtype=float)
        return np.quantile(self.data, q)

    def __repr__(self) -> str:
        return f"Empirical(n={self.data.size}, mean={self.mean:.6g})"
