"""Distribution fitting with maximum-likelihood estimators.

Implements the estimators the paper cites from Law & Kelton
(*Simulation Modeling and Analysis*):

* exponential — MLE mean is the sample mean;
* lognormal — MLE of (μ, σ) are mean/std of the log-data;
* Weibull — MLE via the one-dimensional profile equation for the shape,
  solved by bisection (Law & Kelton §6.5), scale in closed form;
* normal — sample mean/std.

:func:`fit_best` replicates the paper's model-selection step for
Figure 8 / Table 2: fit every candidate family and rank by
log-likelihood (optionally by Kolmogorov–Smirnov distance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .distributions import (
    Distribution,
    Exponential,
    Lognormal,
    Normal,
    Weibull,
)

__all__ = [
    "FitResult",
    "fit_exponential",
    "fit_lognormal",
    "fit_weibull",
    "fit_normal",
    "fit_best",
    "CANDIDATE_FAMILIES",
]


def _clean(data: Sequence[float], positive: bool = True) -> np.ndarray:
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size == 0:
        raise ValueError("cannot fit an empty data set")
    if positive:
        arr = arr[arr > 0]
        if arr.size == 0:
            raise ValueError("no positive observations to fit")
    return arr


def fit_exponential(data: Sequence[float]) -> Exponential:
    """MLE exponential fit: mean = sample mean."""
    arr = _clean(data)
    return Exponential(float(np.mean(arr)))


def fit_lognormal(data: Sequence[float]) -> Lognormal:
    """MLE lognormal fit via moments of ``log(data)``."""
    arr = _clean(data)
    logs = np.log(arr)
    mu = float(np.mean(logs))
    sigma = float(np.std(logs))  # MLE uses the biased (n) estimator
    if sigma == 0.0:
        sigma = 1e-12
    return Lognormal.from_log_params(mu, sigma)


def fit_normal(data: Sequence[float]) -> Normal:
    """MLE normal fit (sample mean, biased std)."""
    arr = _clean(data, positive=False)
    return Normal(float(np.mean(arr)), float(np.std(arr)))


def fit_weibull(
    data: Sequence[float],
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Weibull:
    """MLE Weibull fit.

    Solves the profile likelihood equation for the shape *k*::

        sum(x^k ln x)/sum(x^k) - 1/k = mean(ln x)

    by bisection on ``k`` in a bracket grown from [1e-3, 1e3]; the scale
    then follows as ``(mean(x^k))^(1/k)``.
    """
    arr = _clean(data)
    ln = np.log(arr)
    mean_ln = float(np.mean(ln))

    def g(k: float) -> float:
        # Numerically-stable computation of sum(x^k ln x)/sum(x^k):
        # work with exp(k*ln(x) - m) where m = max(k*ln(x)).
        kl = k * ln
        m = float(np.max(kl))
        w = np.exp(kl - m)
        return float(np.sum(w * ln) / np.sum(w)) - 1.0 / k - mean_ln

    lo, hi = 1e-3, 10.0
    while g(hi) < 0 and hi < 1e6:
        hi *= 2.0
    glo = g(lo)
    if glo > 0:
        # Degenerate (near-constant) data: shape is effectively huge.
        lo = hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if g(mid) > 0:
            hi = mid
        else:
            lo = mid
        if hi - lo < tol * max(1.0, hi):
            break
    k = 0.5 * (lo + hi)
    kl = k * ln
    m = float(np.max(kl))
    lam = math.exp((math.log(np.mean(np.exp(kl - m))) + m) / k)
    return Weibull(k, lam)


#: Fitting candidates considered in Figure 8 of the paper.
CANDIDATE_FAMILIES: Dict[str, Callable[[Sequence[float]], Distribution]] = {
    "exponential": fit_exponential,
    "weibull": fit_weibull,
    "lognormal": fit_lognormal,
}


@dataclass
class FitResult:
    """Outcome of fitting one family to one data set."""

    family: str
    distribution: Distribution
    loglik: float
    ks_statistic: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FitResult({self.family}, loglik={self.loglik:.4g}, "
            f"ks={self.ks_statistic:.4g}, {self.distribution!r})"
        )


def fit_best(
    data: Sequence[float],
    families: Iterable[str] = ("exponential", "weibull", "lognormal"),
    criterion: str = "loglik",
) -> Tuple[FitResult, List[FitResult]]:
    """Fit each candidate family and return (winner, all results).

    ``criterion`` is ``"loglik"`` (maximize) or ``"ks"`` (minimize the
    Kolmogorov–Smirnov distance).
    """
    from .goodness import ks_statistic

    arr = _clean(data)
    results: List[FitResult] = []
    for family in families:
        try:
            fitter = CANDIDATE_FAMILIES[family]
        except KeyError:
            raise ValueError(f"unknown family {family!r}") from None
        dist = fitter(arr)
        results.append(
            FitResult(
                family=family,
                distribution=dist,
                loglik=dist.loglik(arr),
                ks_statistic=ks_statistic(arr, dist),
            )
        )
    if criterion == "loglik":
        best = max(results, key=lambda r: r.loglik)
    elif criterion == "ks":
        best = min(results, key=lambda r: r.ks_statistic)
    else:
        raise ValueError(f"unknown criterion {criterion!r}")
    return best, results
