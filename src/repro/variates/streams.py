"""Reproducible random-number streams for simulation experiments.

Each simulation entity (every application process, daemon, ...) gets its
own named substream so that

* runs are exactly reproducible given a root seed,
* changing one entity's draws does not perturb the others (common random
  numbers across policy comparisons, the variance-reduction technique
  the 2^k·r design relies on), and
* repetitions use independent spawns of the root sequence.

Hot-path performance follows the HPC guide: variates are drawn from
NumPy in **blocks** (:class:`VariateStream`) and served as scalars, so
the per-event cost is an array index rather than a Generator call.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

from .distributions import Distribution

__all__ = ["StreamFactory", "VariateStream", "AntitheticStream"]


def _name_to_key(name: str) -> int:
    """Stable 32-bit key for a stream name (crc32, platform-independent)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class StreamFactory:
    """Creates named, independent ``numpy.random.Generator`` streams.

    Streams are derived from a root :class:`numpy.random.SeedSequence`
    by spawning with a key computed from the stream *name*, so the same
    ``(seed, name)`` pair always yields the same stream regardless of
    creation order.

    Parameters
    ----------
    seed:
        Root seed of the experiment run.
    replication:
        Repetition index; folded into the root sequence so that each of
        the *r* repetitions of a 2^k·r design is independent.
    """

    def __init__(self, seed: int = 0, replication: int = 0):
        self.seed = int(seed)
        self.replication = int(replication)
        self._root = np.random.SeedSequence(entropy=(self.seed, self.replication))
        self._cache: Dict[str, np.random.Generator] = {}

    def seed_sequence(self, name: str) -> np.random.SeedSequence:
        """The root :class:`~numpy.random.SeedSequence` of stream *name*.

        Exposed so consumers that need restartable streams (the lazy
        workload generators rebuild their stream on every iteration)
        can derive them from the same named entropy as
        :meth:`generator`.
        """
        return np.random.SeedSequence(
            entropy=(self.seed, self.replication, _name_to_key(name))
        )

    def generator(self, name: str) -> np.random.Generator:
        """Return the generator for stream *name* (cached)."""
        gen = self._cache.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(self.seed_sequence(name)))
            self._cache[name] = gen
        return gen

    def variates(
        self,
        name: str,
        distribution: Distribution,
        block: int = 1024,
    ) -> "VariateStream":
        """Return a block-buffered scalar variate stream for *name*."""
        return VariateStream(distribution, self.generator(name), block=block)

    def child(self, name: str) -> "StreamFactory":
        """Derive an independent sub-factory (e.g. one per node)."""
        sub = StreamFactory.__new__(StreamFactory)
        sub.seed = self.seed
        sub.replication = self.replication
        sub._root = np.random.SeedSequence(
            entropy=(self.seed, self.replication, _name_to_key(name), 0x5EED)
        )
        sub._cache = {}
        # Prefix child stream names so they cannot collide with the parent's.
        parent_gen = sub.generator

        def generator(stream_name: str, _prefix: str = name) -> np.random.Generator:
            return parent_gen(f"{_prefix}/{stream_name}")

        sub.generator = generator  # type: ignore[method-assign]
        return sub


class VariateStream:
    """Serves scalar variates from block-prefetched NumPy draws.

    Drawing 1024 lognormals at once and indexing into the result is an
    order of magnitude cheaper per variate than calling the generator
    for each event, which matters because variate draws sit on the
    simulator's hottest path.
    """

    __slots__ = ("distribution", "rng", "block", "_buf", "_idx", "_next")

    #: First refill size; doubles per refill up to ``block``.  A large
    #: cell creates thousands of streams that each serve only a handful
    #: of draws, so eager full-block prefills would dominate both wall
    #: time and peak RSS — growth keeps prefill work and buffer memory
    #: proportional to what each stream actually consumes (at most 2x),
    #: while hot streams still amortize to full blocks.  NumPy
    #: generators draw values sequentially from the bit stream, so for
    #: every Table-2 workload family the served variate sequence is
    #: independent of the chunking.  (Hyperexponential is the one
    #: exported family whose block draw is two-pass and therefore
    #: chunk-*dependent* — its sequence has always varied with the
    #: ``block`` knob.)
    INITIAL_BLOCK = 16

    def __init__(
        self,
        distribution: Distribution,
        rng: np.random.Generator,
        block: int = 1024,
    ):
        if block < 1:
            raise ValueError("block must be >= 1")
        self.distribution = distribution
        self.rng = rng
        self.block = int(block)
        # The block is converted to a plain list once per refill:
        # serving native floats skips a NumPy-scalar box + float() call
        # per variate, and the conversion cost is amortized over the
        # whole block.
        self._buf: Optional[list] = None
        self._idx = 0
        self._next = min(self.INITIAL_BLOCK, self.block)

    def _refill(self) -> list:
        n = self._next
        buf = self.distribution.sample_block(self.rng, n).tolist()
        self._buf = buf
        if n < self.block:
            self._next = min(n * 2, self.block)
        return buf

    def __call__(self) -> float:
        """Next variate."""
        idx = self._idx
        buf = self._buf
        if buf is None or idx >= len(buf):
            buf = self._refill()
            idx = 0
        self._idx = idx + 1
        return buf[idx]

    def take_sum(self, n: int) -> float:
        """Sum of the next *n* variates.

        Consumes exactly the same draws as *n* scalar calls — block
        boundaries are preserved, so the variate sequence (and every
        simulation result derived from it) is bit-identical either way.
        The per-draw Python loop is replaced by slice sums, which is
        what makes burst consumers (daemon collect loops) cheap.
        """
        total = 0.0
        idx = self._idx
        buf = self._buf
        remaining = n
        while remaining > 0:
            if buf is None or idx >= len(buf):
                buf = self._refill()
                idx = 0
            take = len(buf) - idx
            if take > remaining:
                take = remaining
            total += sum(buf[idx:idx + take])
            idx += take
            remaining -= take
        self._idx = idx
        return total

    def draw(self, n: int) -> np.ndarray:
        """Draw *n* variates as an array (bypasses the scalar buffer)."""
        return self.distribution.sample_block(self.rng, n)


class AntitheticStream:
    """Variance-reduced variate pairs via antithetic uniforms.

    Classical antithetic variates (Law & Kelton §11.3): draws come in
    pairs ``ppf(u)``, ``ppf(1 − u)`` with a shared uniform ``u``, so
    paired replications are negatively correlated and the variance of
    their average drops below the iid case for monotone responses.

    Construct two streams with ``antithetic=False`` / ``True`` over the
    same generator name (same seed) to drive a paired replication.
    """

    __slots__ = ("distribution", "rng", "antithetic", "_buf", "_idx", "block")

    def __init__(
        self,
        distribution: Distribution,
        rng: np.random.Generator,
        antithetic: bool = False,
        block: int = 1024,
    ):
        if block < 1:
            raise ValueError("block must be >= 1")
        self.distribution = distribution
        self.rng = rng
        self.antithetic = bool(antithetic)
        self.block = int(block)
        self._buf: Optional[np.ndarray] = None
        self._idx = 0

    def __call__(self) -> float:
        buf = self._buf
        if buf is None or self._idx >= buf.shape[0]:
            u = self.rng.random(self.block)
            if self.antithetic:
                u = 1.0 - u
            # Clip away exact 0/1 to keep ppf finite.
            u = np.clip(u, 1e-12, 1.0 - 1e-12)
            buf = np.asarray(self.distribution.ppf(u), dtype=float)
            self._buf = buf
            self._idx = 0
        value = buf[self._idx]
        self._idx += 1
        return float(value)
