"""``repro.variates`` — distributions, random streams, fitting, GoF tests.

The workload-characterization substrate of the reproduction: the
distribution families of Table 2, Law & Kelton MLE fitting, the
goodness-of-fit machinery behind Figure 8, and reproducible named
random streams used by every simulation entity.
"""

from .distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    Hyperexponential,
    Lognormal,
    Normal,
    Pareto,
    Uniform,
    Weibull,
)
from .fitting import (
    CANDIDATE_FAMILIES,
    FitResult,
    fit_best,
    fit_exponential,
    fit_lognormal,
    fit_normal,
    fit_weibull,
)
from .goodness import (
    ChiSquareResult,
    HistogramSeries,
    QQSeries,
    anderson_darling,
    chi_square_test,
    histogram_series,
    ks_statistic,
    ks_test,
    qq_series,
)
from .streams import AntitheticStream, StreamFactory, VariateStream

__all__ = [
    "Distribution",
    "Deterministic",
    "Uniform",
    "Exponential",
    "Erlang",
    "Lognormal",
    "Weibull",
    "Normal",
    "Hyperexponential",
    "Pareto",
    "Empirical",
    "StreamFactory",
    "VariateStream",
    "AntitheticStream",
    "FitResult",
    "fit_exponential",
    "fit_lognormal",
    "fit_weibull",
    "fit_normal",
    "fit_best",
    "CANDIDATE_FAMILIES",
    "ks_statistic",
    "ks_test",
    "anderson_darling",
    "chi_square_test",
    "ChiSquareResult",
    "qq_series",
    "QQSeries",
    "histogram_series",
    "HistogramSeries",
]
