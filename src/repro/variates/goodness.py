"""Goodness-of-fit diagnostics: K-S, chi-square, Q-Q and histogram series.

These produce the data behind Figure 8 of the paper — histograms with
overlaid candidate pdfs, and quantile-quantile plots against the chosen
theoretical distribution — as plain numeric series suitable for textual
reporting or any plotting front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from .distributions import Distribution

__all__ = [
    "ks_statistic",
    "ks_test",
    "anderson_darling",
    "chi_square_test",
    "qq_series",
    "histogram_series",
    "QQSeries",
    "HistogramSeries",
    "ChiSquareResult",
]


def ks_statistic(data: Sequence[float], dist: Distribution) -> float:
    """One-sample Kolmogorov–Smirnov distance between *data* and *dist*."""
    arr = np.sort(np.asarray(data, dtype=float))
    n = arr.size
    if n == 0:
        raise ValueError("empty data")
    cdf = np.asarray(dist.cdf(arr), dtype=float)
    upper = np.arange(1, n + 1) / n - cdf
    lower = cdf - np.arange(0, n) / n
    return float(max(upper.max(), lower.max()))


def ks_test(data: Sequence[float], dist: Distribution) -> Tuple[float, float]:
    """K-S statistic and asymptotic p-value (Kolmogorov distribution)."""
    from scipy.stats import kstwobign

    arr = np.asarray(data, dtype=float)
    d = ks_statistic(arr, dist)
    n = arr.size
    p = float(kstwobign.sf(d * (np.sqrt(n) + 0.12 + 0.11 / np.sqrt(n))))
    return d, min(max(p, 0.0), 1.0)


def anderson_darling(data: Sequence[float], dist: Distribution) -> float:
    """Anderson–Darling statistic A² against a fully-specified *dist*.

    A² weights the tails far more heavily than K-S, which matters here:
    the paper's own Q-Q discussion notes the lognormal fit "exhibit[s]
    differences at both tails".  Values below ~2.5 indicate a good fit
    for a fully-specified distribution; the statistic is primarily
    useful for *ranking* candidate families on the same data.
    """
    arr = np.sort(np.asarray(data, dtype=float))
    n = arr.size
    if n < 2:
        raise ValueError("need at least two observations")
    cdf = np.clip(np.asarray(dist.cdf(arr), dtype=float), 1e-12, 1 - 1e-12)
    i = np.arange(1, n + 1)
    s = np.sum((2 * i - 1) * (np.log(cdf) + np.log1p(-cdf[::-1])))
    return float(-n - s / n)


@dataclass
class ChiSquareResult:
    """Chi-square goodness-of-fit outcome on equal-probability bins."""

    statistic: float
    dof: int
    p_value: float
    n_bins: int

    @property
    def rejected_at_05(self) -> bool:
        """Whether the fit is rejected at the 5 % level."""
        return self.p_value < 0.05


def chi_square_test(
    data: Sequence[float],
    dist: Distribution,
    n_bins: int = 0,
    fitted_params: int = 2,
) -> ChiSquareResult:
    """Chi-square test with equal-probability binning (Law & Kelton).

    ``n_bins=0`` chooses ``max(5, n // 25)`` bins capped at 50 so each
    bin expects >= ~5 observations.  ``fitted_params`` reduces the
    degrees of freedom for parameters estimated from the data.
    """
    from scipy.stats import chi2

    arr = np.asarray(data, dtype=float)
    n = arr.size
    if n < 10:
        raise ValueError("need at least 10 observations")
    if n_bins <= 0:
        n_bins = int(min(50, max(5, n // 25)))
    # Equal-probability bin edges from the theoretical quantiles.
    qs = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.asarray(dist.ppf(qs[1:-1]), dtype=float)
    counts = np.zeros(n_bins)
    idx = np.searchsorted(edges, arr, side="right")
    for i in idx:
        counts[i] += 1
    expected = n / n_bins
    stat = float(np.sum((counts - expected) ** 2 / expected))
    dof = max(1, n_bins - 1 - fitted_params)
    p = float(chi2.sf(stat, dof))
    return ChiSquareResult(statistic=stat, dof=dof, p_value=p, n_bins=n_bins)


@dataclass
class QQSeries:
    """Data for a quantile-quantile plot (Figure 8, right panels)."""

    theoretical: np.ndarray
    observed: np.ndarray
    #: Endpoints of the ideal-fit 45-degree line.
    ideal: Tuple[Tuple[float, float], Tuple[float, float]] = field(default=((0, 0), (1, 1)))

    def max_tail_deviation(self, tail_fraction: float = 0.05) -> float:
        """Largest |observed − theoretical| within the distribution tails.

        The paper notes the lognormal Q-Q plot "exhibit[s] differences at
        both tails"; this quantifies that.
        """
        n = self.theoretical.size
        k = max(1, int(n * tail_fraction))
        dev = np.abs(self.observed - self.theoretical)
        return float(max(dev[:k].max(), dev[-k:].max()))

    def linearity(self) -> float:
        """Pearson correlation between observed and theoretical quantiles."""
        t, o = self.theoretical, self.observed
        if t.size < 2:
            return float("nan")
        return float(np.corrcoef(t, o)[0, 1])


def qq_series(data: Sequence[float], dist: Distribution) -> QQSeries:
    """Observed vs. theoretical quantiles at the plotting positions
    ``(i - 0.5) / n`` (Law & Kelton's convention)."""
    arr = np.sort(np.asarray(data, dtype=float))
    n = arr.size
    if n == 0:
        raise ValueError("empty data")
    probs = (np.arange(1, n + 1) - 0.5) / n
    theo = np.asarray(dist.ppf(probs), dtype=float)
    lo = float(min(theo[0], arr[0]))
    hi = float(max(theo[-1], arr[-1]))
    return QQSeries(theoretical=theo, observed=arr, ideal=((lo, lo), (hi, hi)))


@dataclass
class HistogramSeries:
    """Relative-frequency histogram plus overlaid pdf curves (Figure 8, left)."""

    edges: np.ndarray
    frequencies: np.ndarray  # relative frequency (density) per bin
    pdf_x: np.ndarray
    pdf_curves: dict  # family name -> density values on pdf_x


def histogram_series(
    data: Sequence[float],
    dists: dict,
    n_bins: int = 50,
    n_curve_points: int = 200,
) -> HistogramSeries:
    """Histogram of *data* with overlaid candidate pdfs.

    ``dists`` maps family names to :class:`Distribution` objects; the
    returned curves are evaluated on a common grid spanning the data.
    """
    arr = np.asarray(data, dtype=float)
    freq, edges = np.histogram(arr, bins=n_bins, density=True)
    x = np.linspace(edges[0], edges[-1], n_curve_points)
    curves = {name: np.asarray(d.pdf(x), dtype=float) for name, d in dists.items()}
    return HistogramSeries(edges=edges, frequencies=freq, pdf_x=x, pdf_curves=curves)
