"""Analytic predictions driving the experiment planner.

The planner's first stage evaluates the paper's Section 3 operational
models (NOW/SMP/MPP; :mod:`repro.analytical`) over every cell of a
factorial design, producing one :class:`AnalyticPrediction` per cell
with the predictions mapped onto the simulator's metric names.

Besides the raw predictions, each cell is annotated with the three
conditions under which the analytic model is *not* a substitute for
simulation:

* **inapplicable** — the configuration uses machinery the operational
  laws do not model at all (open traffic, fault injection, adaptive
  management, flush timeouts, barriers, a central ingress queue, an
  uninstrumented baseline);
* **saturated** — some IS resource has analytic utilization ≥ 1, where
  flow balance breaks and the open-queue residence time diverges;
* **drop_risk** — on a shared network the application offered load
  alone saturates the medium *and* the estimated per-forward queueing
  delay (all competing application bursts ahead of the daemon) exceeds
  the forwarding interval, so the daemon cannot drain its pipe and the
  simulator drops samples.  Flow balance silently fails there: the
  analytic CPU figures assume every sample is processed.

The drop-risk test is what distinguishes two analytically *identical*
cells — the operational model ignores the application network demand —
whose simulated behavior differs by an order of magnitude (e.g. 50
nodes, CF forwarding, communication- vs compute-intensive apps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analytical import (
    ISDemands,
    MPPAnalyticalModel,
    NOWAnalyticalModel,
    SMPAnalyticalModel,
)
from ..rocc.config import (
    Architecture,
    ForwardingTopology,
    NetworkMode,
    SimulationConfig,
)

__all__ = ["AnalyticPrediction", "applicability", "predict"]


@dataclass(frozen=True)
class AnalyticPrediction:
    """Operational-law predictions for one design cell.

    ``metrics`` uses the simulator's metric names (the subset the model
    can predict), so surrogate cells drop into reporting code unchanged.
    ``utilizations`` holds the *unclamped* per-resource utilizations the
    screening rules reason about.
    """

    applicable: bool
    #: Why the model does not apply (``None`` when it does).
    reason: Optional[str] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    utilizations: Dict[str, float] = field(default_factory=dict)
    #: Some IS resource at analytic utilization ≥ 1 (flow balance broken).
    saturated: bool = False
    #: Shared-network sample-loss regime (see module docstring).
    drop_risk: bool = False
    #: Application + IS offered load on the shared network (0 when the
    #: network is contention-free).
    shared_network_offered: float = 0.0

    @property
    def max_utilization(self) -> float:
        """Largest IS resource utilization (0 when inapplicable)."""
        if not self.utilizations:
            return 0.0
        return max(self.utilizations.values())


#: Config features the operational model has no equations for.
_UNMODELED = (
    ("traffic", "open traffic workload"),
    ("faults", "fault injection"),
    ("adaptive", "adaptive IS management"),
    ("recovery", "recovery policy"),
    ("batch_flush_timeout", "batch flush timeout"),
    ("barrier_period", "barrier synchronization"),
    ("central_ingress", "central ingress queue"),
)


def applicability(config: SimulationConfig) -> Optional[str]:
    """Why the Section 3 model does not apply to *config* (or ``None``).

    The operational laws model a steady-state instrumented run with the
    simulator's default machinery only; anything beyond that must be
    simulated.
    """
    if not config.instrumented:
        return "uninstrumented baseline"
    for attr, label in _UNMODELED:
        if getattr(config, attr) is not None:
            return f"unmodeled feature: {label}"
    return None


def _model(config: SimulationConfig):
    """Instantiate the matching architecture model with the simulator's
    cost decomposition (so predictions are comparable to simulation)."""
    demands = ISDemands.from_cost_models(
        config.daemon_costs, config.main_costs, config.batch_size
    )
    if config.architecture is Architecture.SMP:
        return SMPAnalyticalModel(
            nodes=config.nodes,
            sampling_period=config.sampling_period,
            batch_size=config.batch_size,
            # For the SMP, app_processes_per_node is the machine total.
            app_processes=config.app_processes_per_node,
            daemons=config.daemons,
            demands=demands,
        )
    if config.architecture is Architecture.MPP:
        return MPPAnalyticalModel(
            nodes=config.nodes,
            sampling_period=config.sampling_period,
            batch_size=config.batch_size,
            app_processes_per_node=config.app_processes_per_node,
            tree=config.forwarding is ForwardingTopology.TREE,
            demands=demands,
        )
    return NOWAnalyticalModel(
        nodes=config.nodes,
        sampling_period=config.sampling_period,
        batch_size=config.batch_size,
        app_processes_per_node=config.app_processes_per_node,
        demands=demands,
    )


def _app_offered_load(config: SimulationConfig) -> float:
    """Offered utilization of the shared network by application traffic.

    Each application process cycles CPU burst → network burst, so its
    offered network utilization is d_net / (d_cpu + d_net); the total is
    that times the process count.  Offered load — not actual (which the
    closed loop caps at 1) — because > 1 is exactly the signal that the
    medium saturates and queueing delays govern.
    """
    w = config.workload
    d_cpu = w.d_app_cpu
    d_net = w.d_app_network
    if d_cpu + d_net <= 0:
        return 0.0
    if config.architecture is Architecture.SMP:
        n_apps = config.app_processes_per_node
    else:
        n_apps = config.nodes * config.app_processes_per_node
    return n_apps * d_net / (d_cpu + d_net)


def predict(config: SimulationConfig) -> AnalyticPrediction:
    """Evaluate the matching analytic model for one cell."""
    reason = applicability(config)
    if reason is not None:
        return AnalyticPrediction(applicable=False, reason=reason)

    model = _model(config)
    utils: Dict[str, float] = {
        "pd_cpu": model.pd_cpu_utilization(),
        "main_cpu": model.paradyn_cpu_utilization(),
    }
    if isinstance(model, SMPAnalyticalModel):
        utils["network"] = model.bus_utilization()
        utils["is_cpu"] = model.is_cpu_utilization()
    else:
        utils["network"] = model.pd_network_utilization()
    saturated = any(u >= 1.0 for u in utils.values())

    duration = config.measured_duration
    metrics: Dict[str, float] = {
        "pd_cpu_utilization_per_node": utils["pd_cpu"],
        "main_cpu_utilization": min(utils["main_cpu"], 1.0),
        "pd_network_utilization": utils["network"],
        "app_cpu_utilization_per_node": model.app_cpu_utilization(),
        "monitoring_latency_forwarding": model.monitoring_latency(),
        "pd_cpu_time_per_node": min(utils["pd_cpu"], 1.0) * duration,
        "main_cpu_time": min(utils["main_cpu"], 1.0) * duration,
    }
    if "is_cpu" in utils:
        metrics["is_cpu_utilization_per_node"] = min(utils["is_cpu"], 1.0)

    # Shared-network contention / sample-loss regime.
    drop_risk = False
    offered = 0.0
    if config.effective_network_mode is NetworkMode.SHARED:
        offered = _app_offered_load(config) + utils["network"]
        if offered >= 1.0:
            # Estimated queueing delay ahead of one daemon forward: every
            # competing application burst once.  Infeasible when it
            # exceeds the forwarding interval T·b/m — the pipe then
            # fills and the simulator drops samples.
            if config.architecture is Architecture.SMP:
                n_apps = config.app_processes_per_node
            else:
                n_apps = config.nodes * config.app_processes_per_node
            delay = n_apps * config.workload.d_app_network
            interval = (
                config.sampling_period
                * config.batch_size
                / max(1, config.app_processes_per_node)
            )
            drop_risk = delay >= interval
    return AnalyticPrediction(
        applicable=True,
        metrics=metrics,
        utilizations=utils,
        saturated=saturated,
        drop_risk=drop_risk,
        shared_network_offered=offered,
    )
