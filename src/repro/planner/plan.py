"""The hybrid analytic–simulation experiment planner.

:func:`run_planned` glues the stages together for one factorial design:

1. **Screen** (:mod:`.screening`): evaluate the analytic model over all
   2^k cells, prune cells where the prediction is trusted, keep the
   rest for simulation (always at least the anchors).
2. **Simulate** kept cells at the minimum replication count through the
   ambient experiment engine — identical cell construction to the
   fixed-r runners, so results are bit-identical and cache-shared.
3. **Calibrate**: compare simulation against the analytic prediction on
   the kept cells where the model claims comparability (applicable,
   non-saturated, no sample-loss regime).  If the median relative error
   of the calibration metric exceeds the tolerance, the analytic model
   is not to be trusted *for this design*: every pruned cell is
   un-pruned and simulated after all.  The tolerance defaults to 0.15 —
   generous against the ≲10 % typical agreement of the cross-validation
   experiments, tight against the ≳50 % errors of a broken-flow-balance
   regime — and the gate uses the median so a single outlier cell
   cannot flip the decision.
4. **Adapt** (:mod:`.replication`): top up replications per kept cell
   until the CI precision target, the per-cell cap, or the shared
   budget is reached.
5. **Surrogate** (:mod:`.surrogate`): fill pruned cells with analytic
   values plus anchor-interpolated corrections, explicitly tagged.

The planner reports replications used vs. the fixed-r baseline and
feeds the ambient engine's ``cells_pruned`` / ``replications_saved``
stats, plus ``planner.*`` observability counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import median
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..expdesign.factorial import FactorialDesign
from ..experiments.engine import ExperimentEngine, current_engine
from ..experiments.runners import MeanResults, replicate
from ..obs import registry as obs_registry
from ..rocc.config import SimulationConfig
from .replication import (
    ReplicationBudget,
    ReplicationPolicy,
    continue_replication,
)
from .screening import CellDecision, ScreeningPolicy, ScreeningReport, screen
from .surrogate import SurrogateCell, build_surrogates

__all__ = ["PlannerConfig", "PlannedCell", "PlannedDesign", "run_planned"]


@dataclass(frozen=True)
class PlannerConfig:
    """All planner knobs in one bag (CLI flags map onto this)."""

    screening: ScreeningPolicy = ScreeningPolicy()
    replication: ReplicationPolicy = ReplicationPolicy()
    #: Cap on total cell-replications (``None`` = the fixed-r baseline
    #: count, i.e. "never simulate more than the unplanned run would").
    budget: Optional[int] = None
    #: Calibration gate: median relative error bound on the calibration
    #: metric over comparable kept cells.
    calibration_tolerance: float = 0.15
    calibration_metric: str = "pd_cpu_utilization_per_node"

    def __post_init__(self) -> None:
        if self.calibration_tolerance <= 0:
            raise ValueError("calibration_tolerance must be positive")
        if self.budget is not None and self.budget < 1:
            raise ValueError("budget must be >= 1 (or None)")


@dataclass
class PlannedCell:
    """One design cell of a planned run: simulated or surrogate."""

    index: int
    label: str
    source: str  # "simulated" | "surrogate"
    decision: CellDecision
    results: Optional[MeanResults] = None
    surrogate: Optional[SurrogateCell] = None

    @property
    def value(self) -> Union[MeanResults, SurrogateCell]:
        """The object to read metrics from (both expose metric names
        as attributes)."""
        if self.results is not None:
            return self.results
        assert self.surrogate is not None
        return self.surrogate

    @property
    def tag(self) -> str:
        if self.surrogate is not None:
            return self.surrogate.tag
        n = len(self.results.results) if self.results else 0
        return f"simulated ({n} reps)"


@dataclass
class PlannedDesign:
    """Outcome of one planned factorial run."""

    design: FactorialDesign
    screening: ScreeningReport
    cells: List[PlannedCell] = field(default_factory=list)
    #: Fixed-r baseline this plan is measured against.
    baseline_replications: int = 0
    replications_used: int = 0
    #: Median relative calibration error (NaN with no comparable cells).
    calibration_error: float = float("nan")
    #: Whether the calibration gate rejected the analytic model and the
    #: plan fell back to simulating everything.
    calibration_failed: bool = False

    @property
    def cells_pruned(self) -> int:
        return sum(1 for c in self.cells if c.source == "surrogate")

    @property
    def replications_saved(self) -> int:
        return max(0, self.baseline_replications - self.replications_used)

    def cell(self, index: int) -> PlannedCell:
        return self.cells[index]

    def summary(self) -> str:
        cal = (
            "n/a"
            if math.isnan(self.calibration_error)
            else f"{self.calibration_error:.1%}"
        )
        return (
            f"{self.cells_pruned}/{self.design.n_runs} cells pruned, "
            f"{self.replications_used}/{self.baseline_replications} "
            f"cell-replications simulated, median calibration error {cal}"
            + (" [calibration FAILED: analytic distrusted]"
               if self.calibration_failed else "")
        )


def _calibration_cells(report: ScreeningReport) -> List[int]:
    """Kept cells where the analytic model claims comparability."""
    return [
        d.index
        for d in report.decisions
        if d.simulate
        and d.prediction.applicable
        and not d.prediction.saturated
        and not d.prediction.drop_risk
    ]


def _calibration_error(
    report: ScreeningReport,
    simulated: Dict[int, MeanResults],
    metric: str,
) -> float:
    """Median relative error of *metric*, simulation as ground truth."""
    errors: List[float] = []
    for i in _calibration_cells(report):
        if i not in simulated:
            continue
        analytic = report.decisions[i].prediction.metrics.get(metric)
        observed = getattr(simulated[i], metric, float("nan"))
        if analytic is None or not math.isfinite(analytic):
            continue
        if not math.isfinite(observed) or observed == 0:
            continue
        errors.append(abs(observed - analytic) / abs(observed))
    return median(errors) if errors else float("nan")


def run_planned(
    design: FactorialDesign,
    make_config: Callable[[Dict[str, object]], SimulationConfig],
    repetitions: int,
    planner: PlannerConfig = PlannerConfig(),
    aggregated: bool = False,
    engine: Optional[ExperimentEngine] = None,
) -> PlannedDesign:
    """Run *design* under the hybrid planner (see module docstring).

    *repetitions* is the fixed-r baseline: it seeds the minimum
    replication count and defines the budget and the savings
    accounting.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    engine = engine or current_engine()
    configs = design.configs(make_config)
    report = screen(design, configs, planner.screening)

    baseline = design.n_runs * repetitions
    budget = ReplicationBudget(
        total=baseline if planner.budget is None else planner.budget
    )
    policy = planner.replication
    if policy.min_replications != repetitions:
        policy = ReplicationPolicy(
            ci_target=policy.ci_target,
            level=policy.level,
            min_replications=repetitions,
            max_replications=max(policy.max_replications, repetitions),
            metrics=policy.metrics,
        )

    # Stage 2: minimum replications for every kept cell, as one batch so
    # a parallel engine overlaps the whole design.
    simulated: Dict[int, MeanResults] = {}
    kept = report.simulated
    grant = {i: budget.take(repetitions) for i in kept}
    flat: List[SimulationConfig] = []
    order: List[int] = []
    for i in kept:
        reps = [
            configs[i].with_(replication=configs[i].replication + r)
            for r in range(grant[i])
        ]
        flat.extend(reps)
        order.extend([i] * len(reps))
    outcomes = engine.run_cells(flat, aggregated=aggregated)
    per_cell: Dict[int, List] = {i: [] for i in kept}
    for i, outcome in zip(order, outcomes):
        per_cell[i].append(outcome)
    for i in kept:
        simulated[i] = MeanResults(per_cell[i])

    # Stage 3: calibration gate.
    cal_error = _calibration_error(
        report, simulated, planner.calibration_metric
    )
    calibration_failed = False
    if report.pruned and not (cal_error <= planner.calibration_tolerance):
        # Median error above tolerance — or no comparable cell at all
        # (NaN): the analytic model is unvalidated here, so pruning is
        # not honest.  Simulate everything.
        calibration_failed = True
        for i in report.pruned:
            reps = [
                configs[i].with_(replication=configs[i].replication + r)
                for r in range(budget.take(repetitions))
            ]
            if reps:
                simulated[i] = MeanResults(
                    list(engine.run_cells(reps, aggregated=aggregated))
                )
            else:  # budget exhausted: fall back to one replication
                simulated[i] = replicate(
                    configs[i], repetitions=1, aggregated=aggregated,
                    engine=engine,
                )

    # Stage 4: adaptive top-up toward the precision target.
    for i in sorted(simulated):
        res = simulated[i]
        have = len(res.results)
        cell_policy = ReplicationPolicy(
            ci_target=policy.ci_target,
            level=policy.level,
            min_replications=max(1, have),
            max_replications=max(policy.max_replications, have),
            metrics=policy.metrics,
        )
        simulated[i] = continue_replication(
            configs[i], res, cell_policy, budget,
            aggregated=aggregated, engine=engine,
        )

    # Stage 5: surrogates for the (still-)pruned cells.
    pruned = [] if calibration_failed else report.pruned
    surrogates = (
        build_surrogates(report, simulated) if pruned else {}
    )

    planned = PlannedDesign(
        design=design,
        screening=report,
        baseline_replications=baseline,
        replications_used=budget.used,
        calibration_error=cal_error,
        calibration_failed=calibration_failed,
    )
    for d in report.decisions:
        if d.index in surrogates:
            planned.cells.append(
                PlannedCell(
                    index=d.index, label=d.label, source="surrogate",
                    decision=d, surrogate=surrogates[d.index],
                )
            )
        else:
            planned.cells.append(
                PlannedCell(
                    index=d.index, label=d.label, source="simulated",
                    decision=d, results=simulated[d.index],
                )
            )

    stats = getattr(engine, "stats", None)
    if stats is not None:
        stats.cells_pruned += planned.cells_pruned
        stats.replications_saved += planned.replications_saved
    reg = obs_registry()
    reg.counter(
        "planner.cells_pruned",
        "design cells served by analytic surrogates instead of simulation",
    ).inc(planned.cells_pruned)
    reg.counter(
        "planner.replications_saved",
        "cell-replications avoided vs the fixed-r baseline",
    ).inc(planned.replications_saved)
    return planned
