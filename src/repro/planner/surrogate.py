"""Surrogate values for pruned cells: analytic + interpolated correction.

A pruned cell's reported value is the analytic prediction plus a
correction interpolated from its *simulated trusted* Hamming-1
neighbors (anchors): the mean of (simulated − analytic) over the
anchors, per metric.  Anchors are restricted to cells whose own
prediction is in the trusted region — a simulated neighbor kept for
saturation or contention measures a regime the surrogate cell is not
in, and its residual would poison the correction (e.g. a contention-
dominated latency residual of hundreds of ms applied to an unloaded
cell).  When no trusted anchor exists the analytic value stands alone,
and the tag says so.

Corrections are additive for utilizations and CPU times (residuals on
a bounded scale transfer across neighbors) but *multiplicative* for
residence-time metrics: a latency residual measured at one batch level
is on a completely different scale than the neighbor cell's (per-batch
vs per-sample residence differ by ~b×), while the simulation/analytic
*ratio* transfers.

Every surrogate is explicitly tagged; reporting code must never present
one as a simulation result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..experiments.runners import MeanResults
from ..expdesign.factorial import FactorialDesign
from .screening import CellDecision, ScreeningReport, neighbors

__all__ = ["SurrogateCell", "build_surrogates"]

#: Metrics that are physically non-negative; corrections are clamped.
_NON_NEGATIVE = ("utilization", "cpu_time", "latency", "throughput")

#: Metrics whose correction is a ratio, not a residual (see module
#: docstring).
_MULTIPLICATIVE = ("latency",)


@dataclass(frozen=True)
class SurrogateCell:
    """Analytic-plus-correction stand-in for one pruned cell."""

    index: int
    label: str
    metrics: Dict[str, float]
    #: Standard-order indices of the simulated cells the correction was
    #: interpolated from (empty → analytic value only).
    anchors: List[int] = field(default_factory=list)

    @property
    def corrected(self) -> bool:
        return bool(self.anchors)

    @property
    def tag(self) -> str:
        """Reporting tag; always identifies the value as a surrogate."""
        if self.corrected:
            runs = ",".join(str(a) for a in self.anchors)
            return f"surrogate (analytic + correction from runs {runs})"
        return "surrogate (analytic only)"

    def __getattr__(self, name: str) -> float:
        # Metric access mirrors MeanResults so table builders can treat
        # simulated and surrogate cells uniformly.
        metrics = object.__getattribute__(self, "metrics")
        if name in metrics:
            return metrics[name]
        raise AttributeError(
            f"surrogate cell has no metric {name!r} (analytic model "
            f"predicts: {sorted(metrics)})"
        )


def _clamped(name: str, value: float) -> float:
    if any(part in name for part in _NON_NEGATIVE):
        return max(0.0, value)
    return value


def build_surrogates(
    report: ScreeningReport,
    simulated: Mapping[int, MeanResults],
) -> Dict[int, SurrogateCell]:
    """Build one :class:`SurrogateCell` per pruned cell of *report*.

    *simulated* maps standard-order index → replication means for every
    simulated cell.
    """
    design = report.design
    by_index: Dict[int, CellDecision] = {
        d.index: d for d in report.decisions
    }
    out: Dict[int, SurrogateCell] = {}
    for decision in report.decisions:
        if decision.simulate:
            continue
        analytic = decision.prediction.metrics
        anchors = [
            j
            for j in neighbors(design, decision.index)
            if j in simulated
            and by_index[j].simulate
            and by_index[j].trusted
        ]
        metrics: Dict[str, float] = {}
        for name, a_value in analytic.items():
            multiplicative = any(p in name for p in _MULTIPLICATIVE)
            corrections: List[float] = []
            for j in anchors:
                a_nb = by_index[j].prediction.metrics.get(name)
                s_nb = getattr(simulated[j], name, float("nan"))
                if (
                    a_nb is None
                    or not math.isfinite(a_nb)
                    or not math.isfinite(s_nb)
                ):
                    continue
                if multiplicative:
                    if a_nb > 0 and s_nb > 0:
                        corrections.append(s_nb / a_nb)
                else:
                    corrections.append(s_nb - a_nb)
            value = a_value
            if corrections and math.isfinite(a_value):
                correction = sum(corrections) / len(corrections)
                if multiplicative:
                    value = a_value * correction
                else:
                    value = a_value + correction
            metrics[name] = _clamped(name, value)
        out[decision.index] = SurrogateCell(
            index=decision.index,
            label=decision.label,
            metrics=metrics,
            anchors=anchors,
        )
    return out
