"""Adaptive replication: add repetitions until precision or budget.

The paper fixes r per design and reports 90 % confidence intervals.
:func:`adaptive_replicate` inverts that: start each cell at a minimum
replication count, then keep adding replications — through the ambient
experiment engine, with the exact replication-numbering scheme of
:func:`repro.experiments.replicate` so results stay bit-identical and
cache-shared with unplanned runs — until every target metric's CI
half-width reaches the requested relative precision, the cell hits its
replication cap, or the shared budget runs out.

:func:`repro.expdesign.repetitions_needed` (pilot sizing) provides the
step size, so a high-variance cell jumps straight toward its projected
count instead of creeping one replication at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..expdesign.confidence import repetitions_needed
from ..experiments.engine import ExperimentEngine, current_engine
from ..experiments.runners import MeanResults, replicate
from ..rocc.config import SimulationConfig

__all__ = [
    "ReplicationPolicy",
    "ReplicationBudget",
    "adaptive_replicate",
    "continue_replication",
]


@dataclass(frozen=True)
class ReplicationPolicy:
    """Precision target for adaptive replication.

    ``ci_target`` is the requested relative CI half-width at ``level``
    for every metric in ``metrics``; cells whose metrics are all-NaN
    (e.g. latency in a cell that completes no batch) count as converged
    on that metric — no number of replications will produce one.
    """

    ci_target: float = 0.35
    level: float = 0.90
    min_replications: int = 2
    max_replications: int = 8
    metrics: Tuple[str, ...] = ("pd_cpu_time_per_node",)

    def __post_init__(self) -> None:
        if self.ci_target <= 0:
            raise ValueError("ci_target must be positive")
        if not 0 < self.level < 1:
            raise ValueError("level must be in (0, 1)")
        if self.min_replications < 1:
            raise ValueError("min_replications must be >= 1")
        if self.max_replications < self.min_replications:
            raise ValueError("max_replications must be >= min_replications")
        if not self.metrics:
            raise ValueError("need at least one target metric")


@dataclass
class ReplicationBudget:
    """Shared cap on total cell-replications across a planned design.

    ``total=None`` means unbounded.  :meth:`take` grants at most the
    remaining allowance, so concurrent cells cannot overdraw.
    """

    total: Optional[int] = None
    used: int = 0

    def remaining(self) -> float:
        if self.total is None:
            return math.inf
        return max(0, self.total - self.used)

    def take(self, want: int) -> int:
        granted = int(min(want, self.remaining()))
        self.used += granted
        return granted


def _unconverged(res: MeanResults, policy: ReplicationPolicy) -> List[str]:
    """Target metrics that have not reached the precision target."""
    out: List[str] = []
    for name in policy.metrics:
        ci = res.mean_ci(name, level=policy.level)
        if ci.n == 0:
            continue  # metric absent in every rep: nothing to converge
        if ci.degenerate:
            out.append(name)
            continue
        if ci.half_width == 0 or ci.mean == 0:
            continue  # zero-width / relative criterion undefined
        if ci.relative_half_width > policy.ci_target:
            out.append(name)
    return out


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if math.isfinite(v)]


def adaptive_replicate(
    config: SimulationConfig,
    policy: ReplicationPolicy = ReplicationPolicy(),
    budget: Optional[ReplicationBudget] = None,
    aggregated: bool = False,
    engine: Optional[ExperimentEngine] = None,
) -> MeanResults:
    """Replicate *config* until precision, cap, or budget exhaustion.

    Replication i always runs as ``config.with_(replication=
    config.replication + i)`` — the same construction as the fixed-r
    runners — so a planned cell's replications are bit-identical to an
    unplanned run's and the engine cache serves across both.
    """
    engine = engine or current_engine()
    budget = budget if budget is not None else ReplicationBudget()
    want = policy.min_replications
    have = budget.take(want)
    if have == 0:
        raise RuntimeError(
            "replication budget exhausted before the first replication"
        )
    res = replicate(config, repetitions=have, aggregated=aggregated,
                    engine=engine)
    return continue_replication(
        config, res, policy, budget, aggregated=aggregated, engine=engine
    )


def continue_replication(
    config: SimulationConfig,
    res: MeanResults,
    policy: ReplicationPolicy,
    budget: ReplicationBudget,
    aggregated: bool = False,
    engine: Optional[ExperimentEngine] = None,
) -> MeanResults:
    """Top up an already-started cell toward the precision target.

    Each round projects the total replication count from the widest
    pending metric (pilot sizing) and jumps toward it, clamped by the
    per-cell cap and the shared budget.
    """
    engine = engine or current_engine()
    have = len(res.results)
    while have < policy.max_replications:
        pending = _unconverged(res, policy)
        if not pending:
            break
        projected = have + 1
        for name in pending:
            finite = _finite(res.raw(name))
            if len(finite) >= 2:
                projected = max(
                    projected,
                    repetitions_needed(finite, policy.ci_target,
                                       level=policy.level),
                )
        target = min(projected, policy.max_replications)
        add = budget.take(max(0, target - have))
        if add == 0:
            break
        extra = engine.run_cells(
            [
                config.with_(replication=config.replication + have + i)
                for i in range(add)
            ],
            aggregated=aggregated,
        )
        res = MeanResults(res.results + list(extra), res.errors)
        have += add
    return res
