"""``repro.planner`` — hybrid analytic–simulation experiment planning.

The paper evaluates each architecture with full 2^k·r factorial
simulation sweeps, *after* Section 3 has already produced closed-form
operational predictions for much of the same space.  This package puts
the two together: analytic screening prunes design cells where the
Section 3 model is validated and trusted, adaptive replication spends
the simulation budget where variance actually demands it, and pruned
cells are reported as explicitly-tagged surrogates (analytic value plus
a correction interpolated from simulated neighbors).

Entry points:

* :func:`run_planned` — plan and execute one factorial design.
* :func:`adaptive_replicate` — precision-driven replication of a single
  configuration (the ``rocc --plan`` path).
* :func:`screen` / :func:`predict` — the analytic stages, usable (and
  golden-mastered) without running any simulation.
"""

from .analytic import AnalyticPrediction, applicability, predict
from .plan import PlannedCell, PlannedDesign, PlannerConfig, run_planned
from .replication import (
    ReplicationBudget,
    ReplicationPolicy,
    adaptive_replicate,
    continue_replication,
)
from .screening import CellDecision, ScreeningPolicy, ScreeningReport, screen
from .surrogate import SurrogateCell, build_surrogates

__all__ = [
    "AnalyticPrediction",
    "applicability",
    "predict",
    "ScreeningPolicy",
    "CellDecision",
    "ScreeningReport",
    "screen",
    "ReplicationPolicy",
    "ReplicationBudget",
    "adaptive_replicate",
    "continue_replication",
    "SurrogateCell",
    "build_surrogates",
    "PlannerConfig",
    "PlannedCell",
    "PlannedDesign",
    "run_planned",
]
