"""Analytic screening of a factorial design: decide what to simulate.

The screen walks every cell of a 2^k design, evaluates the analytic
model (:mod:`repro.planner.analytic`), and classifies each cell:

* **trusted** — the model applies, no resource is near saturation
  (``max_utilization ≤ trust_utilization``), the cell is not in the
  shared-network sample-loss regime, and its analytic landscape is
  locally flat (no trusted Hamming-1 neighbor differs in max
  utilization by more than ``gradient_threshold``).  Trusted cells are
  candidates for pruning: the analytic value (plus an interpolated
  correction) stands in for simulation.
* everything else is **simulated** — saturation, steep gradients and
  model inapplicability are exactly where simulation earns its keep.

A final deterministic *anchor pass* (in standard-order index order)
un-prunes any pruned cell with no simulated Hamming-1 neighbor left, so
every surrogate has at least one simulated anchor to interpolate its
correction from and a design can never be pruned to nothing.  The pass
is monotone — it only adds simulated cells — so it terminates with
every pruned cell anchored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..expdesign.factorial import FactorialDesign
from ..rocc.config import SimulationConfig
from .analytic import AnalyticPrediction, predict

__all__ = ["ScreeningPolicy", "CellDecision", "ScreeningReport", "screen"]


@dataclass(frozen=True)
class ScreeningPolicy:
    """Knobs of the analytic screen.

    ``trust_utilization`` bounds how close to saturation a cell may sit
    and still be pruned — operational predictions degrade as queueing
    grows nonlinear.  ``gradient_threshold`` bounds the max-utilization
    difference between adjacent trusted cells; a steep gradient flags a
    regime boundary worth simulating from both sides.
    """

    trust_utilization: float = 0.5
    gradient_threshold: float = 0.35

    def __post_init__(self) -> None:
        if not 0 < self.trust_utilization < 1:
            raise ValueError("trust_utilization must be in (0, 1)")
        if self.gradient_threshold <= 0:
            raise ValueError("gradient_threshold must be positive")


@dataclass(frozen=True)
class CellDecision:
    """Screening outcome for one design cell (standard-order index)."""

    index: int
    label: str
    simulate: bool
    #: Human-readable reason for the decision.
    reason: str
    prediction: AnalyticPrediction
    #: Whether the cell's own analytic prediction is in the trusted
    #: region (pruned cells always are; a *kept* cell may also be, e.g.
    #: an anchor un-pruned for connectivity — those cells double as
    #: calibration points).
    trusted: bool


@dataclass
class ScreeningReport:
    """All decisions for one design, plus index conveniences."""

    design: FactorialDesign
    decisions: List[CellDecision] = field(default_factory=list)

    @property
    def pruned(self) -> List[int]:
        return [d.index for d in self.decisions if not d.simulate]

    @property
    def simulated(self) -> List[int]:
        return [d.index for d in self.decisions if d.simulate]

    @property
    def n_pruned(self) -> int:
        return len(self.pruned)

    def neighbors(self, index: int) -> List[int]:
        """Hamming-1 neighbors in standard order (factor j ↔ bit j)."""
        return [index ^ (1 << bit) for bit in range(self.design.k)]


def neighbors(design: FactorialDesign, index: int) -> List[int]:
    """Standard-order indices differing from *index* in one factor."""
    return [index ^ (1 << bit) for bit in range(design.k)]


def screen(
    design: FactorialDesign,
    configs: Sequence[SimulationConfig],
    policy: ScreeningPolicy = ScreeningPolicy(),
) -> ScreeningReport:
    """Classify every cell of *design* as simulate or prune."""
    if len(configs) != design.n_runs:
        raise ValueError(
            f"need one config per run: got {len(configs)} for "
            f"{design.n_runs} runs"
        )
    preds: List[AnalyticPrediction] = [predict(c) for c in configs]

    # Pointwise trust: applicable, far from saturation, no sample loss.
    trusted: Dict[int, bool] = {}
    reasons: Dict[int, str] = {}
    for i, p in enumerate(preds):
        if not p.applicable:
            trusted[i], reasons[i] = False, f"simulate: {p.reason}"
        elif p.saturated:
            trusted[i], reasons[i] = False, "simulate: analytic saturation"
        elif p.drop_risk:
            trusted[i], reasons[i] = (
                False,
                "simulate: shared-network sample-loss regime",
            )
        elif p.max_utilization > policy.trust_utilization:
            trusted[i], reasons[i] = (
                False,
                f"simulate: utilization {p.max_utilization:.2f} above "
                f"trust bound {policy.trust_utilization:.2f}",
            )
        else:
            trusted[i], reasons[i] = True, "pruned: analytic trusted"

    # Gradient pass: a steep analytic gradient between two *trusted*
    # neighbors marks a regime boundary — simulate both sides.  (Pairs
    # with an untrusted cell are already simulated on one side.)
    for i, p in enumerate(preds):
        if not trusted[i]:
            continue
        for j in neighbors(design, i):
            if not trusted.get(j, False):
                continue
            delta = abs(p.max_utilization - preds[j].max_utilization)
            if delta > policy.gradient_threshold:
                trusted[i] = False
                reasons[i] = (
                    f"simulate: steep analytic gradient ({delta:.2f}) "
                    f"vs run {j}"
                )
                break

    simulate = {i: not trusted[i] for i in range(design.n_runs)}

    # Anchor pass: every pruned cell needs one simulated neighbor for
    # surrogate correction.  Deterministic index order; monotone.
    for i in range(design.n_runs):
        if simulate[i]:
            continue
        if not any(simulate[j] for j in neighbors(design, i)):
            simulate[i] = True
            reasons[i] = "simulate: anchor for surrounding pruned cells"

    report = ScreeningReport(design=design)
    for i in range(design.n_runs):
        report.decisions.append(
            CellDecision(
                index=i,
                label=design.run_label(i),
                simulate=simulate[i],
                reason=reasons[i],
                prediction=preds[i],
                trusted=trusted[i],
            )
        )
    return report
