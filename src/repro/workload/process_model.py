"""Process behaviour models of §2.3.1 (Figures 6 and 7).

The *detailed* model extends the Unix process-state diagram with the
instrumentation activities (data collection at sampling intervals, data
forwarding over the network, process-spawn logging).  The *simplified*
model collapses it to the two states that map onto ROCC resources:
Computation (CPU) and Communication (network).

These state machines are used to validate the synthetic traces (every
emitted occupancy sequence must correspond to a legal walk of the
detailed model) and to document the mapping the paper uses to justify
its two-state workload characterization.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = [
    "DetailedState",
    "SimpleState",
    "DETAILED_TRANSITIONS",
    "ProcessStateMachine",
    "simplify",
    "legal_sequence",
]


class DetailedState(str, Enum):
    """States of the detailed model (Figure 6)."""

    ADMIT = "admit"
    READY = "ready"
    RUNNING = "running"
    COMMUNICATION = "communication"
    BLOCKED = "blocked"
    FORK = "fork"
    EXIT = "exit"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SimpleState(str, Enum):
    """States of the simplified model (Figure 7)."""

    COMPUTATION = "computation"
    COMMUNICATION = "communication"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Legal transitions of the detailed model (Figure 6).  Keys are source
#: states; values the set of permissible successors with the labelled
#: cause from the figure.
DETAILED_TRANSITIONS: Dict[DetailedState, Dict[DetailedState, str]] = {
    DetailedState.ADMIT: {DetailedState.READY: "admit"},
    DetailedState.READY: {DetailedState.RUNNING: "dispatch"},
    DetailedState.RUNNING: {
        DetailedState.READY: "time out",
        DetailedState.COMMUNICATION: "data collection / network access",
        DetailedState.BLOCKED: "wait",
        DetailedState.FORK: "spawn",
        DetailedState.EXIT: "release",
    },
    DetailedState.COMMUNICATION: {
        DetailedState.RUNNING: "done",
    },
    DetailedState.BLOCKED: {DetailedState.READY: "resource available"},
    DetailedState.FORK: {DetailedState.RUNNING: "log the new process"},
    DetailedState.EXIT: {},
}

#: Mapping from detailed to simplified states (§2.3.1): Running maps to
#: Computation; Communication (covering data collection, NFS, inter-node
#: messaging) maps to Communication.  Scheduler-limbo states have no
#: resource occupancy and therefore no simple-state image.
_SIMPLIFY: Dict[DetailedState, SimpleState] = {
    DetailedState.RUNNING: SimpleState.COMPUTATION,
    DetailedState.FORK: SimpleState.COMPUTATION,
    DetailedState.COMMUNICATION: SimpleState.COMMUNICATION,
}


def simplify(state: DetailedState) -> SimpleState | None:
    """Map a detailed state to its Figure-7 image (None for limbo states)."""
    return _SIMPLIFY.get(state)


class ProcessStateMachine:
    """Walks the detailed process model, enforcing legal transitions."""

    def __init__(self) -> None:
        self.state = DetailedState.ADMIT
        self.history: List[Tuple[DetailedState, str]] = [(self.state, "start")]

    @property
    def terminated(self) -> bool:
        return self.state is DetailedState.EXIT

    def allowed(self) -> FrozenSet[DetailedState]:
        """Successor states legal from the current state."""
        return frozenset(DETAILED_TRANSITIONS[self.state])

    def step(self, to: DetailedState) -> str:
        """Transition to *to*; returns the transition label.

        Raises ``ValueError`` on an illegal transition.
        """
        try:
            label = DETAILED_TRANSITIONS[self.state][to]
        except KeyError:
            raise ValueError(
                f"illegal transition {self.state.value} -> {to.value}"
            ) from None
        self.state = to
        self.history.append((to, label))
        return label

    def simple_history(self) -> List[SimpleState]:
        """Project the walk onto the simplified model, dropping limbo
        states and collapsing repeats (Computation/Communication runs)."""
        out: List[SimpleState] = []
        for state, _ in self.history:
            s = simplify(state)
            if s is not None and (not out or out[-1] is not s):
                out.append(s)
        return out


def legal_sequence(states: Iterable[DetailedState]) -> bool:
    """Whether *states* (starting at ADMIT) is a legal walk of Figure 6."""
    machine = ProcessStateMachine()
    it = iter(states)
    first = next(it, None)
    if first is not DetailedState.ADMIT:
        return False
    for state in it:
        try:
            machine.step(state)
        except ValueError:
            return False
    return True
