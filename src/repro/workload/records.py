"""AIX-like trace records and trace files.

The paper's workload characterization is driven by traces from the
SP-2's AIX operating-system tracing facility: per-process records of
CPU and network occupancy.  This module defines the in-memory and
on-disk (CSV) representation of such traces as used by the synthetic
tracing facility (:mod:`repro.workload.tracing`) and the
characterization pipeline (:mod:`repro.workload.characterize`).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

__all__ = ["ProcessType", "ResourceKind", "TraceRecord", "TraceFile"]


class ProcessType(str, Enum):
    """The process classes distinguished in Table 1 of the paper."""

    APPLICATION = "application"
    PARADYN_DAEMON = "paradyn_daemon"
    PVM_DAEMON = "pvm_daemon"
    OTHER = "other"
    PARADYN_MAIN = "paradyn_main"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ResourceKind(str, Enum):
    """Resource classes of the ROCC model."""

    CPU = "cpu"
    NETWORK = "network"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TraceRecord:
    """One resource-occupancy interval observed by the tracing facility.

    Attributes
    ----------
    timestamp:
        Start of the occupancy interval, microseconds since trace start.
    node:
        SP-2 node index the record was captured on.
    pid:
        Process id within the node.
    process_type:
        Which Table-1 class the process belongs to.
    resource:
        CPU or network.
    duration:
        Length of the occupancy request, microseconds.
    """

    timestamp: float
    node: int
    pid: int
    process_type: ProcessType
    resource: ResourceKind
    duration: float

    def end(self) -> float:
        """Timestamp at which the occupancy interval ends."""
        return self.timestamp + self.duration


_CSV_HEADER = ["timestamp", "node", "pid", "process_type", "resource", "duration"]


@dataclass
class TraceFile:
    """An ordered collection of trace records with query helpers."""

    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self.records.extend(records)

    def sort(self) -> None:
        """Sort records by timestamp (stable)."""
        self.records.sort(key=lambda r: r.timestamp)

    # -- queries ---------------------------------------------------------
    def filter(
        self,
        process_type: Optional[ProcessType] = None,
        resource: Optional[ResourceKind] = None,
        node: Optional[int] = None,
    ) -> "TraceFile":
        """Return a new trace restricted to the given keys."""
        out = [
            r
            for r in self.records
            if (process_type is None or r.process_type == process_type)
            and (resource is None or r.resource == resource)
            and (node is None or r.node == node)
        ]
        return TraceFile(out)

    def durations(
        self,
        process_type: Optional[ProcessType] = None,
        resource: Optional[ResourceKind] = None,
    ) -> List[float]:
        """Occupancy-request lengths matching the given keys."""
        return [
            r.duration
            for r in self.records
            if (process_type is None or r.process_type == process_type)
            and (resource is None or r.resource == resource)
        ]

    def window(self, start: float, end: float) -> "TraceFile":
        """Records whose occupancy interval intersects ``[start, end)``.

        Used to drop measurement warm-up/cool-down phases before
        characterization, as the paper's trace post-processing does.
        """
        if end <= start:
            raise ValueError("end must exceed start")
        return TraceFile(
            [r for r in self.records if r.timestamp < end and r.end() > start]
        )

    def busy_time(
        self,
        process_type: Optional[ProcessType] = None,
        resource: Optional[ResourceKind] = None,
        node: Optional[int] = None,
    ) -> float:
        """Total occupancy (sum of durations) matching the given keys."""
        return sum(
            r.duration
            for r in self.records
            if (process_type is None or r.process_type == process_type)
            and (resource is None or r.resource == resource)
            and (node is None or r.node == node)
        )

    def cpu_time_by_type(self) -> Dict[ProcessType, float]:
        """Total CPU occupancy per process class (seconds of CPU, in µs)."""
        out: Dict[ProcessType, float] = {}
        for r in self.records:
            if r.resource is ResourceKind.CPU:
                out[r.process_type] = out.get(r.process_type, 0.0) + r.duration
        return out

    def span(self) -> float:
        """Duration covered by the trace (first start to last end), µs."""
        if not self.records:
            return 0.0
        start = min(r.timestamp for r in self.records)
        end = max(r.end() for r in self.records)
        return end - start

    # -- serialization ----------------------------------------------------
    def to_csv(self, path: Union[str, Path, io.TextIOBase]) -> None:
        """Write records to a CSV file (AIX trace export substitute)."""
        close = False
        if isinstance(path, (str, Path)):
            handle: io.TextIOBase = open(path, "w", newline="")  # noqa: SIM115
            close = True
        else:
            handle = path
        try:
            writer = csv.writer(handle)
            writer.writerow(_CSV_HEADER)
            for r in self.records:
                writer.writerow(
                    [
                        repr(r.timestamp),
                        r.node,
                        r.pid,
                        r.process_type.value,
                        r.resource.value,
                        repr(r.duration),
                    ]
                )
        finally:
            if close:
                handle.close()

    @classmethod
    def from_csv(cls, path: Union[str, Path, io.TextIOBase]) -> "TraceFile":
        """Read a trace previously written with :meth:`to_csv`."""
        close = False
        if isinstance(path, (str, Path)):
            handle: io.TextIOBase = open(path, newline="")  # noqa: SIM115
            close = True
        else:
            handle = path
        try:
            reader = csv.reader(handle)
            header = next(reader)
            if header != _CSV_HEADER:
                raise ValueError(f"unexpected trace header: {header}")
            records = [
                TraceRecord(
                    timestamp=float(row[0]),
                    node=int(row[1]),
                    pid=int(row[2]),
                    process_type=ProcessType(row[3]),
                    resource=ResourceKind(row[4]),
                    duration=float(row[5]),
                )
                for row in reader
            ]
        finally:
            if close:
                handle.close()
        return cls(records)
