"""Workload parameters of the ROCC model (Table 2 of the paper).

:class:`WorkloadParameters` bundles the request-length and inter-arrival
distributions for every process class, plus the configuration constants
(CPU quantum, typical sampling period).  :data:`PAPER_PARAMETERS` is a
verbatim transcription of Table 2 — the IBM SP-2 / NAS ``pvmbt``
characterization — and is the default everywhere.

All times are in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..variates.distributions import Distribution, Exponential, Lognormal

__all__ = [
    "WorkloadParameters",
    "PAPER_PARAMETERS",
    "CPU_QUANTUM_US",
    "TYPICAL_SAMPLING_PERIOD_US",
]

#: CPU scheduling quantum on the SP-2 nodes (Table 2): 10 ms.
CPU_QUANTUM_US: float = 10_000.0

#: Typical performance-data sampling period (Table 2): 40 ms.
TYPICAL_SAMPLING_PERIOD_US: float = 40_000.0


def _default(dist: Optional[Distribution], fallback: Distribution) -> Distribution:
    return fallback if dist is None else dist


@dataclass
class WorkloadParameters:
    """Distributions of resource-occupancy requests per process class.

    Field names follow Table 2; the ``Pdm`` merge cost used by binary-
    tree forwarding (equations (13)–(16)) defaults to the Paradyn-daemon
    CPU request since the paper does not parameterize it separately.
    """

    # Application process.
    app_cpu: Distribution = field(default_factory=lambda: Lognormal(2213, 3034))
    app_network: Distribution = field(default_factory=lambda: Exponential(223))

    # Paradyn daemon: per-sample collection/forwarding costs.  Its request
    # inter-arrival time is the sampling period (a simulation factor, not
    # a workload constant).
    pd_cpu: Distribution = field(default_factory=lambda: Exponential(267))
    pd_network: Distribution = field(default_factory=lambda: Exponential(71))

    # PVM daemon.
    pvmd_cpu: Distribution = field(default_factory=lambda: Lognormal(294, 206))
    pvmd_network: Distribution = field(default_factory=lambda: Exponential(58))
    pvmd_interarrival: Distribution = field(default_factory=lambda: Exponential(6485))

    # Other user/system processes.
    other_cpu: Distribution = field(default_factory=lambda: Lognormal(367, 819))
    other_network: Distribution = field(default_factory=lambda: Exponential(92))
    other_cpu_interarrival: Distribution = field(
        default_factory=lambda: Exponential(31_485)
    )
    other_network_interarrival: Distribution = field(
        default_factory=lambda: Exponential(5_598_903)
    )

    # Main Paradyn process (Table 1 measured moments).
    main_cpu: Distribution = field(default_factory=lambda: Lognormal(3208, 3287))
    main_network: Distribution = field(default_factory=lambda: Lognormal(214, 451))

    # Merge cost at non-leaf daemons under binary-tree forwarding.
    pdm_cpu: Optional[Distribution] = None

    # CPU scheduling quantum.
    cpu_quantum: float = CPU_QUANTUM_US

    def __post_init__(self) -> None:
        if self.pdm_cpu is None:
            self.pdm_cpu = self.pd_cpu

    # -- mean service demands (operational analysis inputs) --------------
    @property
    def d_pd_cpu(self) -> float:
        """Mean Paradyn-daemon CPU demand per sample, µs."""
        return self.pd_cpu.mean

    @property
    def d_pd_network(self) -> float:
        """Mean Paradyn-daemon network demand per forward, µs."""
        return self.pd_network.mean

    @property
    def d_pdm_cpu(self) -> float:
        """Mean merge CPU demand at a non-leaf tree daemon, µs."""
        assert self.pdm_cpu is not None
        return self.pdm_cpu.mean

    @property
    def d_main_cpu(self) -> float:
        """Mean main-Paradyn-process CPU demand per received sample, µs."""
        return self.main_cpu.mean

    @property
    def d_app_cpu(self) -> float:
        """Mean application CPU burst, µs."""
        return self.app_cpu.mean

    @property
    def d_app_network(self) -> float:
        """Mean application network burst, µs."""
        return self.app_network.mean

    def with_network_demand(self, mean_us: float) -> "WorkloadParameters":
        """Copy with the application network occupancy changed.

        The factorial experiments toggle "application type" by setting
        this to 200 µs (compute-intensive) or 2000 µs (communication-
        intensive); see §4.2.1.
        """
        return replace(self, app_network=Exponential(mean_us))


#: Table 2, verbatim.
PAPER_PARAMETERS = WorkloadParameters()
