"""Generative models of the NAS benchmark workloads used in the paper.

The paper characterizes the workload from AIX traces of NAS ``pvmbt``
(block-tridiagonal solver) and, in Section 5, also uses ``pvmis``
(integer sort).  Neither the SP-2 nor the original traces are available,
so this module provides **generative workload profiles**: for every
process class, the distributions of CPU/network occupancy-request
lengths it exhibits, matching the Table 1 statistics for ``pvmbt`` and a
documented plausible analogue for ``pvmis``.

The synthetic tracing facility (:mod:`repro.workload.tracing`) plays a
profile forward to emit trace records; the characterization pipeline
then recovers Table 1 / Table 2 from those records, exercising the same
measurement → fitting → parameterization path as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..variates.distributions import Distribution, Exponential, Lognormal
from .records import ProcessType

__all__ = [
    "ProcessProfile",
    "BenchmarkProfile",
    "PVMBT",
    "PVMIS",
    "benchmark_by_name",
]


@dataclass(frozen=True)
class ProcessProfile:
    """Occupancy behaviour of one process class.

    ``cpu`` / ``network`` give the request-length distributions; the
    optional inter-arrival distributions make the process *open*
    (requests arrive on their own clock, e.g. the PVM daemon); when they
    are ``None`` the process alternates compute/communicate back to back
    (the closed, Figure-7 behaviour of the application).
    """

    cpu: Distribution
    network: Distribution
    cpu_interarrival: Optional[Distribution] = None
    network_interarrival: Optional[Distribution] = None


@dataclass(frozen=True)
class BenchmarkProfile:
    """A complete per-node workload: one profile per process class."""

    name: str
    description: str
    processes: Dict[ProcessType, ProcessProfile] = field(default_factory=dict)
    #: Fraction of wall time the application spends on CPU (used to pick
    #: how many alternation cycles fit a given trace duration).
    app_duty_cycle: float = 0.9

    def profile(self, process_type: ProcessType) -> ProcessProfile:
        try:
            return self.processes[process_type]
        except KeyError:
            raise KeyError(
                f"benchmark {self.name!r} has no profile for {process_type}"
            ) from None


def _pvmbt_processes() -> Dict[ProcessType, ProcessProfile]:
    """Table 1 moments for NAS pvmbt on the SP-2."""
    return {
        ProcessType.APPLICATION: ProcessProfile(
            cpu=Lognormal(2213, 3034),
            network=Exponential(223),
        ),
        ProcessType.PARADYN_DAEMON: ProcessProfile(
            cpu=Exponential(267),
            network=Exponential(71),
        ),
        ProcessType.PVM_DAEMON: ProcessProfile(
            cpu=Lognormal(294, 206),
            network=Exponential(58),
            cpu_interarrival=Exponential(6485),
            network_interarrival=Exponential(6485),
        ),
        ProcessType.OTHER: ProcessProfile(
            cpu=Lognormal(367, 819),
            network=Exponential(92),
            cpu_interarrival=Exponential(31_485),
            network_interarrival=Exponential(5_598_903),
        ),
        ProcessType.PARADYN_MAIN: ProcessProfile(
            cpu=Lognormal(3208, 3287),
            network=Lognormal(214, 451),
        ),
    }


def _pvmis_processes() -> Dict[ProcessType, ProcessProfile]:
    """Plausible analogue for NAS pvmis (integer sort).

    The paper does not tabulate pvmis moments; IS has shorter, bucketed
    CPU phases and more frequent (small) key exchanges than BT.  Section
    5 explicitly limits its scope to *CPU-intensive SPMD* applications,
    so the profile keeps a pvmbt-like CPU duty cycle while changing the
    burst structure.  What Section 5 tests — and what we verify — is
    that the CF→BF overhead *reduction is insensitive to the application
    choice*.
    """
    return {
        ProcessType.APPLICATION: ProcessProfile(
            cpu=Lognormal(850, 1100),
            network=Exponential(85),
        ),
        ProcessType.PARADYN_DAEMON: ProcessProfile(
            cpu=Exponential(267),
            network=Exponential(71),
        ),
        ProcessType.PVM_DAEMON: ProcessProfile(
            cpu=Lognormal(294, 206),
            network=Exponential(58),
            cpu_interarrival=Exponential(5200),
            network_interarrival=Exponential(5200),
        ),
        ProcessType.OTHER: ProcessProfile(
            cpu=Lognormal(367, 819),
            network=Exponential(92),
            cpu_interarrival=Exponential(31_485),
            network_interarrival=Exponential(5_598_903),
        ),
        ProcessType.PARADYN_MAIN: ProcessProfile(
            cpu=Lognormal(3208, 3287),
            network=Lognormal(214, 451),
        ),
    }


#: NAS pvmbt — block tridiagonal solver (Table 1 characterization).
PVMBT = BenchmarkProfile(
    name="pvmbt",
    description=(
        "NAS BT: solves three sets of uncoupled block-tridiagonal systems "
        "(5x5 blocks) in x, y, z; compute-dominated with periodic exchanges"
    ),
    processes=_pvmbt_processes(),
    app_duty_cycle=0.91,
)

#: NAS pvmis — integer sort kernel (plausible analogue, see module docs).
PVMIS = BenchmarkProfile(
    name="pvmis",
    description=(
        "NAS IS: parallel integer sort; short bucketed CPU phases with "
        "frequent small key exchanges (CPU-bound per the paper's §5 scope)"
    ),
    processes=_pvmis_processes(),
    app_duty_cycle=0.90,
)

_BY_NAME = {p.name: p for p in (PVMBT, PVMIS)}


def benchmark_by_name(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by its NAS name (``pvmbt``/``pvmis``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
