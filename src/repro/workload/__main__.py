"""Command-line trace generator and characterizer.

Usage examples::

    python -m repro.workload generate --benchmark pvmbt --seconds 10 \
        --out trace.csv
    python -m repro.workload characterize trace.csv
    python -m repro.workload characterize trace.csv --fit
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .characterize import fit_requests, summarize
from .nas import benchmark_by_name
from .records import TraceFile
from .tracing import AIXTraceFacility, TracingConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.workload",
        description="Generate and characterize AIX-like occupancy traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a trace to CSV")
    gen.add_argument("--benchmark", default="pvmbt",
                     help="NAS profile: pvmbt or pvmis")
    gen.add_argument("--seconds", type=float, default=10.0)
    gen.add_argument("--nodes", type=int, default=1)
    gen.add_argument("--apps", type=int, default=1)
    gen.add_argument("--period-ms", type=float, default=40.0)
    gen.add_argument("--batch", type=int, default=1)
    gen.add_argument("--main", action="store_true",
                     help="also trace the main Paradyn process")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output CSV path")

    cha = sub.add_parser("characterize", help="Table 1/2 from a trace CSV")
    cha.add_argument("trace", help="trace CSV produced by 'generate'")
    cha.add_argument("--fit", action="store_true",
                     help="also fit request-length distributions (Table 2)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        facility = AIXTraceFacility(
            benchmark_by_name(args.benchmark),
            TracingConfig(
                duration=args.seconds * 1e6,
                nodes=args.nodes,
                app_processes_per_node=args.apps,
                sampling_period=args.period_ms * 1000.0,
                batch_size=args.batch,
                trace_main_process=args.main,
                seed=args.seed,
            ),
        )
        trace = facility.trace()
        trace.to_csv(args.out)
        print(f"wrote {len(trace)} records ({trace.span() / 1e6:.2f} s) "
              f"to {args.out}")
        return 0

    trace = TraceFile.from_csv(args.trace)
    print(summarize(trace).format())
    if args.fit:
        print()
        for fit in fit_requests(trace):
            d = fit.distribution
            print(f"{fit.process_type.value:16s} {fit.resource.value:8s} "
                  f"-> {fit.family:12s} mean={d.mean:9.1f} std={d.std:9.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
