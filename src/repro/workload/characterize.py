"""Workload characterization pipeline: traces → Table 1 → Table 2.

Given a trace (real or synthetic), this module computes

* the per-process-class occupancy statistics of **Table 1**
  (:func:`summarize`), and
* fitted request-length distributions of **Table 2**
  (:func:`fit_requests`), using the Law & Kelton MLEs with a
  BIC-based parsimony rule so the nested exponential family wins over
  Weibull when the data are exponential (as the paper concludes for
  network requests), and
* a ready-to-simulate :class:`~repro.workload.parameters.WorkloadParameters`
  (:func:`build_parameters`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..variates.distributions import Distribution, Exponential, Lognormal
from ..variates.fitting import FitResult, fit_best
from .parameters import WorkloadParameters
from .records import ProcessType, ResourceKind, TraceFile

__all__ = [
    "OccupancyStats",
    "SummaryTable",
    "summarize",
    "RequestFit",
    "fit_requests",
    "build_parameters",
    "build_empirical_parameters",
]

#: Free parameters per family, for the BIC parsimony rule.
_N_PARAMS = {"exponential": 1, "weibull": 2, "lognormal": 2}


@dataclass
class OccupancyStats:
    """One cell group of Table 1: moments of request lengths."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_data(cls, data: Sequence[float]) -> "OccupancyStats":
        arr = np.asarray(data, dtype=float)
        if arr.size == 0:
            return cls(0, math.nan, math.nan, math.nan, math.nan)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )


@dataclass
class SummaryTable:
    """Table 1 analogue: per process class, CPU and network stats."""

    cpu: Dict[ProcessType, OccupancyStats]
    network: Dict[ProcessType, OccupancyStats]

    def row(self, ptype: ProcessType) -> Tuple[OccupancyStats, OccupancyStats]:
        return self.cpu[ptype], self.network[ptype]

    def format(self) -> str:
        """Render in the layout of Table 1 (values in µs)."""
        lines = [
            f"{'Process Type':22s} {'CPU mean':>9s} {'std':>9s} {'min':>7s} "
            f"{'max':>9s} | {'Net mean':>9s} {'std':>8s} {'min':>6s} {'max':>8s}"
        ]
        for ptype in ProcessType:
            c = self.cpu.get(ptype)
            n = self.network.get(ptype)
            if c is None and n is None:
                continue

            def fmt(s: Optional[OccupancyStats]) -> List[str]:
                if s is None or s.count == 0:
                    return ["-"] * 4
                return [
                    f"{s.mean:.0f}",
                    f"{s.std:.0f}",
                    f"{s.minimum:.0f}",
                    f"{s.maximum:.0f}",
                ]

            cf, nf = fmt(c), fmt(n)
            lines.append(
                f"{ptype.value:22s} {cf[0]:>9s} {cf[1]:>9s} {cf[2]:>7s} "
                f"{cf[3]:>9s} | {nf[0]:>9s} {nf[1]:>8s} {nf[2]:>6s} {nf[3]:>8s}"
            )
        return "\n".join(lines)


def summarize(trace: TraceFile) -> SummaryTable:
    """Compute the Table-1 summary statistics from a trace."""
    cpu: Dict[ProcessType, OccupancyStats] = {}
    net: Dict[ProcessType, OccupancyStats] = {}
    for ptype in ProcessType:
        cpu_data = trace.durations(process_type=ptype, resource=ResourceKind.CPU)
        net_data = trace.durations(process_type=ptype, resource=ResourceKind.NETWORK)
        if cpu_data:
            cpu[ptype] = OccupancyStats.from_data(cpu_data)
        if net_data:
            net[ptype] = OccupancyStats.from_data(net_data)
    return SummaryTable(cpu=cpu, network=net)


@dataclass
class RequestFit:
    """Chosen distribution for one (process class, resource) pair."""

    process_type: ProcessType
    resource: ResourceKind
    family: str
    distribution: Distribution
    candidates: List[FitResult]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestFit({self.process_type.value}/{self.resource.value}: "
            f"{self.family} {self.distribution!r})"
        )


def _bic(result: FitResult, n: int) -> float:
    return _N_PARAMS[result.family] * math.log(n) - 2.0 * result.loglik


def _select(data: Sequence[float]) -> Tuple[str, Distribution, List[FitResult]]:
    """Fit the Figure-8 candidates and pick by BIC (parsimony-aware)."""
    _, results = fit_best(data)
    n = len(data)
    best = min(results, key=lambda r: _bic(r, n))
    return best.family, best.distribution, results


def fit_requests(trace: TraceFile) -> List[RequestFit]:
    """Fit request-length distributions per (class, resource) — Table 2."""
    fits: List[RequestFit] = []
    for ptype in ProcessType:
        for resource in (ResourceKind.CPU, ResourceKind.NETWORK):
            data = trace.durations(process_type=ptype, resource=resource)
            if len(data) < 10:
                continue
            family, dist, candidates = _select(data)
            fits.append(
                RequestFit(
                    process_type=ptype,
                    resource=resource,
                    family=family,
                    distribution=dist,
                    candidates=candidates,
                )
            )
    return fits


def build_parameters(trace: TraceFile) -> WorkloadParameters:
    """Construct ROCC simulation parameters from a trace.

    Mirrors §2.4 of the paper: distribution fits for request lengths;
    classes missing from the trace keep their Table-2 defaults.
    """
    fits = {(f.process_type, f.resource): f.distribution for f in fit_requests(trace)}
    params = WorkloadParameters()

    def get(ptype: ProcessType, res: ResourceKind, default: Distribution) -> Distribution:
        return fits.get((ptype, res), default)

    params.app_cpu = get(ProcessType.APPLICATION, ResourceKind.CPU, params.app_cpu)
    params.app_network = get(
        ProcessType.APPLICATION, ResourceKind.NETWORK, params.app_network
    )
    params.pd_cpu = get(ProcessType.PARADYN_DAEMON, ResourceKind.CPU, params.pd_cpu)
    params.pd_network = get(
        ProcessType.PARADYN_DAEMON, ResourceKind.NETWORK, params.pd_network
    )
    params.pvmd_cpu = get(ProcessType.PVM_DAEMON, ResourceKind.CPU, params.pvmd_cpu)
    params.pvmd_network = get(
        ProcessType.PVM_DAEMON, ResourceKind.NETWORK, params.pvmd_network
    )
    params.other_cpu = get(ProcessType.OTHER, ResourceKind.CPU, params.other_cpu)
    params.other_network = get(
        ProcessType.OTHER, ResourceKind.NETWORK, params.other_network
    )
    params.main_cpu = get(ProcessType.PARADYN_MAIN, ResourceKind.CPU, params.main_cpu)
    params.main_network = get(
        ProcessType.PARADYN_MAIN, ResourceKind.NETWORK, params.main_network
    )
    params.pdm_cpu = params.pd_cpu
    return params


def build_empirical_parameters(
    trace: TraceFile, min_observations: int = 30
) -> WorkloadParameters:
    """Trace-playback parameterization: resample the raw measurements.

    Instead of the fitted families of :func:`build_parameters`, each
    request-length distribution becomes an
    :class:`~repro.variates.distributions.Empirical` over the observed
    durations — the "drive the model straight from the trace" option
    the workload-characterization literature (Hughes, cited in §2.2)
    contrasts with distribution fitting.  Pairs with fewer than
    ``min_observations`` records keep their Table-2 defaults.
    """
    from ..variates.distributions import Empirical

    params = WorkloadParameters()

    def maybe(ptype: ProcessType, res: ResourceKind, default: Distribution):
        data = trace.durations(process_type=ptype, resource=res)
        data = [d for d in data if d > 0]
        if len(data) < min_observations:
            return default
        return Empirical(data)

    params.app_cpu = maybe(ProcessType.APPLICATION, ResourceKind.CPU, params.app_cpu)
    params.app_network = maybe(
        ProcessType.APPLICATION, ResourceKind.NETWORK, params.app_network
    )
    params.pd_cpu = maybe(
        ProcessType.PARADYN_DAEMON, ResourceKind.CPU, params.pd_cpu
    )
    params.pd_network = maybe(
        ProcessType.PARADYN_DAEMON, ResourceKind.NETWORK, params.pd_network
    )
    params.pvmd_cpu = maybe(ProcessType.PVM_DAEMON, ResourceKind.CPU, params.pvmd_cpu)
    params.pvmd_network = maybe(
        ProcessType.PVM_DAEMON, ResourceKind.NETWORK, params.pvmd_network
    )
    params.other_cpu = maybe(ProcessType.OTHER, ResourceKind.CPU, params.other_cpu)
    params.other_network = maybe(
        ProcessType.OTHER, ResourceKind.NETWORK, params.other_network
    )
    params.main_cpu = maybe(
        ProcessType.PARADYN_MAIN, ResourceKind.CPU, params.main_cpu
    )
    params.pdm_cpu = params.pd_cpu
    return params
