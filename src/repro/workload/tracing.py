"""Synthetic AIX tracing facility.

The paper drives its workload characterization from traces produced by
the SP-2's AIX kernel tracing facility while NAS benchmarks run under
the Paradyn IS.  We have neither the SP-2 nor AIX, so this module
*generates* such traces from a :class:`~repro.workload.nas.BenchmarkProfile`:
for each traced node it plays the per-process occupancy behaviour
forward in (virtual) time and records every CPU/network occupancy
interval as a :class:`~repro.workload.records.TraceRecord`.

The instrumented-application sampling activity is included: every
``sampling_period`` the Paradyn daemon performs one collection (a CPU
request) per application process, and forwarding requests according to
the CF/BF batch size — so traces of the *measured* system in Section 5
can also be produced by this facility (see
:mod:`repro.experiments.validation` for the higher-fidelity path that
uses the full ROCC simulator instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..variates.distributions import Distribution
from ..variates.streams import StreamFactory
from .nas import BenchmarkProfile, ProcessProfile
from .records import ProcessType, ResourceKind, TraceFile, TraceRecord

__all__ = ["TracingConfig", "AIXTraceFacility"]


@dataclass
class TracingConfig:
    """Configuration of one synthetic tracing session."""

    #: Virtual duration of the traced run, µs.
    duration: float = 10_000_000.0
    #: Node indices to trace (the paper traces one worker node plus the
    #: node hosting the main Paradyn process).
    nodes: int = 1
    #: Application processes per node.
    app_processes_per_node: int = 1
    #: Sampling period of the Paradyn IS, µs.
    sampling_period: float = 40_000.0
    #: Batch size (1 = CF policy).
    batch_size: int = 1
    #: Whether the traced node also runs the main Paradyn process.
    trace_main_process: bool = False
    #: Root seed.
    seed: int = 0


class AIXTraceFacility:
    """Generates AIX-like occupancy traces for a benchmark profile."""

    def __init__(self, benchmark: BenchmarkProfile, config: Optional[TracingConfig] = None):
        self.benchmark = benchmark
        self.config = config or TracingConfig()

    # ------------------------------------------------------------------
    def trace(self) -> TraceFile:
        """Produce a trace covering every configured node."""
        cfg = self.config
        out = TraceFile()
        for node in range(cfg.nodes):
            streams = StreamFactory(seed=cfg.seed, replication=node)
            out.extend(self._trace_node(node, streams))
        out.sort()
        return out

    # ------------------------------------------------------------------
    def _trace_node(self, node: int, streams: StreamFactory) -> List[TraceRecord]:
        cfg = self.config
        records: List[TraceRecord] = []
        pid = 100  # arbitrary base pid per node

        for i in range(cfg.app_processes_per_node):
            records.extend(
                self._alternating(
                    node,
                    pid + i,
                    ProcessType.APPLICATION,
                    self.benchmark.profile(ProcessType.APPLICATION),
                    streams,
                    f"app{i}",
                )
            )
        pid += cfg.app_processes_per_node

        records.extend(self._paradyn_daemon(node, pid, streams))
        pid += 1

        records.extend(
            self._open_process(
                node,
                pid,
                ProcessType.PVM_DAEMON,
                self.benchmark.profile(ProcessType.PVM_DAEMON),
                streams,
                "pvmd",
            )
        )
        pid += 1

        records.extend(
            self._open_process(
                node,
                pid,
                ProcessType.OTHER,
                self.benchmark.profile(ProcessType.OTHER),
                streams,
                "other",
            )
        )
        pid += 1

        if cfg.trace_main_process:
            records.extend(self._main_process(node, pid, streams))
        return records

    # ------------------------------------------------------------------
    def _alternating(
        self,
        node: int,
        pid: int,
        ptype: ProcessType,
        profile: ProcessProfile,
        streams: StreamFactory,
        stream_name: str,
    ) -> List[TraceRecord]:
        """Closed, Figure-7 style process: CPU burst then network burst."""
        cfg = self.config
        cpu = streams.variates(f"{stream_name}/cpu", profile.cpu)
        net = streams.variates(f"{stream_name}/network", profile.network)
        records: List[TraceRecord] = []
        t = 0.0
        while t < cfg.duration:
            c = cpu()
            records.append(
                TraceRecord(t, node, pid, ptype, ResourceKind.CPU, c)
            )
            t += c
            if t >= cfg.duration:
                break
            n = net()
            records.append(
                TraceRecord(t, node, pid, ptype, ResourceKind.NETWORK, n)
            )
            t += n
        return records

    def _open_process(
        self,
        node: int,
        pid: int,
        ptype: ProcessType,
        profile: ProcessProfile,
        streams: StreamFactory,
        stream_name: str,
    ) -> List[TraceRecord]:
        """Open process: requests arrive on independent clocks."""
        cfg = self.config
        records: List[TraceRecord] = []
        if profile.cpu_interarrival is not None:
            records.extend(
                self._arrival_driven(
                    node, pid, ptype, ResourceKind.CPU,
                    profile.cpu, profile.cpu_interarrival,
                    streams, f"{stream_name}/cpu",
                )
            )
        if profile.network_interarrival is not None:
            records.extend(
                self._arrival_driven(
                    node, pid, ptype, ResourceKind.NETWORK,
                    profile.network, profile.network_interarrival,
                    streams, f"{stream_name}/network",
                )
            )
        return records

    def _arrival_driven(
        self,
        node: int,
        pid: int,
        ptype: ProcessType,
        resource: ResourceKind,
        length: Distribution,
        interarrival: Distribution,
        streams: StreamFactory,
        stream_name: str,
    ) -> List[TraceRecord]:
        cfg = self.config
        # Vectorized arrival generation (hot path for long traces).
        rng = streams.generator(stream_name)
        est = max(16, int(cfg.duration / max(interarrival.mean, 1e-9) * 1.3) + 16)
        gaps = np.asarray(interarrival.sample(rng, est), dtype=float)
        times = np.cumsum(gaps)
        while times.size and times[-1] < cfg.duration:
            more = np.asarray(interarrival.sample(rng, est), dtype=float)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        times = times[times < cfg.duration]
        lengths = np.asarray(length.sample(rng, times.size), dtype=float)
        return [
            TraceRecord(float(t), node, pid, ptype, resource, float(d))
            for t, d in zip(times, lengths)
        ]

    def _paradyn_daemon(
        self, node: int, pid: int, streams: StreamFactory
    ) -> List[TraceRecord]:
        """Daemon records: one collection per app process per period, plus
        forwarding requests every ``batch_size`` samples."""
        cfg = self.config
        profile = self.benchmark.profile(ProcessType.PARADYN_DAEMON)
        cpu = streams.variates("pd/cpu", profile.cpu)
        net = streams.variates("pd/network", profile.network)
        records: List[TraceRecord] = []
        t = cfg.sampling_period
        pending = 0
        while t < cfg.duration:
            for _ in range(cfg.app_processes_per_node):
                c = cpu()
                records.append(
                    TraceRecord(t, node, pid, ProcessType.PARADYN_DAEMON,
                                ResourceKind.CPU, c)
                )
                pending += 1
                if pending >= cfg.batch_size:
                    n = net()
                    records.append(
                        TraceRecord(t + c, node, pid, ProcessType.PARADYN_DAEMON,
                                    ResourceKind.NETWORK, n)
                    )
                    pending = 0
            t += cfg.sampling_period
        return records

    def _main_process(
        self, node: int, pid: int, streams: StreamFactory
    ) -> List[TraceRecord]:
        """Main Paradyn process: consumes one batch arrival per period."""
        cfg = self.config
        profile = self.benchmark.profile(ProcessType.PARADYN_MAIN)
        cpu = streams.variates("main/cpu", profile.cpu)
        net = streams.variates("main/network", profile.network)
        records: List[TraceRecord] = []
        t = cfg.sampling_period
        period = cfg.sampling_period * cfg.batch_size
        while t < cfg.duration:
            c = cpu()
            records.append(
                TraceRecord(t, node, pid, ProcessType.PARADYN_MAIN,
                            ResourceKind.CPU, c)
            )
            n = net()
            records.append(
                TraceRecord(t + c, node, pid, ProcessType.PARADYN_MAIN,
                            ResourceKind.NETWORK, n)
            )
            t += period
        return records
