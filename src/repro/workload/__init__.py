"""``repro.workload`` — traces, NAS profiles, characterization (§2.3).

This package is the measurement substrate: an AIX-like synthetic trace
facility, generative models of the NAS ``pvmbt``/``pvmis`` workloads,
the Table-1/Table-2 characterization pipeline, and the process state
machines of Figures 6 and 7.
"""

from .characterize import (
    OccupancyStats,
    RequestFit,
    SummaryTable,
    build_empirical_parameters,
    build_parameters,
    fit_requests,
    summarize,
)
from .nas import PVMBT, PVMIS, BenchmarkProfile, ProcessProfile, benchmark_by_name
from .parameters import (
    CPU_QUANTUM_US,
    PAPER_PARAMETERS,
    TYPICAL_SAMPLING_PERIOD_US,
    WorkloadParameters,
)
from .process_model import (
    DETAILED_TRANSITIONS,
    DetailedState,
    ProcessStateMachine,
    SimpleState,
    legal_sequence,
    simplify,
)
from .generators import (
    TRAFFIC_REGISTRY,
    BurstyWorkload,
    FlashCrowdWorkload,
    OpenWorkload,
    RVConfig,
    StationaryWorkload,
    TraceReplayWorkload,
    TrafficGenerator,
    TrafficSpec,
    available_traffic,
    register_traffic,
    traffic_generator,
)
from .records import ProcessType, ResourceKind, TraceFile, TraceRecord
from .tracing import AIXTraceFacility, TracingConfig

__all__ = [
    "TrafficSpec",
    "TrafficGenerator",
    "RVConfig",
    "StationaryWorkload",
    "TraceReplayWorkload",
    "BurstyWorkload",
    "FlashCrowdWorkload",
    "OpenWorkload",
    "TRAFFIC_REGISTRY",
    "register_traffic",
    "traffic_generator",
    "available_traffic",
    "ProcessType",
    "ResourceKind",
    "TraceRecord",
    "TraceFile",
    "AIXTraceFacility",
    "TracingConfig",
    "BenchmarkProfile",
    "ProcessProfile",
    "PVMBT",
    "PVMIS",
    "benchmark_by_name",
    "WorkloadParameters",
    "PAPER_PARAMETERS",
    "CPU_QUANTUM_US",
    "TYPICAL_SAMPLING_PERIOD_US",
    "summarize",
    "SummaryTable",
    "OccupancyStats",
    "fit_requests",
    "RequestFit",
    "build_parameters",
    "build_empirical_parameters",
    "DetailedState",
    "SimpleState",
    "DETAILED_TRANSITIONS",
    "ProcessStateMachine",
    "simplify",
    "legal_sequence",
]
