"""Open-workload traffic generators driving the ROCC instrumentation system.

The paper evaluates the Paradyn IS only under *closed* workloads: a
fixed population of per-node application processes that compute,
communicate, and immediately start over.  Real monitored systems face
*open* arrivals — externally driven, bursty, diurnal, occasionally a
flash crowd.  This module supplies those arrival models as **lazy
iterator workloads** (after icarus's ``scenarios/workload.py``): a
generator never materializes its event schedule in RAM; each call to
``__iter__`` returns a fresh stream of events generated on the fly.

Every generator is registered under a name (:func:`register_traffic`)
and is instantiated from a declarative, picklable :class:`TrafficSpec`
(``name`` plus ``key=value`` parameters — also parseable from the CLI
syntax ``NAME[:k=v,...]``).  The spec travels inside
:class:`~repro.rocc.config.SimulationConfig`, so the experiment
engine's content-addressed cell fingerprint covers the workload
automatically.

**Event protocol.**  Iterating a generator yields ``(time_us, node,
active_users)`` triples in non-decreasing time order:

* ``node >= 0`` — one request arrives at that node at ``time_us``;
* ``node == USERS_MARKER`` (−1) — no request; the generator's active
  user population changed to ``active_users`` at ``time_us`` (only the
  ``open`` model emits these).

``active_users`` is ``nan`` for generators without a user-population
model.

**Determinism.**  A generator owns a :class:`numpy.random.SeedSequence`
and builds a *fresh* PCG64 stream at the start of every iteration, so
the same ``(spec, seed)`` pair always produces the same arrivals —
across two iterations of the same object and across rebuilt objects.
Inside a simulation the seed sequence is derived from the cell's
variate-stream factory, which keeps runs replay-deterministic and
cache-fingerprintable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Type

import numpy as np

__all__ = [
    "USERS_MARKER",
    "TrafficEvent",
    "RVConfig",
    "TrafficSpec",
    "TrafficGenerator",
    "StationaryWorkload",
    "TraceReplayWorkload",
    "BurstyWorkload",
    "FlashCrowdWorkload",
    "OpenWorkload",
    "register_traffic",
    "traffic_generator",
    "available_traffic",
    "TRAFFIC_REGISTRY",
]

#: Pseudo node id of an active-user level-change marker event.
USERS_MARKER = -1

#: One workload event: ``(time_us, node, active_users)``.
TrafficEvent = Tuple[float, int, float]

#: Per-user request rate is expressed in requests/minute (AsyncFlow's
#: ``avg_request_per_minute_per_user``); times here are µs.
_US_PER_MINUTE = 60e6
_US_PER_SECOND = 1e6

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

TRAFFIC_REGISTRY: Dict[str, Type["TrafficGenerator"]] = {}


def register_traffic(name: str):
    """Class decorator registering a workload generator under *name*."""

    def decorator(cls: Type["TrafficGenerator"]) -> Type["TrafficGenerator"]:
        if name in TRAFFIC_REGISTRY:
            raise ValueError(f"traffic generator {name!r} already registered")
        TRAFFIC_REGISTRY[name] = cls
        cls.workload_name = name
        return cls

    return decorator


def traffic_generator(name: str) -> Type["TrafficGenerator"]:
    """Look up a registered generator class by name."""
    try:
        return TRAFFIC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available_traffic())}"
        ) from None


def available_traffic() -> Tuple[str, ...]:
    """Names of all registered workload generators, sorted."""
    return tuple(sorted(TRAFFIC_REGISTRY))


# ---------------------------------------------------------------------------
# Declarative spec
# ---------------------------------------------------------------------------


def _parse_value(text: str) -> Any:
    """CLI parameter literal → int / float / bool / str."""
    low = text.strip()
    if low.lower() in ("true", "yes", "on"):
        return True
    if low.lower() in ("false", "no", "off"):
        return False
    try:
        return int(low)
    except ValueError:
        pass
    try:
        return float(low)
    except ValueError:
        pass
    return low


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative, picklable description of one traffic workload.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so that two
    specs describing the same workload are equal, hash equal, and
    fingerprint equal regardless of construction order.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", tuple(sorted(tuple(p) for p in self.params))
        )

    # -- construction ----------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "TrafficSpec":
        """Parse the CLI syntax ``NAME[:k=v,...]``.

        Example: ``open:avg_users=200,rpm=30,window_s=0.5``.
        """
        text = text.strip()
        if not text:
            raise ValueError("empty workload spec")
        name, _, rest = text.partition(":")
        name = name.strip()
        params = []
        if rest.strip():
            for pair in rest.split(","):
                key, eq, raw = pair.partition("=")
                if not eq or not key.strip():
                    raise ValueError(
                        f"malformed workload parameter {pair!r} in {text!r} "
                        "(expected k=v)"
                    )
                params.append((key.strip(), _parse_value(raw)))
        return cls(name=name, params=tuple(params))

    @classmethod
    def of(cls, name: str, **params: Any) -> "TrafficSpec":
        """Programmatic constructor: ``TrafficSpec.of("open", rpm=30)``."""
        return cls(name=name, params=tuple(params.items()))

    @classmethod
    def coerce(cls, value) -> "TrafficSpec":
        """Accept a spec, a CLI string, or a ``{"name": ..., ...}`` dict."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            d = dict(value)
            try:
                name = d.pop("name")
            except KeyError:
                raise ValueError(
                    "workload dict must carry a 'name' key"
                ) from None
            return cls(name=name, params=tuple(d.items()))
        raise TypeError(
            f"cannot build a TrafficSpec from {type(value).__name__}"
        )

    # -- use -------------------------------------------------------------
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        """Round-trippable CLI form of the spec."""
        if not self.params:
            return self.name
        joined = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}:{joined}"

    def build(
        self, nodes: int, seed_seq: Optional[np.random.SeedSequence] = None
    ) -> "TrafficGenerator":
        """Instantiate the registered generator for *nodes* targets."""
        cls = traffic_generator(self.name)
        if seed_seq is None:
            seed_seq = np.random.SeedSequence(0)
        try:
            return cls(nodes=nodes, seed_seq=seed_seq, **self.kwargs())
        except TypeError as exc:
            raise ValueError(
                f"bad parameters for workload {self.name!r}: {exc}"
            ) from None

    def validate(self) -> None:
        """Fail fast on an unknown name or bad parameters."""
        self.build(nodes=1)


# ---------------------------------------------------------------------------
# Generator base class
# ---------------------------------------------------------------------------


class TrafficGenerator:
    """Base of every iterator-style workload.

    Subclasses implement :meth:`events`, a generator over
    :data:`TrafficEvent` triples that receives a fresh random stream
    per iteration.  Times must be non-decreasing and non-negative.
    """

    workload_name = "?"

    def __init__(self, nodes: int, seed_seq: np.random.SeedSequence):
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        self.nodes = int(nodes)
        self._seed_seq = seed_seq

    def _fresh_rng(self) -> np.random.Generator:
        # SeedSequence.generate_state is a pure function, so every
        # iteration starts an identical PCG64 stream: iterating twice
        # yields the same arrivals.
        return np.random.Generator(np.random.PCG64(self._seed_seq))

    def __iter__(self) -> Iterator[TrafficEvent]:
        return self.events(self._fresh_rng())

    def events(self, rng: np.random.Generator) -> Iterator[TrafficEvent]:
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------
    def _node_picker(self, rng: np.random.Generator, alpha: float = 0.0):
        """Node-popularity sampler: uniform, or truncated Zipf(alpha).

        Under Zipf popularity, node ``i`` receives requests with
        probability proportional to ``1 / (i + 1) ** alpha`` (icarus's
        ``TruncatedZipfDist`` over receivers).
        """
        n = self.nodes
        if alpha <= 0.0:
            def pick_uniform() -> int:
                return int(rng.integers(0, n))

            return pick_uniform
        weights = np.arange(1, n + 1, dtype=float) ** -float(alpha)
        cdf = np.cumsum(weights / weights.sum())

        def pick_zipf() -> int:
            return int(np.searchsorted(cdf, rng.random(), side="right"))

        return pick_zipf

    def _thinned_poisson(
        self,
        rng: np.random.Generator,
        rate_of,  # t_us -> requests per µs
        rate_max: float,  # per µs, must dominate rate_of everywhere
        pick,
    ) -> Iterator[TrafficEvent]:
        """Lewis–Shedler thinning for a time-varying Poisson process."""
        if rate_max <= 0.0:
            return
        t = 0.0
        scale = 1.0 / rate_max
        while True:
            t += rng.exponential(scale)
            if rng.random() < rate_of(t) / rate_max:
                yield (t, pick(), math.nan)


def _require_positive(name: str, value: float) -> float:
    value = float(value)
    if not value > 0.0 or not math.isfinite(value):
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def _require_nonnegative(name: str, value: float) -> float:
    value = float(value)
    if value < 0.0 or not math.isfinite(value):
        raise ValueError(f"{name} must be >= 0 and finite, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Stationary Poisson × Zipf
# ---------------------------------------------------------------------------


@register_traffic("stationary")
class StationaryWorkload(TrafficGenerator):
    """Stationary Poisson arrivals with Zipf-distributed node popularity.

    Parameters
    ----------
    rate:
        Aggregate request rate, requests per simulated **second**.
        ``rate=0`` is the explicit no-traffic workload (used by the
        differential no-op check).
    alpha:
        Zipf skew of node popularity; ``0`` = uniform over nodes.
    """

    def __init__(self, nodes, seed_seq, rate: float = 100.0,
                 alpha: float = 0.0):
        super().__init__(nodes, seed_seq)
        self.rate = _require_nonnegative("rate", rate)
        self.alpha = _require_nonnegative("alpha", alpha)

    def events(self, rng: np.random.Generator) -> Iterator[TrafficEvent]:
        if self.rate == 0.0:
            return
        pick = self._node_picker(rng, self.alpha)
        scale = _US_PER_SECOND / self.rate  # mean inter-arrival, µs
        t = 0.0
        while True:
            t += rng.exponential(scale)
            yield (t, pick(), math.nan)


# ---------------------------------------------------------------------------
# Trace-driven replay
# ---------------------------------------------------------------------------


@register_traffic("replay")
class TraceReplayWorkload(TrafficGenerator):
    """Replay arrivals from a recorded trace, streamed lazily.

    Parameters
    ----------
    path:
        Text file with one arrival per line: ``time_us [node]``
        (whitespace-separated; blank lines and ``#`` comments are
        skipped).  Read lazily on each iteration, so a multi-gigabyte
        trace never lives in RAM.
    times:
        Programmatic alternative to *path*: a sequence of arrival
        times (µs).  Exactly one of *path* / *times* must be given.
    scale:
        Time-dilation factor applied to every timestamp (``2`` plays
        the trace at half speed).
    loop:
        Repeat the trace forever, shifting each pass by the previous
        pass's end time.

    Lines without a node column are assigned uniformly at random (from
    the generator's own deterministic stream); explicit node ids are
    folded modulo the node count so a trace recorded on a larger
    cluster still replays.
    """

    def __init__(self, nodes, seed_seq, path: Optional[str] = None,
                 times: Optional[Sequence[float]] = None,
                 scale: float = 1.0, loop: bool = False):
        super().__init__(nodes, seed_seq)
        if (path is None) == (times is None):
            raise ValueError("replay needs exactly one of path= or times=")
        self.path = path
        self.times = tuple(float(t) for t in times) if times is not None else None
        self.scale = _require_positive("scale", scale)
        self.loop = bool(loop)
        if self.times is not None:
            self._check_monotone(self.times)

    @staticmethod
    def _check_monotone(ts: Sequence[float]) -> None:
        last = 0.0
        for t in ts:
            if t < 0.0 or not math.isfinite(t):
                raise ValueError(f"trace time {t!r} is not a finite time >= 0")
            if t < last:
                raise ValueError(
                    f"trace times must be non-decreasing ({t} after {last})"
                )
            last = t

    def _records(self) -> Iterator[Tuple[float, Optional[int]]]:
        if self.times is not None:
            for t in self.times:
                yield t, None
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                parts = text.split()
                try:
                    t = float(parts[0])
                    node = int(parts[1]) if len(parts) > 1 else None
                except ValueError:
                    raise ValueError(
                        f"{self.path}:{lineno}: malformed trace line {line!r}"
                    ) from None
                yield t, node

    def events(self, rng: np.random.Generator) -> Iterator[TrafficEvent]:
        pick = self._node_picker(rng)
        offset = 0.0
        while True:
            last = 0.0
            seen = False
            for t, node in self._records():
                if self.times is None:  # file path: validate as we stream
                    if t < 0.0 or not math.isfinite(t):
                        raise ValueError(
                            f"trace time {t!r} is not a finite time >= 0"
                        )
                    if t < last:
                        raise ValueError(
                            "trace times must be non-decreasing "
                            f"({t} after {last})"
                        )
                last = t
                seen = True
                where = pick() if node is None else node % self.nodes
                yield (offset + t * self.scale, where, math.nan)
            if not self.loop or not seen:
                return
            offset += last * self.scale


# ---------------------------------------------------------------------------
# Bursty / diurnal modulation
# ---------------------------------------------------------------------------


@register_traffic("bursty")
class BurstyWorkload(TrafficGenerator):
    """Sinusoidally modulated Poisson arrivals (diurnal / bursty load).

    The instantaneous rate is ``rate · (1 + depth · sin(2πt/period +
    phase))``, sampled exactly by Lewis–Shedler thinning against the
    peak rate — still lazy, still deterministic.

    Parameters
    ----------
    rate:       mean request rate, requests per simulated second.
    period_s:   modulation period, seconds (a "day" at simulation scale).
    depth:      modulation depth in ``[0, 1)``; 0 degenerates to
                stationary Poisson.
    phase:      phase offset, radians.
    alpha:      Zipf skew of node popularity (0 = uniform).
    """

    def __init__(self, nodes, seed_seq, rate: float = 100.0,
                 period_s: float = 1.0, depth: float = 0.5,
                 phase: float = 0.0, alpha: float = 0.0):
        super().__init__(nodes, seed_seq)
        self.rate = _require_positive("rate", rate)
        self.period_s = _require_positive("period_s", period_s)
        depth = float(depth)
        if not 0.0 <= depth < 1.0:
            raise ValueError(f"depth must lie in [0, 1), got {depth!r}")
        self.depth = depth
        self.phase = float(phase)
        self.alpha = _require_nonnegative("alpha", alpha)

    def events(self, rng: np.random.Generator) -> Iterator[TrafficEvent]:
        pick = self._node_picker(rng, self.alpha)
        base = self.rate / _US_PER_SECOND  # per µs
        omega = 2.0 * math.pi / (self.period_s * _US_PER_SECOND)
        depth, phase = self.depth, self.phase

        def rate_of(t: float) -> float:
            return base * (1.0 + depth * math.sin(omega * t + phase))

        return self._thinned_poisson(
            rng, rate_of, base * (1.0 + depth), pick
        )


# ---------------------------------------------------------------------------
# Flash crowd
# ---------------------------------------------------------------------------


@register_traffic("flashcrowd")
class FlashCrowdWorkload(TrafficGenerator):
    """Baseline Poisson load with recurring flash-crowd surges.

    The rate is ``rate`` outside surge windows and ``rate ×
    multiplier`` inside them; surges start at ``first_at`` and repeat
    every ``every_s`` seconds (``every_s=0`` → a single surge), each
    lasting ``duration_s``.

    Parameters
    ----------
    rate:        baseline request rate, requests per simulated second.
    multiplier:  rate multiplier during a surge (> 1).
    first_at_s:  start of the first surge, seconds.
    duration_s:  surge duration, seconds.
    every_s:     surge spacing, seconds (0 = one surge only).
    alpha:       Zipf skew of node popularity (0 = uniform).
    """

    def __init__(self, nodes, seed_seq, rate: float = 100.0,
                 multiplier: float = 10.0, first_at_s: float = 1.0,
                 duration_s: float = 0.5, every_s: float = 0.0,
                 alpha: float = 0.0):
        super().__init__(nodes, seed_seq)
        self.rate = _require_positive("rate", rate)
        self.multiplier = float(multiplier)
        if self.multiplier <= 1.0:
            raise ValueError(
                f"multiplier must be > 1 (got {self.multiplier!r}); "
                "use 'stationary' for flat load"
            )
        self.first_at_s = _require_nonnegative("first_at_s", first_at_s)
        self.duration_s = _require_positive("duration_s", duration_s)
        self.every_s = _require_nonnegative("every_s", every_s)
        if 0.0 < self.every_s <= self.duration_s:
            raise ValueError("every_s must exceed duration_s (or be 0)")
        self.alpha = _require_nonnegative("alpha", alpha)

    def _surging(self, t_us: float) -> bool:
        first = self.first_at_s * _US_PER_SECOND
        if t_us < first:
            return False
        if self.every_s == 0.0:
            return t_us < first + self.duration_s * _US_PER_SECOND
        within = (t_us - first) % (self.every_s * _US_PER_SECOND)
        return within < self.duration_s * _US_PER_SECOND

    def events(self, rng: np.random.Generator) -> Iterator[TrafficEvent]:
        pick = self._node_picker(rng, self.alpha)
        base = self.rate / _US_PER_SECOND
        mult = self.multiplier

        def rate_of(t: float) -> float:
            return base * mult if self._surging(t) else base

        return self._thinned_poisson(rng, rate_of, base * mult, pick)


# ---------------------------------------------------------------------------
# AsyncFlow-style open model
# ---------------------------------------------------------------------------

#: Bounds of the user resampling window, seconds.  AsyncFlow constrains
#: the window to [1, 120] wall seconds; ROCC cells simulate a few
#: seconds total, so the lower bound here admits sub-second windows.
MIN_USER_SAMPLING_WINDOW_S = 0.01
MAX_USER_SAMPLING_WINDOW_S = 120.0


@dataclass(frozen=True)
class RVConfig:
    """A random variable of the open model (AsyncFlow's ``RVConfig``).

    ``mean`` must be positive; ``distribution`` is ``poisson`` or
    ``normal``; ``variance`` defaults to ``mean`` for the normal
    distribution (and is meaningless for Poisson, whose variance *is*
    the mean).
    """

    mean: float
    distribution: str = "poisson"
    variance: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mean", float(self.mean))
        if not self.mean > 0.0 or not math.isfinite(self.mean):
            raise ValueError(f"RVConfig.mean must be positive, got {self.mean!r}")
        if self.distribution not in ("poisson", "normal"):
            raise ValueError(
                f"RVConfig.distribution must be 'poisson' or 'normal', "
                f"got {self.distribution!r}"
            )
        if self.variance is None and self.distribution == "normal":
            object.__setattr__(self, "variance", self.mean)
        if self.variance is not None:
            object.__setattr__(self, "variance", float(self.variance))
            if self.variance < 0.0:
                raise ValueError("RVConfig.variance must be >= 0")

    def sample(self, rng: np.random.Generator) -> float:
        """One non-negative draw."""
        if self.distribution == "poisson":
            return float(rng.poisson(self.mean))
        value = rng.normal(self.mean, math.sqrt(self.variance))
        return max(0.0, value)


@register_traffic("open")
class OpenWorkload(TrafficGenerator):
    """AsyncFlow-style open arrival model: users × per-user rate.

    Every ``window_s`` seconds the active-user population is resampled
    from ``avg_users`` (Poisson or Normal); within a window, requests
    form a Poisson process of rate ``users × rpm / 60`` per second.
    The supported joint cases match AsyncFlow's requests generator:
    Poisson×Poisson and Normal×Poisson — the per-user rate **must** be
    Poisson-distributed (its ``rpm`` parameter is the Poisson mean of
    a per-user requests-per-minute count, redrawn each window).

    Emits a :data:`USERS_MARKER` event at every window boundary so the
    simulation can integrate the active-user level over time.

    Parameters
    ----------
    avg_users:   mean concurrent active users.
    users_dist:  ``poisson`` (default) or ``normal``.
    users_var:   variance when ``users_dist='normal'`` (default: mean).
    rpm:         mean requests per minute per user (Poisson).
    window_s:    user resampling window, seconds, within
                 [:data:`MIN_USER_SAMPLING_WINDOW_S`,
                 :data:`MAX_USER_SAMPLING_WINDOW_S`].
    alpha:       Zipf skew of node popularity (0 = uniform).
    """

    def __init__(self, nodes, seed_seq, avg_users: float = 100.0,
                 users_dist: str = "poisson",
                 users_var: Optional[float] = None,
                 rpm: float = 60.0, window_s: float = 1.0,
                 alpha: float = 0.0):
        super().__init__(nodes, seed_seq)
        self.users = RVConfig(
            mean=avg_users, distribution=users_dist, variance=users_var
        )
        self.rpm = RVConfig(mean=rpm, distribution="poisson")
        window_s = float(window_s)
        if not (
            MIN_USER_SAMPLING_WINDOW_S <= window_s <= MAX_USER_SAMPLING_WINDOW_S
        ):
            raise ValueError(
                f"window_s must lie in [{MIN_USER_SAMPLING_WINDOW_S}, "
                f"{MAX_USER_SAMPLING_WINDOW_S}] seconds, got {window_s!r}"
            )
        self.window_s = window_s
        self.alpha = _require_nonnegative("alpha", alpha)

    def events(self, rng: np.random.Generator) -> Iterator[TrafficEvent]:
        pick = self._node_picker(rng, self.alpha)
        window_us = self.window_s * _US_PER_SECOND
        t = 0.0
        while True:
            users = self.users.sample(rng)
            yield (t, USERS_MARKER, users)
            end = t + window_us
            if users > 0.0:
                # Per-user requests/minute, redrawn per window; the
                # window's aggregate rate is users × rpm_draw / minute.
                rpm_draw = self.rpm.sample(rng)
                rate = users * rpm_draw / _US_PER_MINUTE  # per µs
                if rate > 0.0:
                    scale = 1.0 / rate
                    s = t + rng.exponential(scale)
                    while s < end:
                        yield (s, pick(), users)
                        s += rng.exponential(scale)
            t = end
