"""Workload-characterization experiments: Tables 1–3 and Figure 8.

These reproduce §2.3–2.4: synthesize an AIX-like trace of NAS ``pvmbt``
under the Paradyn IS (the measurement substitute, see DESIGN.md §2),
push it through the same summary → fitting pipeline the paper used,
and validate the parameterized simulator against the "measurement".
"""

from __future__ import annotations

from ..rocc.config import SimulationConfig
from ..rocc.system import simulate
from ..variates.fitting import fit_best
from ..variates.goodness import histogram_series, qq_series
from ..workload.characterize import fit_requests, summarize
from ..workload.nas import PVMBT
from ..workload.records import ProcessType, ResourceKind
from ..workload.tracing import AIXTraceFacility, TracingConfig
from .registry import register
from .reporting import ArtifactGroup, SeriesSet, Table

__all__ = ["table1", "figure8", "table2", "table3"]


def _pvmbt_trace(quick: bool, seed: int = 11):
    duration = 5_000_000.0 if quick else 60_000_000.0
    cfg = TracingConfig(
        duration=duration,
        nodes=1,
        app_processes_per_node=1,
        sampling_period=40_000.0,
        batch_size=1,
        trace_main_process=True,
        seed=seed,
    )
    return AIXTraceFacility(PVMBT, cfg).trace()


@register(
    "table1",
    "Table 1 — occupancy statistics of NAS pvmbt on an SP-2 (synthetic)",
    "Table 1",
)
def table1(quick: bool = True, seed: int = 11) -> Table:
    """Summary statistics of CPU/network occupancy requests per process."""
    trace = _pvmbt_trace(quick, seed)
    summary = summarize(trace)
    table = Table(
        title="Table 1: occupancy-request statistics (µs), NAS pvmbt",
        headers=[
            "process", "cpu_mean", "cpu_std", "cpu_min", "cpu_max",
            "net_mean", "net_std", "net_min", "net_max",
        ],
        notes=[
            "synthetic AIX trace (generative pvmbt profile); paper values: "
            "app cpu 2213/3034, pd cpu 267/197, pvmd cpu 294/206, "
            "other cpu 367/819, main cpu 3208/3287",
        ],
    )
    for ptype in ProcessType:
        c = summary.cpu.get(ptype)
        n = summary.network.get(ptype)
        if c is None and n is None:
            continue

        def cell(stats, attr):
            return getattr(stats, attr) if stats is not None else float("nan")

        table.add_row(
            ptype.value,
            cell(c, "mean"), cell(c, "std"), cell(c, "minimum"), cell(c, "maximum"),
            cell(n, "mean"), cell(n, "std"), cell(n, "minimum"), cell(n, "maximum"),
        )
    return table


@register(
    "figure8",
    "Figure 8 — histograms, candidate pdfs, and Q-Q plots for the "
    "application's CPU and network request lengths",
    "Figure 8",
)
def figure8(quick: bool = True, seed: int = 11) -> ArtifactGroup:
    """Distribution fitting for application CPU (lognormal wins) and
    network (exponential wins) occupancy requests."""
    trace = _pvmbt_trace(quick, seed)
    group = ArtifactGroup(title="Figure 8: application request-length fitting")
    for resource, expected in (
        (ResourceKind.CPU, "lognormal"),
        (ResourceKind.NETWORK, "exponential"),
    ):
        data = trace.durations(
            process_type=ProcessType.APPLICATION, resource=resource
        )
        best, results = fit_best(data)
        fits = Table(
            title=f"{resource.value} requests: candidate fits",
            headers=["family", "loglik", "ks", "mean", "std"],
            notes=[f"paper's winner: {expected}"],
        )
        for r in sorted(results, key=lambda r: -r.loglik):
            fits.add_row(
                r.family, r.loglik, r.ks_statistic,
                r.distribution.mean, r.distribution.std,
            )
        group.add(fits)

        hist = histogram_series(
            data, {r.family: r.distribution for r in results}, n_bins=24
        )
        centers = (hist.edges[:-1] + hist.edges[1:]) / 2.0
        panel = SeriesSet(
            title=f"{resource.value} requests: histogram vs fitted pdfs "
            f"(sampled at bin centers)",
            x_label="length_us",
            y_label="density",
            x=[float(c) for c in centers],
        )
        panel.add_series("observed", [float(f) for f in hist.frequencies])
        for fam, curve in hist.pdf_curves.items():
            import numpy as np

            at_centers = np.interp(centers, hist.pdf_x, curve)
            panel.add_series(fam, [float(v) for v in at_centers])
        group.add(panel)

        qq = qq_series(data, best.distribution)
        qq_summary = Table(
            title=f"{resource.value} requests: Q-Q diagnostics vs {best.family}",
            headers=["statistic", "value"],
        )
        qq_summary.add_row("linearity (corr)", qq.linearity())
        qq_summary.add_row("max tail deviation (µs)", qq.max_tail_deviation())
        qq_summary.add_row("n", len(data))
        group.add(qq_summary)
    return group


@register(
    "table2",
    "Table 2 — fitted ROCC model parameters per process class",
    "Table 2",
)
def table2(quick: bool = True, seed: int = 11) -> Table:
    """MLE fits (with BIC parsimony) per (process, resource) pair."""
    trace = _pvmbt_trace(quick, seed)
    table = Table(
        title="Table 2: fitted request-length distributions",
        headers=["process", "resource", "family", "mean_us", "std_us"],
        notes=[
            "paper: app cpu lognormal(2213,3034); app net exp(223); "
            "pd cpu exp(267); pd net exp(71); pvmd cpu lognormal(294,206); "
            "other cpu lognormal(367,819)",
        ],
    )
    for fit in fit_requests(trace):
        table.add_row(
            fit.process_type.value,
            fit.resource.value,
            fit.family,
            fit.distribution.mean,
            fit.distribution.std,
        )
    return table


@register(
    "table3",
    "Table 3 — model validation: measured vs simulated CPU times",
    "Table 3",
)
def table3(quick: bool = True, seed: int = 11) -> Table:
    """Compare trace-derived ("measured") CPU time against the ROCC
    simulation of the same configuration (§2.4)."""
    duration = 5_000_000.0 if quick else 100_000_000.0
    trace_cfg = TracingConfig(
        duration=duration, nodes=1, sampling_period=40_000.0,
        batch_size=1, seed=seed,
    )
    trace = AIXTraceFacility(PVMBT, trace_cfg).trace()
    measured_app = trace.busy_time(
        process_type=ProcessType.APPLICATION, resource=ResourceKind.CPU
    )
    measured_pd = trace.busy_time(
        process_type=ProcessType.PARADYN_DAEMON, resource=ResourceKind.CPU
    )

    sim = simulate(
        SimulationConfig(
            nodes=1, duration=duration, sampling_period=40_000.0,
            batch_size=1, seed=seed,
        )
    )
    table = Table(
        title="Table 3: measurement vs simulation (CPU seconds)",
        headers=["experiment", "app_cpu_s", "pd_cpu_s"],
        notes=[
            "paper: measured 85.71 / 0.74; simulated 87.96 / 0.59 (100 s run)",
            f"duration here: {duration / 1e6:g} s",
        ],
    )
    table.add_row("measurement based", measured_app / 1e6, measured_pd / 1e6)
    table.add_row(
        "simulation model based",
        sim.app_cpu_time_per_node / 1e6,
        sim.pd_cpu_time_per_node / 1e6,
    )
    return table
