"""Cross-validation of the analytic model against the simulator.

Registered as ``extra_crossvalidation``: for a grid of NOW operating
points it tabulates equations (1)–(6) next to the simulated values —
quantifying the paper's §3 caveat that operational analysis captures
"the gross changes in the metric values" but not contention detail.
"""

from __future__ import annotations

from ..analytical.now import NOWAnalyticalModel
from ..analytical.operational import ISDemands
from ..rocc.config import NetworkMode, SimulationConfig
from ..rocc.system import simulate
from .registry import register
from .reporting import Table

__all__ = ["extra_crossvalidation"]


@register(
    "extra_crossvalidation",
    "Extension — operational analysis vs simulation, point by point",
    "§3 (accuracy of the back-of-the-envelope model)",
)
def extra_crossvalidation(quick: bool = True) -> Table:
    """Analytic vs simulated Pd utilization and latency on a NOW grid."""
    duration = 2_000_000.0 if quick else 10_000_000.0
    table = Table(
        title="Operational analysis (eqs 1-6) vs simulation — NOW",
        headers=[
            "period_ms", "batch", "pd_util_analytic_pct",
            "pd_util_sim_pct", "util_error_pct",
            "latency_analytic_ms", "latency_sim_ms",
        ],
        notes=[
            "utilizations agree (flow balance holds below saturation); "
            "the analytic latency omits CPU contention with the "
            "application, hence the systematic gap — exactly the §3 "
            "caveat",
        ],
    )
    base = SimulationConfig(
        nodes=4, duration=duration, seed=9,
        network_mode=NetworkMode.CONTENTION_FREE,
    )
    grid = [(5.0, 1), (20.0, 1), (40.0, 1), (20.0, 32)] if quick else [
        (2.0, 1), (5.0, 1), (10.0, 1), (20.0, 1), (40.0, 1),
        (5.0, 32), (20.0, 32), (40.0, 32),
    ]
    for period_ms, batch in grid:
        analytic = NOWAnalyticalModel(
            nodes=4,
            sampling_period=period_ms * 1000.0,
            batch_size=batch,
            demands=ISDemands.from_cost_models(
                base.daemon_costs, base.main_costs, batch
            ),
        )
        sim = simulate(
            base.with_(sampling_period=period_ms * 1000.0, batch_size=batch)
        )
        a_util = 100 * analytic.pd_cpu_utilization()
        s_util = 100 * sim.pd_cpu_utilization_per_node
        table.add_row(
            period_ms,
            batch,
            a_util,
            s_util,
            100.0 * abs(s_util - a_util) / a_util if a_util else float("nan"),
            analytic.monitoring_latency() / 1e3,
            sim.monitoring_latency_forwarding_ms,
        )
    return table
