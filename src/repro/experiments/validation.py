"""Measurement-based validation (Section 5): Figures 30–31, Tables 7–8.

The paper tests the *real*, BF-enhanced Paradyn IS on an SP-2 by AIX-
tracing one worker node and the main-process node while NAS benchmarks
run.  Our substitute (DESIGN.md §2) is the ROCC simulator in "testbed"
configuration — full per-sample system-call costs, the pvmbt/pvmis
generative workloads — whose per-node CPU accounting plays the role of
the AIX trace.  What Section 5 establishes, and what we verify:

* BF cuts the daemon's direct CPU overhead by **more than 60 %** and
  the main process's by **about 80 %** (Figure 30);
* the forwarding policy, not the sampling period and not the choice of
  application program, explains most of the overhead variation
  (Tables 7 and 8, Figure 31).
"""

from __future__ import annotations

from functools import lru_cache
from statistics import mean
from typing import Dict, List, Tuple

from ..expdesign.effects import allocate_variation
from ..expdesign.factorial import Factor, FactorialDesign
from ..expdesign.pca import pca
from ..rocc.config import SimulationConfig
from ..variates.distributions import Exponential, Lognormal
from ..workload.parameters import WorkloadParameters
from .registry import register
from .reporting import ArtifactGroup, Table
from .runners import replicate, run_design
from .specs import DesignSpec

__all__ = [
    "design_spec", "figure30", "figure31", "workload_for_benchmark",
]

_BF_BATCH = 32
_NODES = 4  # worker nodes in the testbed (Figure 29 shows several)


def workload_for_benchmark(name: str) -> WorkloadParameters:
    """ROCC workload parameters for a NAS benchmark (pvmbt or pvmis)."""
    if name == "pvmbt":
        return WorkloadParameters()
    if name == "pvmis":
        # Integer sort: shorter bucketed CPU phases with frequent small
        # exchanges, still CPU-bound (see repro.workload.nas).
        return WorkloadParameters(
            app_cpu=Lognormal(850, 1100),
            app_network=Exponential(85),
        )
    raise KeyError(f"unknown benchmark {name!r}")


def _testbed_config(
    benchmark: str,
    sampling_period: float,
    batch_size: int,
    duration: float,
    seed: int,
) -> SimulationConfig:
    return SimulationConfig(
        nodes=_NODES,
        sampling_period=sampling_period,
        batch_size=batch_size,
        duration=duration,
        workload=workload_for_benchmark(benchmark),
        seed=seed,
    )


def design_spec(quick: bool = True) -> DesignSpec:
    """The testbed 2^2·r (policy × period) design (planner seam)."""
    duration = 3_000_000.0 if quick else 100_000_000.0

    def make(run):
        return _testbed_config(
            "pvmbt", run["sampling_period"], int(run["batch_size"]),
            duration, seed=70,
        )

    return DesignSpec(
        name="validation",
        design=FactorialDesign(
            [
                # A = policy (BF low, CF high).
                Factor("batch_size", _BF_BATCH, 1, "A"),
                Factor("sampling_period", 10_000.0, 30_000.0, "B"),
            ]
        ),
        make=make,
        repetitions=3 if quick else 5,
        metrics=("pd_cpu_time_per_node", "main_cpu_time"),
    )


@lru_cache(maxsize=4)
def _policy_period_runs(quick: bool) -> Tuple[FactorialDesign, tuple, tuple]:
    """2^2·r design over (policy, sampling period) for pvmbt."""
    spec = design_spec(quick)
    design, make, reps = spec.design, spec.make, spec.repetitions

    cells = run_design(design, make, repetitions=reps)
    pd_rows = [
        [r.node0_pd_cpu_time / 1e6 for r in cell.results] for cell in cells
    ]
    main_rows = [[r.main_cpu_time / 1e6 for r in cell.results] for cell in cells]
    return design, tuple(map(tuple, pd_rows)), tuple(map(tuple, main_rows))


@register(
    "figure30",
    "Figure 30 + Table 7 — measured CF vs BF overhead, two sampling periods",
    "Figure 30 / Table 7",
)
def figure30(quick: bool = True) -> ArtifactGroup:
    """Pd and main CPU time under CF/BF at T = 10 and 30 ms, plus the
    allocation of variation (Table 7)."""
    design, pd_rows, main_rows = _policy_period_runs(quick)
    runs = list(design.runs())

    group = ArtifactGroup(
        title="Figure 30: testbed CPU overhead, CF vs BF (pvmbt)"
    )

    bars = Table(
        title="(a/b) CPU time (s) by policy and sampling period",
        headers=["policy", "period_ms", "pd_cpu_s", "main_cpu_s"],
        notes=[
            "paper (100 s runs): Pd 18.9→6.3 (SP=10ms) and 5.1→2.3 "
            "(SP=30ms); main 214→29 and 69→38",
        ],
    )
    reductions: Dict[float, Dict[str, float]] = {}
    for run, pd, mn in zip(runs, pd_rows, main_rows):
        policy = "CF" if run["batch_size"] == 1 else "BF"
        period = run["sampling_period"] / 1e3
        bars.add_row(policy, period, mean(pd), mean(mn))
        reductions.setdefault(period, {})[policy + "_pd"] = mean(pd)
        reductions[period][policy + "_main"] = mean(mn)
    group.add(bars)

    summary = Table(
        title="overhead reduction under BF",
        headers=["period_ms", "pd_reduction_pct", "main_reduction_pct"],
        notes=["paper: >60 % (Pd) and ~80 % (main)"],
    )
    for period, vals in sorted(reductions.items()):
        summary.add_row(
            period,
            100.0 * (1.0 - vals["BF_pd"] / vals["CF_pd"]),
            100.0 * (1.0 - vals["BF_main"] / vals["CF_main"]),
        )
    group.add(summary)

    for name, rows in (("Pd CPU time", pd_rows), ("main CPU time", main_rows)):
        alloc = allocate_variation(design, rows)
        t = Table(
            title=f"Table 7: variation explained for {name} "
            "(A=policy, B=sampling period)",
            headers=["effect", "percent"],
            notes=[alloc.format(), "paper: A 47.6/52.9, B 35.9/26.5, AB 16.5/20.7"],
        )
        for share in alloc.shares:
            t.add_row(share.label, 100.0 * share.fraction)
        t.add_row("error", 100.0 * alloc.error_fraction)
        group.add(t)
    return group


@lru_cache(maxsize=4)
def _policy_app_runs(quick: bool) -> Tuple[FactorialDesign, tuple, tuple]:
    """2^2·r design over (policy, application program), T = 10 ms."""
    design = FactorialDesign(
        [
            Factor("batch_size", _BF_BATCH, 1, "A"),  # A = policy
            Factor("benchmark", "pvmbt", "pvmis", "B"),
        ]
    )
    duration = 3_000_000.0 if quick else 100_000_000.0
    reps = 3 if quick else 5
    pd_rows: List[List[float]] = []
    main_rows: List[List[float]] = []
    for run in design.runs():
        cfg = _testbed_config(
            run["benchmark"], 10_000.0, int(run["batch_size"]), duration, seed=71
        )
        res = replicate(cfg, repetitions=reps)
        # Normalized CPU occupancy: each process's CPU time over the total
        # CPU demand at its node (§5.2's normalization).
        pd_norm, main_norm = [], []
        for r in res.results:
            node_total = (
                r.pd_cpu_time_per_node
                + r.app_cpu_time_per_node
                + r.pvmd_cpu_time_per_node
                + r.other_cpu_time_per_node
            )
            pd_norm.append(100.0 * r.pd_cpu_time_per_node / node_total)
            main_norm.append(100.0 * r.main_cpu_time / r.duration)
        pd_rows.append(pd_norm)
        main_rows.append(main_norm)
    return design, tuple(map(tuple, pd_rows)), tuple(map(tuple, main_rows))


@register(
    "figure31",
    "Figure 31 + Table 8 — application-independence of the BF gain",
    "Figure 31 / Table 8",
)
def figure31(quick: bool = True) -> ArtifactGroup:
    """Normalized CPU occupancy for pvmbt vs pvmis under CF/BF; the
    reduction is insensitive to the application program."""
    design, pd_rows, main_rows = _policy_app_runs(quick)
    runs = list(design.runs())

    group = ArtifactGroup(
        title="Figure 31: normalized CPU occupancy by policy and application "
        "(T=10ms)"
    )
    bars = Table(
        title="normalized CPU occupancy (%)",
        headers=["policy", "benchmark", "pd_pct_of_node", "main_pct_of_host"],
        notes=[
            "paper: Pd 7.9/2.8 (pvmbt CF/BF) and 7.6/1.9 (pvmis); the "
            "BF reduction holds for both applications",
        ],
    )
    for run, pd, mn in zip(runs, pd_rows, main_rows):
        policy = "CF" if run["batch_size"] == 1 else "BF"
        bars.add_row(policy, run["benchmark"], mean(pd), mean(mn))
    group.add(bars)

    for name, rows in (
        ("Pd normalized CPU time", pd_rows),
        ("main normalized CPU time", main_rows),
    ):
        alloc = allocate_variation(design, rows)
        t = Table(
            title=f"Table 8: variation explained for {name} "
            "(A=policy, B=application program)",
            headers=["effect", "percent"],
            notes=[alloc.format(), "paper: policy 98.5/86.8 %, application ~0.3/6.8 %"],
        )
        for share in alloc.shares:
            t.add_row(share.label, 100.0 * share.fraction)
        t.add_row("error", 100.0 * alloc.error_fraction)
        group.add(t)

    # Independent check with PCA proper: the first component of the
    # (runs × [pd, main]) matrix should separate the policy levels.
    matrix = [[mean(pd), mean(mn)] for pd, mn in zip(pd_rows, main_rows)]
    result = pca(matrix, standardize=True)
    t = Table(
        title="PCA cross-check (observations = design cells)",
        headers=["component", "explained_variance_ratio"],
    )
    for i, ratio in enumerate(result.explained_variance_ratio):
        t.add_row(f"PC{i + 1}", float(ratio))
    group.add(t)
    return group
