"""Factorial sweep of open-workload traffic class × node count.

Beyond the paper: the IS is exercised under externally-driven (open)
arrivals — stationary Poisson, bursty/diurnal modulation, flash
crowds, and the AsyncFlow-style users×rate model — on top of the
closed per-node loops, sweeping the node count per workload class
through the experiment engine.  The table shows how offered load,
service latency, and IS overhead co-vary across workload classes,
the evaluation axis the ROADMAP's simulation-as-a-service layer
builds on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rocc.config import NetworkMode, SimulationConfig
from ..workload.generators import TrafficSpec
from .registry import register
from .reporting import Table
from .runners import sweep

__all__ = ["open_workload"]

#: The workload classes swept by default: one spec per registered
#: generator family (replay uses a programmatic trace so the experiment
#: stays self-contained).  Rates are sized for the quick-mode duration.
_CLASSES: Tuple[TrafficSpec, ...] = (
    TrafficSpec.parse("stationary:rate=200,alpha=0.8"),
    TrafficSpec.parse("bursty:rate=200,period_s=0.5,depth=0.8"),
    TrafficSpec.parse(
        "flashcrowd:rate=100,multiplier=8,first_at_s=0.3,duration_s=0.2"
    ),
    TrafficSpec.parse("open:avg_users=100,rpm=120,window_s=0.25"),
    TrafficSpec.of(
        "replay",
        times=tuple(float(t) for t in range(5_000, 400_000, 5_000)),
        loop=True,
    ),
)


@register(
    "open_workload",
    "Open-workload class × node count factorial (beyond the paper)",
    "ROADMAP (open workloads)",
)
def open_workload(
    quick: bool = True, workload: Optional[TrafficSpec] = None
) -> Table:
    """IS metrics under each traffic class, swept over node count.

    *workload* restricts the sweep to one spec (the CLI's
    ``--workload`` lands here); default is the built-in catalogue of
    all five generator families.
    """
    duration = 1_500_000.0 if quick else 10_000_000.0
    reps = 2 if quick else 5
    nodes_levels: List[int] = [2, 8] if quick else [2, 8, 32]
    classes = (workload,) if workload is not None else _CLASSES

    base = SimulationConfig(
        nodes=2,
        duration=duration,
        seed=90,
        network_mode=NetworkMode.CONTENTION_FREE,
    )
    table = Table(
        title="Open-workload class x node count",
        headers=[
            "workload", "nodes", "arrivals", "offered_req_s",
            "served", "open_latency_ms", "active_users",
            "pd_cpu_util_pct", "fwd_latency_ms",
        ],
        notes=[
            "open requests cost one app CPU burst + one transfer each and "
            "contend with the closed loops and the IS on the same CPUs; "
            "offered rate is post-warmup arrivals over measured duration",
        ],
    )
    for spec in classes:
        runs = sweep(
            base,
            "nodes",
            nodes_levels,
            repetitions=reps,
            traffic=spec,
        )
        for n, cell in zip(nodes_levels, runs):
            table.add_row(
                spec.name,
                n,
                cell.open_arrivals,
                cell.open_offered_rate,
                cell.open_completed,
                cell.open_latency_mean / 1e3,
                cell.open_active_users,
                100.0 * cell.pd_cpu_utilization_per_node,
                cell.monitoring_latency_forwarding / 1e3,
            )
    return table
