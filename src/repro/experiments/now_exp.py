"""Simulation experiments for the NOW system: Table 4, Figures 16–19.

§4.2: nodes on a shared Ethernet, one application process and one
daemon per node, direct forwarding.  Factors: number of nodes (A),
sampling period (B), forwarding policy / batch size (C), application
type i.e. network occupancy requirement (D).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from ..expdesign.effects import VariationResult, allocate_variation
from ..expdesign.factorial import Factor, FactorialDesign
from ..rocc.config import NetworkMode, SimulationConfig
from .registry import register
from .reporting import ArtifactGroup, SeriesSet, Table
from .runners import MeanResults, metric_series, run_design, sweep
from .specs import DesignSpec

__all__ = [
    "design_spec", "table4", "figure16", "figure17", "figure18", "figure19",
]

_BF_BATCH = 32


def _now_design(quick: bool = False) -> FactorialDesign:
    # Quick mode lowers the BF batch level to 32 so that batches fill
    # (and latency is observable) within the shortened duration; full
    # mode uses the paper's 128.
    return FactorialDesign(
        [
            Factor("nodes", 5, 50, "A"),
            Factor("sampling_period", 2_000.0, 32_000.0, "B"),
            Factor("batch_size", 1, 32 if quick else 128, "C"),
            Factor("app_network_us", 200.0, 2_000.0, "D"),
        ]
    )


def design_spec(quick: bool = True) -> DesignSpec:
    """The NOW 2^4·r design as a :class:`DesignSpec` (planner seam)."""
    duration = 2_000_000.0 if quick else 10_000_000.0

    def make(run) -> SimulationConfig:
        cfg = SimulationConfig(
            nodes=int(run["nodes"]),
            sampling_period=run["sampling_period"],
            batch_size=int(run["batch_size"]),
            duration=duration,
            seed=40,
        )
        return cfg.with_(
            workload=cfg.workload.with_network_demand(run["app_network_us"])
        )

    return DesignSpec(
        name="now",
        design=_now_design(quick),
        make=make,
        repetitions=2 if quick else 5,
    )


@lru_cache(maxsize=4)
def _now_factorial(quick: bool) -> Tuple[FactorialDesign, tuple, tuple]:
    """Run the 2^4·r NOW design; returns (design, cpu_rows, latency_rows)."""
    spec = design_spec(quick)
    design, make, reps = spec.design, spec.make, spec.repetitions

    cells = run_design(design, make, repetitions=reps)
    cpu_rows = [
        [r.pd_cpu_time_per_node / 1e6 for r in cell.results] for cell in cells
    ]
    lat_rows = [
        [r.monitoring_latency_forwarding / 1e3 for r in cell.results]
        for cell in cells
    ]
    return design, tuple(map(tuple, cpu_rows)), tuple(map(tuple, lat_rows))


@register(
    "table4",
    "Table 4 — NOW 2^4 factorial simulation results",
    "Table 4",
)
def table4(quick: bool = True) -> Table:
    """Pd CPU time per node and monitoring latency for all 16 cells."""
    design, cpu_rows, lat_rows = _now_factorial(quick)
    table = Table(
        title="Table 4: NOW factorial results",
        headers=[
            "period_ms", "nodes", "batch", "app_net_us",
            "pd_cpu_s_per_node", "latency_ms",
        ],
        notes=[
            "CF = batch 1; the BF level is 32 in quick mode, 128 at paper "
            "scale; latency is the forwarding-unit residence time (see "
            "EXPERIMENTS.md on the two definitions)",
        ],
    )
    from statistics import mean

    for run, cpu, lat in zip(design.runs(), cpu_rows, lat_rows):
        table.add_row(
            run["sampling_period"] / 1e3,
            run["nodes"],
            run["batch_size"],
            run["app_network_us"],
            mean(cpu),
            mean(lat),
        )
    return table


@register(
    "figure16",
    "Figure 16 — NOW allocation of variation (the paper's PCA)",
    "Figure 16",
)
def figure16(quick: bool = True) -> ArtifactGroup:
    """Shares of variation for Pd CPU time and monitoring latency.

    Paper: sampling period (B) dominates Pd CPU time (68 %), followed by
    forwarding policy (C); node count (A) and policy (C) dominate latency.
    """
    design, cpu_rows, lat_rows = _now_factorial(quick)
    group = ArtifactGroup(
        title="Figure 16: NOW variation explained "
        "(A=nodes, B=sampling period, C=policy, D=application type)"
    )
    for name, rows in (("Pd CPU time", cpu_rows), ("monitoring latency", lat_rows)):
        alloc: VariationResult = allocate_variation(design, rows)
        t = Table(
            title=f"variation explained for {name}",
            headers=["effect", "percent"],
            notes=[alloc.format()],
        )
        for share in alloc.top(8):
            t.add_row(share.label, 100.0 * share.fraction)
        t.add_row("error", 100.0 * alloc.error_fraction)
        group.add(t)
    return group


@register(
    "figure17",
    "Figure 17 — NOW local detail: Pd CPU time and forwarding throughput",
    "Figure 17",
)
def figure17(quick: bool = True) -> ArtifactGroup:
    """CF vs BF(32) at one node: vs sampling period (8 app processes) and
    vs application-process count (T = 40 ms)."""
    duration = 2_000_000.0 if quick else 20_000_000.0
    reps = 2 if quick else 5
    group = ArtifactGroup(
        title="Figure 17: NOW local metrics, CF vs BF (batch 32)",
        notes=[
            "panel (a) follows Table 4's operating point: P = 8 application "
            "processes system-wide (8 nodes x 1 process); the contention-"
            "free network matches the captions of the companion figures",
        ],
    )

    periods_ms = [5, 10, 20, 40, 50] if quick else [5, 10, 15, 20, 30, 40, 50]
    base = SimulationConfig(
        nodes=8, app_processes_per_node=1, duration=duration, seed=17,
        network_mode=NetworkMode.CONTENTION_FREE,
    )
    panel_cpu = SeriesSet(
        title="(a) Pd CPU time (s) vs sampling period, 8 app processes",
        x_label="period_ms", y_label="pd_cpu_s", x=[float(p) for p in periods_ms],
    )
    panel_thr = SeriesSet(
        title="(a) forwarding throughput (samples/s) vs sampling period",
        x_label="period_ms", y_label="samples_per_s", x=[float(p) for p in periods_ms],
    )
    for policy, batch in (("CF", 1), ("BF", _BF_BATCH)):
        runs = sweep(
            base.with_(batch_size=batch),
            "sampling_period",
            [p * 1000.0 for p in periods_ms],
            repetitions=reps,
        )
        panel_cpu.add_series(
            policy, [r.node0_pd_cpu_time / 1e6 for r in runs]
        )
        panel_thr.add_series(policy, metric_series(runs, "throughput_per_daemon"))
    group.add(panel_cpu)
    group.add(panel_thr)

    apps = [1, 4, 8, 16, 32] if quick else [1, 2, 4, 8, 16, 24, 32]
    base_b = SimulationConfig(
        nodes=2, duration=duration, seed=18,
        network_mode=NetworkMode.CONTENTION_FREE,
    )
    panel_cpu_b = SeriesSet(
        title="(b) Pd CPU time (s) vs number of application processes, T=40ms",
        x_label="app_processes", y_label="pd_cpu_s", x=[float(a) for a in apps],
    )
    panel_thr_b = SeriesSet(
        title="(b) forwarding throughput (samples/s) vs application processes",
        x_label="app_processes", y_label="samples_per_s", x=[float(a) for a in apps],
    )
    for policy, batch in (("CF", 1), ("BF", _BF_BATCH)):
        runs = sweep(
            base_b.with_(batch_size=batch),
            "app_processes_per_node",
            apps,
            repetitions=reps,
        )
        panel_cpu_b.add_series(policy, [r.node0_pd_cpu_time / 1e6 for r in runs])
        panel_thr_b.add_series(policy, metric_series(runs, "throughput_per_daemon"))
    group.add(panel_cpu_b)
    group.add(panel_thr_b)
    return group


def _now_global_panels(
    x, runs_by_policy, x_label: str, uninstrumented=None
) -> List[SeriesSet]:
    specs = [
        ("Pd CPU utilization/node (%)", "pd_cpu_utilization_per_node", 100.0),
        ("Paradyn CPU utilization (%)", "main_cpu_utilization", 100.0),
        ("Appl. CPU utilization/node (%)", "app_cpu_utilization_per_node", 100.0),
        ("Monitoring latency/samp. (ms)", "monitoring_latency_forwarding", 1e-3),
    ]
    panels = []
    for name, metric, scale in specs:
        panel = SeriesSet(
            title=name, x_label=x_label, y_label=name, x=[float(v) for v in x]
        )
        for policy, runs in runs_by_policy.items():
            panel.add_series(
                policy, [scale * getattr(r, metric) for r in runs]
            )
        if uninstrumented is not None and "Appl." in name:
            panel.add_series(
                "uninstrumented",
                [scale * getattr(r, metric) for r in uninstrumented],
            )
        panels.append(panel)
    return panels


@register(
    "figure18",
    "Figure 18 — NOW global detail: metrics vs node count and period",
    "Figure 18",
)
def figure18(quick: bool = True) -> ArtifactGroup:
    """CF vs BF on a contention-free network (the figure's caption), with
    the uninstrumented application baseline."""
    duration = 2_000_000.0 if quick else 20_000_000.0
    reps = 2 if quick else 5
    group = ArtifactGroup(title="Figure 18: NOW global metrics, CF vs BF")
    base = SimulationConfig(
        nodes=8, duration=duration, seed=20,
        network_mode=NetworkMode.CONTENTION_FREE,
    )

    nodes = [2, 4, 8, 16, 32] if quick else [2, 4, 8, 16, 24, 32]
    runs_a = {
        policy: sweep(base.with_(batch_size=b), "nodes", nodes, repetitions=reps)
        for policy, b in (("CF", 1), ("BF", _BF_BATCH))
    }
    uninst_a = sweep(
        base.with_(instrumented=False), "nodes", nodes, repetitions=reps
    )
    for panel in _now_global_panels(nodes, runs_a, "nodes", uninst_a):
        panel.title = f"(a) T=40ms — {panel.title}"
        group.add(panel)

    periods_ms = [1, 4, 16, 64] if quick else [1, 2, 4, 8, 16, 32, 64]
    runs_b = {
        policy: sweep(
            base.with_(batch_size=b),
            "sampling_period",
            [p * 1000.0 for p in periods_ms],
            repetitions=reps,
        )
        for policy, b in (("CF", 1), ("BF", _BF_BATCH))
    }
    uninst_b = sweep(
        base.with_(instrumented=False),
        "sampling_period",
        [p * 1000.0 for p in periods_ms],
        repetitions=reps,
    )
    for panel in _now_global_panels(periods_ms, runs_b, "period_ms", uninst_b):
        panel.title = f"(b) n=8 — {panel.title}"
        group.add(panel)
    return group


@register(
    "figure19",
    "Figure 19 — NOW batch-size sweep ('what should the batch size be?')",
    "Figure 19",
)
def figure19(quick: bool = True) -> ArtifactGroup:
    """Metrics vs batch size at n = 8 for three sampling periods; shows
    the knee right after the CF→BF transition (§4.2.4)."""
    # Duration must comfortably exceed the largest batch fill time
    # (128 × 40 ms ≈ 5.1 s) or the large-batch cells never forward.
    duration = 6_000_000.0 if quick else 12_000_000.0
    reps = 2 if quick else 5
    batches = [1, 2, 4, 8, 16, 32, 64, 128]
    base = SimulationConfig(
        nodes=8, duration=duration, seed=19,
        network_mode=NetworkMode.CONTENTION_FREE,
    )
    group = ArtifactGroup(title="Figure 19: NOW metrics vs batch size (n=8)")
    specs = [
        ("Pd CPU utilization/node (%)", "pd_cpu_utilization_per_node", 100.0),
        ("Paradyn CPU utilization/node (%)", "main_cpu_utilization", 100.0),
        ("Appl. CPU utilization/node (%)", "app_cpu_utilization_per_node", 100.0),
        ("Monitoring latency/samp. (ms)", "monitoring_latency_forwarding", 1e-3),
    ]
    period_list = [(1, 1_000.0), (40, 40_000.0)] if quick else [
        (1, 1_000.0), (40, 40_000.0), (64, 64_000.0)
    ]
    run_cache = {
        label: sweep(
            base.with_(sampling_period=period),
            "batch_size",
            batches,
            repetitions=reps,
        )
        for label, period in period_list
    }
    for name, metric, scale in specs:
        panel = SeriesSet(
            title=name, x_label="batch_size", y_label=name,
            x=[float(b) for b in batches],
        )
        for label, runs in run_cache.items():
            panel.add_series(
                f"T={label}ms", [scale * getattr(r, metric) for r in runs]
            )
        group.add(panel)
    return group
