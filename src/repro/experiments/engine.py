"""Parallel experiment engine with a content-addressed cell cache.

Every number the paper reports is the outcome of an independent
*simulation cell* — one ``(SimulationConfig, replication)`` pair — and
cells draw from dedicated named substreams, so they are embarrassingly
parallel and fully deterministic.  :class:`ExperimentEngine` exploits
both properties:

* **Scheduling** — cells submitted through :meth:`ExperimentEngine.run_cells`
  fan out across a process pool (``workers > 1``) or run inline
  (``workers=1``, the serial fallback, which preserves the historical
  fail-fast behavior exactly).  Failures ship back as picklable
  :class:`CellError` artifacts, so ``isolate=True`` semantics survive
  the process boundary — including workers killed mid-cell.
* **Memoization** — a :class:`CellCache` keys finished
  :class:`~repro.rocc.metrics.SimulationResults` by a stable content
  fingerprint of the config (every dataclass field, nested cost models,
  distributions, fault plan, replication index) salted with a hash of
  the simulation source code, so re-running a sweep or benchmark
  recomputes only cells whose inputs or code actually changed.

Environment knobs:

* ``REPRO_WORKERS`` — worker count of the ambient engine (default 1).
* ``REPRO_CELL_CACHE`` — set to ``0``/``off`` to disable the cache.
* ``REPRO_CACHE_DIR`` — cache directory (default
  ``$XDG_CACHE_HOME/repro/cells`` or ``~/.cache/repro/cells``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, fields, is_dataclass, replace
from enum import Enum
from math import isnan, nan
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..des.profiling import merge_profiles, take_last_profile
from ..obs.metrics import diff_snapshots, registry as obs_registry
from ..obs.spans import (
    SpanBatch,
    Tracer,
    current_tracer,
    maybe_span,
    tracing_enabled,
    use_tracing,
)
from ..rocc.aggregate import simulate_aggregated
from ..rocc.config import SimulationConfig
from ..rocc.metrics import SimulationResults
from ..rocc.system import simulate

__all__ = [
    "CellError",
    "EngineCellError",
    "EngineStats",
    "CellCache",
    "ExperimentEngine",
    "config_fingerprint",
    "code_version",
    "results_equal",
    "current_engine",
    "use_engine",
]


# ---------------------------------------------------------------------------
# Failure artifacts
# ---------------------------------------------------------------------------


@dataclass
class CellError:
    """A failed cell, preserved as an artifact of the sweep.

    With ``isolate=True`` a crashing cell no longer aborts the whole
    experiment: the error (message + formatted traceback) rides along in
    :attr:`MeanResults.errors` and the sweep completes with whatever
    replications succeeded.  The artifact is plain strings, so it
    crosses process boundaries even when the original exception cannot
    be pickled.
    """

    config_summary: str
    error: str
    traceback: str

    @classmethod
    def from_exception(cls, config: SimulationConfig, exc: BaseException) -> "CellError":
        summary = (
            f"{config.architecture.value} n={config.nodes} "
            f"b={config.batch_size} rep={config.replication}"
        )
        return cls(
            config_summary=summary,
            error=f"{type(exc).__name__}: {exc}",
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )


class EngineCellError(RuntimeError):
    """Raised (non-isolated runs) when a worker's exception cannot be
    re-raised verbatim in the parent — e.g. an unpicklable exception
    type or a worker process that died mid-cell."""

    def __init__(self, cell_error: CellError):
        self.cell_error = cell_error
        super().__init__(
            f"cell {cell_error.config_summary} failed: {cell_error.error}\n"
            f"{cell_error.traceback}"
        )


# ---------------------------------------------------------------------------
# Content-addressed fingerprinting
# ---------------------------------------------------------------------------

#: Sub-packages whose source defines simulation semantics; their content
#: hash salts every fingerprint so stale results die with code changes.
_SIM_PACKAGES = ("des", "rocc", "faults", "workload", "variates")

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of the simulation source tree (the cache's code salt)."""
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for pkg in _SIM_PACKAGES:
            for path in sorted((root / pkg).rglob("*.py")):
                h.update(str(path.relative_to(root)).encode())
                h.update(path.read_bytes())
        h.update(os.environ.get("REPRO_CACHE_SALT", "").encode())
        _code_version = h.hexdigest()[:16]
    return _code_version


def _canonical(obj) -> object:
    """Recursively reduce *obj* to a deterministic, order-stable form.

    Covers everything a :class:`SimulationConfig` can hold: nested
    dataclasses (cost models, workload, fault plans), enums,
    distributions (plain objects — captured by class name + instance
    dict), numpy arrays, and containers.  ``repr`` of floats keeps full
    precision, so configs differing in the 17th digit fingerprint apart.
    """
    if obj is None or isinstance(obj, (str, int, bool)):
        return obj
    if isinstance(obj, float):
        return ("f", repr(obj))
    if isinstance(obj, Enum):
        return ("enum", type(obj).__name__, _canonical(obj.value))
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            "dc",
            type(obj).__name__,
            tuple((f.name, _canonical(getattr(obj, f.name))) for f in fields(obj)),
        )
    if isinstance(obj, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in obj.items()]
        return ("dict", tuple(sorted(items, key=repr)))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((_canonical(v) for v in obj), key=repr)))
    if isinstance(obj, np.ndarray):
        return ("nd", obj.shape, tuple(repr(float(v)) for v in obj.ravel()))
    if isinstance(obj, np.generic):
        return ("f", repr(obj.item()))
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return (
            "obj",
            type(obj).__name__,
            tuple((k, _canonical(v)) for k, v in sorted(d.items())),
        )
    return ("repr", repr(obj))


def config_fingerprint(config: SimulationConfig, aggregated: bool = False) -> str:
    """Stable content address of one simulation cell.

    Two configs fingerprint identically iff every field — including the
    replication index and nested models — matches and the simulation
    source is unchanged.
    """
    payload = ("cell-v1", code_version(), bool(aggregated), _canonical(config))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def results_equal(a: SimulationResults, b: SimulationResults) -> bool:
    """Field-by-field equality, treating NaN as equal to NaN."""

    def same(x, y) -> bool:
        if isinstance(x, float) and isinstance(y, float):
            return x == y or (isnan(x) and isnan(y))
        return x == y

    return all(same(getattr(a, f.name), getattr(b, f.name)) for f in fields(a))


# ---------------------------------------------------------------------------
# On-disk cell cache
# ---------------------------------------------------------------------------


def _default_cache_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "cells"


def _cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CELL_CACHE", "1").strip().lower() not in (
        "0", "off", "false", "no", "",
    )


class CellCache:
    """Content-addressed store of pickled :class:`SimulationResults`.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` with a sha256
    checksum stored beside each one (``<key>.pkl.sha256``).  Writes are
    atomic (temp file + fsync + ``os.replace``) so a worker killed
    mid-``put`` can never leave a torn pickle in place, and reads verify
    the checksum *before* unpickling: a corrupted or truncated entry is
    quarantined (moved aside under ``<root>/quarantine/``) and treated
    as a miss, so the cell simply recomputes.
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 enabled: Optional[bool] = None):
        self.root = Path(root).expanduser() if root else _default_cache_root()
        self.enabled = _cache_enabled_by_env() if enabled is None else enabled
        #: Entries quarantined by this instance (checksum mismatches,
        #: unpicklable blobs); surfaced as ``EngineStats.cache_corrupt``.
        self.corrupt_entries = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def checksum_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl.sha256"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def get(self, key: str) -> Optional[SimulationResults]:
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            expected = self.checksum_path_for(key).read_text().strip()
        except OSError:
            expected = None  # pre-checksum entry: fall back to unpickling
        if expected is not None and hashlib.sha256(blob).hexdigest() != expected:
            self._quarantine(key)
            return None
        try:
            result = pickle.loads(blob)
        except Exception:
            self._quarantine(key)
            return None
        if not isinstance(result, SimulationResults):
            self._quarantine(key)
            return None
        return result

    def put(self, key: str, results: SimulationResults) -> None:
        if not self.enabled:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        try:
            # Blob first, checksum second: a crash between the two
            # renames leaves a mismatched pair, which get() quarantines
            # and recomputes — never a torn pickle served as a hit.
            self._atomic_write(path, blob)
            self._atomic_write(self.checksum_path_for(key), digest.encode())
        except OSError:
            pass  # cache is best-effort

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as f:
                f.write(data)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry (and its checksum) aside for post-mortem
        instead of serving — or silently deleting — garbage."""
        self.corrupt_entries += 1
        obs_registry().counter(
            "engine.cache_corrupt",
            "cell-cache entries quarantined as corrupt",
        ).inc()
        qdir = self.quarantine_dir
        for p in (self.path_for(key), self.checksum_path_for(key)):
            if not p.exists():
                continue
            try:
                qdir.mkdir(parents=True, exist_ok=True)
                os.replace(p, qdir / p.name)
            except OSError:
                p.unlink(missing_ok=True)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.pkl"):
                path.unlink(missing_ok=True)
                path.with_name(path.name + ".sha256").unlink(missing_ok=True)
                n += 1
        return n


# ---------------------------------------------------------------------------
# Engine statistics
# ---------------------------------------------------------------------------


@dataclass
class EngineStats:
    """Shared counters of one engine's activity (see ``reporting``)."""

    workers: int = 1
    cells_submitted: int = 0
    #: Cells actually executed (cache misses, including failed cells).
    cells_run: int = 0
    cache_hits: int = 0
    cell_errors: int = 0
    #: Extra attempts executed by a resilient engine (beyond each cell's
    #: first), including re-runs after pool breakage.
    retries: int = 0
    #: Cells that exceeded their wall-clock deadline (in-worker watchdog
    #: or the parent-side wait guard).
    cell_timeouts: int = 0
    #: Worker-pool restarts after breakage (killed/hung workers).
    pool_resets: int = 0
    #: Cache entries quarantined as corrupt during lookups.
    cache_corrupt: int = 0
    #: Cells served from a resumed run journal instead of executing.
    cells_resumed: int = 0
    #: Design cells the experiment planner served as analytic surrogates
    #: instead of simulating (see :mod:`repro.planner`).
    cells_pruned: int = 0
    #: Cell-replications the planner avoided vs the fixed-r baseline.
    replications_saved: int = 0
    #: Wall-clock seconds spent inside ``run_cells`` batches.
    wall_time: float = 0.0
    #: Sum of per-cell wall seconds as measured inside the workers.
    cell_wall_time: float = 0.0
    #: Sum of per-cell CPU seconds as measured inside the workers.
    cell_cpu_time: float = 0.0
    #: Kernel events processed by profiled cells (0 unless REPRO_PROFILE).
    sim_events: int = 0
    #: Merged kernel profile of every profiled cell (None unless
    #: REPRO_PROFILE; see :mod:`repro.des.profiling`).
    profile: Optional[dict] = None

    @property
    def cache_misses(self) -> int:
        return self.cells_run

    @property
    def worker_utilization(self) -> float:
        """Busy fraction of the worker pool: cell wall time over
        (batch wall time × workers).  NaN until something has run."""
        if self.wall_time <= 0 or self.workers < 1:
            return nan
        return self.cell_wall_time / (self.wall_time * self.workers)

    def copy(self) -> "EngineStats":
        return replace(self)

    def since(self, earlier: "EngineStats") -> "EngineStats":
        """Delta of the counters relative to an earlier snapshot.

        The merged ``profile`` is cumulative (profiles only ever merge),
        so the delta carries the current one unchanged.
        """
        return EngineStats(
            workers=self.workers,
            cells_submitted=self.cells_submitted - earlier.cells_submitted,
            cells_run=self.cells_run - earlier.cells_run,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cell_errors=self.cell_errors - earlier.cell_errors,
            retries=self.retries - earlier.retries,
            cell_timeouts=self.cell_timeouts - earlier.cell_timeouts,
            pool_resets=self.pool_resets - earlier.pool_resets,
            cache_corrupt=self.cache_corrupt - earlier.cache_corrupt,
            cells_resumed=self.cells_resumed - earlier.cells_resumed,
            cells_pruned=self.cells_pruned - earlier.cells_pruned,
            replications_saved=(
                self.replications_saved - earlier.replications_saved
            ),
            wall_time=self.wall_time - earlier.wall_time,
            cell_wall_time=self.cell_wall_time - earlier.cell_wall_time,
            cell_cpu_time=self.cell_cpu_time - earlier.cell_cpu_time,
            sim_events=self.sim_events - earlier.sim_events,
            profile=self.profile,
        )

    def summary(self) -> str:
        util = self.worker_utilization
        util_s = f"{100.0 * util:.0f}%" if util == util else "-"
        events_s = (
            f", {self.sim_events:,} kernel events" if self.sim_events else ""
        )
        resilience_bits = [
            f"{count} {label}"
            for count, label in (
                (self.cells_pruned, "pruned"),
                (self.replications_saved, "replications saved"),
                (self.cells_resumed, "resumed"),
                (self.retries, "retries"),
                (self.cell_timeouts, "timeouts"),
                (self.pool_resets, "pool resets"),
                (self.cache_corrupt, "corrupt cache entries"),
            )
            if count
        ]
        resilience_s = (
            f", {', '.join(resilience_bits)}" if resilience_bits else ""
        )
        return (
            f"{self.cells_submitted} cells ({self.cells_run} run, "
            f"{self.cache_hits} cached, {self.cell_errors} failed) in "
            f"{self.wall_time:.2f}s wall / {self.cell_cpu_time:.2f}s cpu, "
            f"{self.workers} worker(s), {util_s} utilization"
            f"{resilience_s}{events_s}"
        )


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------


@dataclass
class _CellOutcome:
    """What one executed cell produced (picklable in every branch)."""

    ok: bool
    result: Optional[SimulationResults] = None
    error: Optional[CellError] = None
    #: The original exception when it can cross the process boundary
    #: (re-raised verbatim by non-isolated runs).
    exc: Optional[BaseException] = None
    wall: float = 0.0
    cpu: float = 0.0
    #: Kernel profile of the run (plain dict; set only under REPRO_PROFILE).
    profile: Optional[dict] = None
    #: Spans recorded while running this cell (set only when traced).
    trace: Optional[SpanBatch] = None
    #: Metrics-registry delta produced by this cell (obs snapshot diff).
    metrics: Optional[dict] = None
    #: Process that executed the cell — the parent merges the metrics
    #: delta only for foreign pids (inline cells already published).
    pid: int = 0


def _run_cell(payload: Tuple[SimulationConfig, bool, bool, Optional[int]]) -> _CellOutcome:
    """Execute one cell; never raises (failures become artifacts)."""
    config, aggregated, traced, lp_workers = payload
    if aggregated:
        runner: Callable[[SimulationConfig], SimulationResults] = simulate_aggregated
    elif lp_workers is not None and lp_workers >= 2:
        def runner(cfg, _k=lp_workers):
            return simulate(cfg, lp_workers=_k)
    else:
        runner = simulate
    # A traced cell records into its own fresh tracer (explicitly
    # installed — forked workers inherit the parent's tracer object, and
    # inline cells must not write parent spans twice) and ships the
    # batch back, exactly like kernel profiles do.
    tracer = Tracer() if traced else None
    metrics_before = obs_registry().snapshot()
    t0, c0 = time.perf_counter(), time.process_time()
    try:
        if tracer is not None:
            with use_tracing(tracer):
                with tracer.span(
                    "cell", cat="engine.cell",
                    args={
                        "config": (
                            f"{config.architecture.value} n={config.nodes} "
                            f"rep={config.replication}"
                        ),
                        "aggregated": aggregated,
                    },
                ):
                    result = runner(config)
        else:
            result = runner(config)
    except Exception as exc:
        err = CellError.from_exception(config, exc)
        try:  # only ship the exception object if it survives pickling
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = None
        return _CellOutcome(
            ok=False, error=err, exc=exc,
            wall=time.perf_counter() - t0, cpu=time.process_time() - c0,
            trace=tracer.batch() if tracer is not None else None,
            metrics=diff_snapshots(metrics_before, obs_registry().snapshot()),
            pid=os.getpid(),
        )
    return _CellOutcome(
        ok=True, result=result,
        wall=time.perf_counter() - t0, cpu=time.process_time() - c0,
        profile=take_last_profile(),
        trace=tracer.batch() if tracer is not None else None,
        metrics=diff_snapshots(metrics_before, obs_registry().snapshot()),
        pid=os.getpid(),
    )


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ExperimentEngine:
    """Schedules simulation cells over workers, memoized by content.

    ``workers=1`` (the default, or ``REPRO_WORKERS`` unset) executes
    inline with fail-fast semantics identical to the historical serial
    loops; ``workers=N`` fans cells out over a lazily created
    :class:`~concurrent.futures.ProcessPoolExecutor` that is reused
    across batches until :meth:`close`.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[CellCache] = None,
                 stats: Optional[EngineStats] = None,
                 lp_workers: Union[int, str, None] = None):
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1") or 1)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if isinstance(lp_workers, str) and lp_workers != "auto":
            raise ValueError("lp_workers must be an int, 'auto', or None")
        if isinstance(lp_workers, int) and lp_workers < 1:
            raise ValueError("lp_workers must be >= 1")
        self.workers = workers
        #: In-cell LP parallelism: an LP count applied to every eligible
        #: cell, ``"auto"`` to partition big cells when cores allow, or
        #: ``None`` to leave the choice to ``REPRO_DES_PARALLEL``.
        #: Cell workers and in-cell LP workers multiply — size the
        #: product to the machine.
        self.lp_workers = lp_workers
        self.cache = cache if cache is not None else CellCache()
        self.stats = stats if stats is not None else EngineStats(workers=workers)
        self.stats.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        #: The picklable callable executed per cell.  The chaos harness
        #: (:mod:`repro.experiments.chaos`) swaps in a fault-injecting
        #: wrapper; everything else uses :func:`_run_cell`.
        self.cell_runner: Callable[[Tuple], _CellOutcome] = _run_cell

    # -- lifecycle -----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -----------------------------------------------------
    def run_cells(
        self,
        configs: Sequence[SimulationConfig],
        aggregated: bool = False,
        isolate: bool = False,
    ) -> List[Union[SimulationResults, CellError]]:
        """Run every cell, returning outcomes in submission order.

        Cached cells are served from the :class:`CellCache` without
        executing; the rest run inline (``workers=1``) or on the pool.
        Failures become :class:`CellError` entries under ``isolate=True``
        and raise otherwise — the original exception when picklable,
        :class:`EngineCellError` when not (e.g. a worker killed
        mid-cell, which surfaces as ``BrokenProcessPool``).
        """
        configs = list(configs)
        t_start = time.perf_counter()
        hits_before = self.stats.cache_hits
        try:
            with maybe_span(
                "run_cells", cat="engine.batch",
                args={"cells": len(configs), "workers": self.workers},
            ) as span:
                outcomes = self._run_cells(configs, aggregated, isolate)
                if span is not None:
                    span.args["cache_hits"] = (
                        self.stats.cache_hits - hits_before
                    )
                return outcomes
        finally:
            self.stats.wall_time += time.perf_counter() - t_start

    def _run_cells(self, configs, aggregated, isolate):
        self.stats.cells_submitted += len(configs)
        outcomes: List[Union[SimulationResults, CellError, None]]
        outcomes = [None] * len(configs)
        misses: List[Tuple[int, SimulationConfig, Optional[str]]] = []
        for i, config in enumerate(configs):
            key = self._fingerprint(config, aggregated)
            hit = self._lookup(config, key)
            if hit is not None:
                outcomes[i] = hit
            else:
                misses.append((i, config, key))

        tracer = current_tracer()
        own_pid = os.getpid()
        for i, key, out in self._execute(misses, aggregated, isolate):
            self.stats.cells_run += 1
            self.stats.cell_wall_time += out.wall
            self.stats.cell_cpu_time += out.cpu
            if tracer is not None and out.trace is not None:
                tracer.merge(out.trace)
            if out.metrics and out.pid != own_pid:
                # Inline cells already published into this registry;
                # only foreign (worker) deltas need folding in.
                obs_registry().merge_snapshot(out.metrics)
            if out.profile is not None:
                self.stats.profile = merge_profiles(self.stats.profile, out.profile)
                self.stats.sim_events += out.profile["events"]
            if out.ok:
                outcomes[i] = out.result
                if key:
                    self.cache.put(key, out.result)
                continue
            self.stats.cell_errors += 1
            if not isolate:
                if out.exc is not None:
                    raise out.exc
                raise EngineCellError(out.error)
            outcomes[i] = out.error
        return outcomes

    # -- seams (overridden by the resilience layer) --------------------
    def _lp_workers_for(self, config: SimulationConfig,
                        aggregated: bool) -> Optional[int]:
        """Resolve the in-cell LP count for one cell, or ``None``.

        ``"auto"`` partitions only cells big enough to amortize the
        worker processes (>= 256 nodes), only on machines with cores to
        spare, and only when the configuration is protocol-eligible;
        everything else stays sequential.
        """
        if aggregated or self.lp_workers is None:
            return None
        if self.lp_workers == "auto":
            from ..rocc.partition import parallel_ineligibility

            cpus = os.cpu_count() or 1
            if (
                cpus < 4
                or config.nodes < 256
                or parallel_ineligibility(config) is not None
            ):
                return None
            return min(4, cpus)
        return self.lp_workers if self.lp_workers >= 2 else None

    def _payload(self, config: SimulationConfig, aggregated: bool,
                 traced: bool) -> Tuple:
        return (config, aggregated, traced,
                self._lp_workers_for(config, aggregated))

    def _fingerprint(self, config: SimulationConfig,
                     aggregated: bool) -> Optional[str]:
        """Content key of one cell, or None when nothing will use it."""
        if not self.cache.enabled:
            return None
        key = config_fingerprint(config, aggregated)
        lp = self._lp_workers_for(config, aggregated)
        if lp is not None and lp >= 2:
            # A partitioned run may differ from the sequential one in
            # the last ulp of a few re-associated float sums; keep the
            # two result streams cache-separate.
            key = hashlib.sha256(f"{key}|lp{lp}".encode()).hexdigest()
        return key

    def _lookup(self, config: SimulationConfig,
                key: Optional[str]) -> Optional[SimulationResults]:
        """Serve a cell without executing it (cache hit), else None."""
        if key is None or not self.cache.enabled:
            return None
        corrupt_before = self.cache.corrupt_entries
        hit = self.cache.get(key)
        self.stats.cache_corrupt += self.cache.corrupt_entries - corrupt_before
        if hit is not None:
            self.stats.cache_hits += 1
        return hit

    def _execute(
        self, misses, aggregated: bool, isolate: bool
    ) -> Iterator[Tuple[int, Optional[str], _CellOutcome]]:
        if not misses:
            return
        traced = tracing_enabled()
        if self.workers == 1 or len(misses) == 1:
            for i, config, key in misses:
                out = self._run_inline(config, aggregated, traced)
                yield i, key, out
                if not out.ok and not isolate:
                    return  # fail fast: later cells never start
            return
        pool = self._ensure_pool()
        futures = [
            (i, config, key,
             pool.submit(self.cell_runner,
                         self._payload(config, aggregated, traced)))
            for i, config, key in misses
        ]
        for i, config, key, future in futures:
            try:
                out = future.result()
            except BaseException as exc:
                # The worker died (BrokenProcessPool) or the outcome
                # could not cross the boundary; synthesize an artifact.
                if isinstance(exc, KeyboardInterrupt):
                    raise
                self._reset_broken_pool()
                out = _CellOutcome(
                    ok=False, error=CellError.from_exception(config, exc),
                    exc=exc,
                )
            yield i, key, out

    def _run_inline(self, config: SimulationConfig, aggregated: bool,
                    traced: bool) -> _CellOutcome:
        """One inline cell; exceptions from a swapped-in ``cell_runner``
        (chaos wrappers raise by design) become failure artifacts."""
        try:
            return self.cell_runner(self._payload(config, aggregated, traced))
        except Exception as exc:
            return _CellOutcome(
                ok=False, error=CellError.from_exception(config, exc), exc=exc
            )

    def _reset_broken_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.stats.pool_resets += 1
            obs_registry().counter(
                "engine.pool_resets",
                "worker-pool restarts after breakage",
            ).inc()


# ---------------------------------------------------------------------------
# Ambient engine
# ---------------------------------------------------------------------------

_default_engine: Optional[ExperimentEngine] = None
_engine_stack: List[ExperimentEngine] = []


def current_engine() -> ExperimentEngine:
    """The innermost :func:`use_engine` engine, else a process-wide
    default built from the environment on first use."""
    if _engine_stack:
        return _engine_stack[-1]
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine


@contextmanager
def use_engine(engine: ExperimentEngine):
    """Make *engine* ambient for ``replicate``/``sweep`` in the block."""
    _engine_stack.append(engine)
    try:
        yield engine
    finally:
        _engine_stack.pop()
