"""Analytical (Section 3) figures: 9, 10, 12, 13, 14, 15.

These are pure operational-analysis sweeps — equations (1)–(16) — so
they run instantly; ``quick`` only trims the sweep grids slightly.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analytical.mpp import MPPAnalyticalModel
from ..analytical.now import NOWAnalyticalModel
from ..analytical.smp import SMPAnalyticalModel
from .registry import register
from .reporting import ArtifactGroup, SeriesSet

__all__ = ["figure9", "figure10", "figure12", "figure13", "figure14", "figure15"]

_BF_BATCH = 32  # the paper's "arbitrarily selected" BF batch size


def _panel(title: str, x_label: str, y_label: str, x: Sequence[float]) -> SeriesSet:
    return SeriesSet(
        title=title, x_label=x_label, y_label=y_label, x=[float(v) for v in x]
    )


def _now_metrics(
    x: Sequence[float],
    make_model,
) -> List[SeriesSet]:
    """Build the four standard NOW panels from a model factory."""
    panels = []
    specs = [
        ("Pd CPU utilization/node (%)", lambda m: 100 * m.pd_cpu_utilization()),
        ("Paradyn CPU utilization (%)", lambda m: 100 * m.paradyn_cpu_utilization()),
        ("Appl. CPU utilization/node (%)", lambda m: 100 * m.app_cpu_utilization()),
        ("Monitoring latency/sample (s)", lambda m: m.monitoring_latency() / 1e6),
    ]
    for name, extract in specs:
        panel = _panel(name, "x", name, x)
        for policy, batch in (("CF", 1), ("BF", _BF_BATCH)):
            panel.add_series(policy, [extract(make_model(v, batch)) for v in x])
        panels.append(panel)
    return panels


@register(
    "figure9",
    "Figure 9 — analytic NOW metrics vs node count and sampling period",
    "Figure 9",
)
def figure9(quick: bool = True) -> ArtifactGroup:
    """Equations (1)–(6) swept over nodes (T = 40 ms) and periods (n = 8)."""
    group = ArtifactGroup(title="Figure 9: analytic NOW, CF vs BF")
    nodes = [2, 4, 8, 16, 32]
    for panel in _now_metrics(
        nodes,
        lambda n, b: NOWAnalyticalModel(nodes=int(n), sampling_period=40_000, batch_size=b),
    ):
        panel.title = f"(a) vs number of nodes, T=40ms — {panel.title}"
        panel.x_label = "nodes"
        group.add(panel)
    periods_ms = [1, 2, 4, 8, 16, 32, 64]
    for panel in _now_metrics(
        periods_ms,
        lambda t, b: NOWAnalyticalModel(
            nodes=8, sampling_period=t * 1000.0, batch_size=b
        ),
    ):
        panel.title = f"(b) vs sampling period, n=8 — {panel.title}"
        panel.x_label = "period_ms"
        group.add(panel)
    return group


@register(
    "figure10",
    "Figure 10 — analytic NOW metrics vs batch size",
    "Figure 10",
)
def figure10(quick: bool = True) -> ArtifactGroup:
    """Equations (1)–(6) swept over the BF batch size at n = 8."""
    group = ArtifactGroup(title="Figure 10: analytic NOW vs batch size (n=8)")
    batches = [1, 2, 4, 8, 16, 32, 64, 128]
    specs = [
        ("Pd CPU utilization/node (%)", lambda m: 100 * m.pd_cpu_utilization()),
        ("Paradyn CPU utilization/node (%)", lambda m: 100 * m.paradyn_cpu_utilization()),
        ("Appl. CPU utilization/node (%)", lambda m: 100 * m.app_cpu_utilization()),
        ("Monitoring latency/samp. (s)", lambda m: m.monitoring_latency() / 1e6),
    ]
    for name, extract in specs:
        panel = _panel(name, "batch_size", name, batches)
        for label, period in (("T=1ms", 1_000.0), ("T=40ms", 40_000.0), ("T=64ms", 64_000.0)):
            panel.add_series(
                label,
                [
                    extract(
                        NOWAnalyticalModel(
                            nodes=8, sampling_period=period, batch_size=b
                        )
                    )
                    for b in batches
                ],
            )
        group.add(panel)
    return group


def _smp_group(
    title: str,
    x: Sequence[float],
    make_model,
    x_label: str,
) -> ArtifactGroup:
    group = ArtifactGroup(title=title)
    specs = [
        ("IS CPU utilization/node (%)", lambda m: 100 * m.is_cpu_utilization()),
        ("Monitoring latency/samp. (s)", lambda m: m.monitoring_latency() / 1e6),
        ("Application CPU utilization/node (%)", lambda m: 100 * m.app_cpu_utilization()),
    ]
    for policy, batch in (("CF", 1), ("BF", _BF_BATCH)):
        for name, extract in specs:
            panel = _panel(f"({policy}) {name}", x_label, name, x)
            for k in (1, 2, 3, 4):
                panel.add_series(
                    f"{k} Pd" + ("s" if k > 1 else ""),
                    [extract(make_model(v, batch, k)) for v in x],
                )
            group.add(panel)
    return group


@register(
    "figure12",
    "Figure 12 — analytic SMP metrics vs sampling period, 1–4 daemons",
    "Figure 12",
)
def figure12(quick: bool = True) -> ArtifactGroup:
    """Equations (7)–(12), n = 16 CPUs, 32 application processes."""
    periods_ms = [1, 2, 4, 8, 16, 32, 64]
    return _smp_group(
        "Figure 12: analytic SMP vs sampling period (n=16, 32 apps)",
        periods_ms,
        lambda t, b, k: SMPAnalyticalModel(
            nodes=16, sampling_period=t * 1000.0, batch_size=b,
            app_processes=32, daemons=k,
        ),
        "period_ms",
    )


@register(
    "figure13",
    "Figure 13 — analytic SMP metrics vs application processes, 1–4 daemons",
    "Figure 13",
)
def figure13(quick: bool = True) -> ArtifactGroup:
    """Equations (7)–(12), T = 40 ms, n = 16 CPUs."""
    apps = [1, 2, 3, 4, 5, 6]
    return _smp_group(
        "Figure 13: analytic SMP vs number of application processes "
        "(T=40ms, n=16)",
        apps,
        lambda a, b, k: SMPAnalyticalModel(
            nodes=16, sampling_period=40_000.0, batch_size=b,
            app_processes=int(a), daemons=k,
        ),
        "app_processes",
    )


def _mpp_group(
    title: str,
    x: Sequence[float],
    make_model,
    x_label: str,
) -> ArtifactGroup:
    group = ArtifactGroup(title=title)
    specs = [
        ("Pd CPU utilization/node (%)", lambda m: 100 * m.pd_cpu_utilization()),
        ("Paradyn CPU utilization/node (%)", lambda m: 100 * m.paradyn_cpu_utilization()),
        ("Appl. CPU utilization/node (%)", lambda m: 100 * m.app_cpu_utilization()),
        ("Monitoring latency/sample (s)", lambda m: m.monitoring_latency() / 1e6),
    ]
    for name, extract in specs:
        panel = _panel(name, x_label, name, x)
        for topo, tree in (("direct", False), ("tree", True)):
            panel.add_series(topo, [extract(make_model(v, tree)) for v in x])
        group.add(panel)
    return group


@register(
    "figure14",
    "Figure 14 — analytic MPP metrics vs sampling period, direct vs tree",
    "Figure 14",
)
def figure14(quick: bool = True) -> ArtifactGroup:
    """Equations (13)–(16), n = 256, BF policy."""
    periods_ms = [1, 2, 4, 8, 16, 32, 64]
    return _mpp_group(
        "Figure 14: analytic MPP vs sampling period (n=256, BF)",
        periods_ms,
        lambda t, tree: MPPAnalyticalModel(
            nodes=256, sampling_period=t * 1000.0, batch_size=_BF_BATCH, tree=tree
        ),
        "period_ms",
    )


@register(
    "figure15",
    "Figure 15 — analytic MPP metrics vs node count, direct vs tree",
    "Figure 15",
)
def figure15(quick: bool = True) -> ArtifactGroup:
    """Equations (13)–(16), T = 40 ms, BF policy."""
    nodes = [2, 4, 8, 16, 32, 64, 128, 256]
    return _mpp_group(
        "Figure 15: analytic MPP vs number of nodes (T=40ms, BF)",
        nodes,
        lambda n, tree: MPPAnalyticalModel(
            nodes=int(n), sampling_period=40_000.0, batch_size=_BF_BATCH, tree=tree
        ),
        "nodes",
    )
