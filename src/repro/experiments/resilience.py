"""Resilient experiment execution: retries, deadlines, checkpoint/resume.

The paper's evaluation is a large factorial sweep of independent
simulation cells, and long sweeps die in mundane ways: a worker process
is OOM-killed mid-cell (``BrokenProcessPool``), a pathological
configuration livelocks the kernel, a crashed run leaves a corrupt
cache entry behind.  :class:`ResilientEngine` wraps the
:class:`~repro.experiments.engine.ExperimentEngine` scheduler so that
every failure is *bounded* and every sweep is *restartable*:

* **Deadlines** — ``cell_timeout`` arms the PR-1 kernel watchdog inside
  the worker (``max_wall_seconds``), so a runaway cell aborts itself
  with :class:`~repro.des.SimulationStalled`.  A worker that hangs
  outside the kernel (so the watchdog cannot fire) is caught by a
  parent-side wait guard and its pool is torn down.
* **Retries** — a :class:`RetryPolicy` (max attempts, exponential
  backoff with deterministic jitter, retry-on exception classes)
  re-runs transient failures — worker death, stalls, deadline breaches —
  instead of aborting the batch.  Cells are deterministic, so a retry
  that succeeds is indistinguishable from a first-attempt success.
* **Checkpoint/resume** — a :class:`RunJournal` (append-only JSONL,
  keyed by the engine's content-addressed cell fingerprint) records
  every attempt, success, and final failure.  Re-running with the same
  journal serves completed cells from the journal without simulating
  them again and re-runs only the remainder.
* **Graceful degradation** — after repeated pool breakage the engine
  demotes itself to serial in-process execution; with ``strict=False``
  a sweep always returns (partial results plus a structured
  :class:`FailureReport`) instead of raising.

Counters (``engine.retries``, ``engine.cell_timeouts``,
``engine.pool_resets``, ``engine.cache_corrupt``) are published through
the :mod:`repro.obs` metrics registry, and every attempt runs under a
span when tracing is enabled.  The failure modes themselves are
exercised by the chaos harness in :mod:`repro.experiments.chaos`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..des.profiling import merge_profiles
from ..obs.metrics import registry as obs_registry, timed
from ..obs.spans import current_tracer, maybe_span, tracing_enabled
from ..rocc.config import SimulationConfig
from ..rocc.metrics import SimulationResults
from .engine import (
    CellCache,
    CellError,
    EngineStats,
    ExperimentEngine,
    _CellOutcome,
    config_fingerprint,
)

__all__ = [
    "CellTimeout",
    "RetryPolicy",
    "CellFailure",
    "FailureReport",
    "RunJournal",
    "ResilientEngine",
]


class CellTimeout(RuntimeError):
    """A cell exceeded its wall-clock deadline (parent-side wait guard)."""


#: Exception class names retried by default: everything that can be
#: transient on a loaded host — watchdog stalls (the cell itself is
#: deterministic, but wall-clock deadlines are not), worker death and
#: its pool-level shrapnel, and injected chaos faults.
DEFAULT_TRANSIENT: Tuple[str, ...] = (
    "SimulationStalled",
    "CellTimeout",
    "BrokenProcessPool",
    "ChaosKilled",
    "CancelledError",
    "EOFError",
    "BrokenPipeError",
    "ConnectionResetError",
    "LPWorkerLost",
)

# Module-cached instruments (registry().reset() zeroes them in place,
# so the references stay valid across test isolation).
_RETRIES = obs_registry().counter(
    "engine.retries", "cell re-executions scheduled by the resilience layer"
)
_TIMEOUTS = obs_registry().counter(
    "engine.cell_timeouts", "cells that exceeded their wall-clock deadline"
)
_ATTEMPT_SECONDS = obs_registry().histogram(
    "engine.attempt_seconds", "wall seconds per executed cell attempt"
)
_BATCH_SECONDS = obs_registry().histogram(
    "engine.batch_seconds", "wall seconds per resilient run_cells batch"
)


@dataclass(frozen=True)
class RetryPolicy:
    """When and how to re-run a failed cell.

    Only *transient* failures are retried: the failure's exception class
    name (the prefix of :attr:`CellError.error`) must appear in
    :attr:`retry_on`.  Deterministic model errors (a ``ValueError`` from
    a bad config, say) would fail identically on every attempt, so they
    are never retried.  Backoff is exponential with multiplicative
    jitter derived from a hash of ``(cell key, attempt)`` — deterministic
    across runs, decorrelated across cells.
    """

    #: Total attempts per cell (1 = no retries).
    max_attempts: int = 3
    #: First backoff delay, seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Jitter fraction in [0, 1): delay is scaled by 1 ± jitter·u.
    backoff_jitter: float = 0.5
    #: Exception class names considered transient.
    retry_on: Tuple[str, ...] = DEFAULT_TRANSIENT

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries: every first failure is final."""
        return cls(max_attempts=1)

    @classmethod
    def from_recovery_policy(cls, policy, max_attempts: int = 3) -> "RetryPolicy":
        """Adapt a simulated-daemon :class:`~repro.faults.RecoveryPolicy`
        (µs timescale) to host-side cell retries (seconds) — the same
        exponential-backoff-with-jitter shape the model uses for
        retransmissions, scaled 1 µs → 1 ms."""
        return cls(
            max_attempts=max_attempts,
            backoff_base=policy.backoff_base * 1e-3,  # n µs -> n ms, in s
            backoff_factor=policy.backoff_factor,
            backoff_jitter=policy.backoff_jitter,
        )

    def error_class(self, error: CellError) -> str:
        """The exception class name carried by a failure artifact."""
        return error.error.split(":", 1)[0].strip()

    def is_transient(self, error: CellError) -> bool:
        return self.error_class(error) in self.retry_on

    def should_retry(self, error: CellError, attempt: int) -> bool:
        """Whether attempt *attempt* (1-based) may be followed by another."""
        return attempt < self.max_attempts and self.is_transient(error)

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before attempt ``attempt + 1``, seconds."""
        d = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter > 0.0:
            digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
            u = int.from_bytes(digest[:8], "big") / 2.0 ** 64  # [0, 1)
            d *= 1.0 + self.backoff_jitter * (2.0 * u - 1.0)
        return d


# ---------------------------------------------------------------------------
# Failure reporting
# ---------------------------------------------------------------------------


@dataclass
class CellFailure:
    """One cell that exhausted its attempts (or was not retryable)."""

    config_summary: str
    key: Optional[str]
    attempts: int
    error: str
    traceback: str = ""


@dataclass
class FailureReport:
    """Structured account of everything the resilience layer survived.

    Returned alongside partial results (``strict=False``) and threaded
    into reporting: :func:`repro.experiments.reporting.failure_report_table`
    renders it as an artifact table.  Truthiness means "cells were
    lost"; recovered incidents (pool resets, retries that eventually
    succeeded) are recorded but do not make the report truthy.
    """

    failures: List[CellFailure] = field(default_factory=list)
    retries: int = 0
    cell_timeouts: int = 0
    pool_resets: int = 0
    degraded_to_serial: bool = False

    def __bool__(self) -> bool:
        return bool(self.failures)

    def add(self, config: SimulationConfig, key: Optional[str],
            attempts: int, error: CellError) -> None:
        self.failures.append(CellFailure(
            config_summary=error.config_summary,
            key=key,
            attempts=attempts,
            error=error.error,
            traceback=error.traceback,
        ))

    def summary(self) -> str:
        bits = [f"{len(self.failures)} cell(s) failed"]
        if self.retries:
            bits.append(f"{self.retries} retries")
        if self.cell_timeouts:
            bits.append(f"{self.cell_timeouts} deadline breaches")
        if self.pool_resets:
            bits.append(f"{self.pool_resets} pool resets")
        if self.degraded_to_serial:
            bits.append("degraded to serial execution")
        return ", ".join(bits)

    def format(self) -> str:
        lines = [f"failure report: {self.summary()}"]
        for f in self.failures:
            lines.append(
                f"  {f.config_summary}: {f.error} "
                f"(after {f.attempts} attempt(s))"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Run journal (checkpoint / resume)
# ---------------------------------------------------------------------------


class RunJournal:
    """Append-only JSONL record of a sweep, keyed by cell fingerprint.

    Events: ``journal`` (header), ``attempt``, ``retry``, ``success``
    (carries the pickled :class:`SimulationResults`, base64-encoded,
    with a sha256 checksum), and ``failure`` (final, after retries).
    Because cell fingerprints already content-address the full config
    *and* the simulation source, resuming from a journal is safe across
    process restarts: a changed config or changed code simply produces
    different keys and re-runs.

    Loading tolerates a torn tail (a crash mid-append) and corrupt
    ``success`` payloads — any record that fails to parse or fails its
    checksum is ignored, so the worst outcome of journal damage is
    recomputing a cell, never serving garbage.
    """

    VERSION = 1

    def __init__(self, path: Union[str, Path], resume: bool = True):
        self.path = Path(path).expanduser()
        self._blobs: Dict[str, bytes] = {}
        self.attempts: Dict[str, int] = {}
        self.failed: Dict[str, str] = {}
        #: Lines skipped on load (torn tail, checksum mismatch).
        self.skipped_records = 0
        existed = self.path.exists()
        if resume and existed:
            self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        if not existed:
            self._write({
                "event": "journal",
                "version": self.VERSION,
                "pid": os.getpid(),
            })

    # -- persistence ---------------------------------------------------
    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                self.skipped_records += 1  # torn tail / scribbled line
                continue
            event = rec.get("event")
            key = rec.get("key")
            if event in ("attempt", "retry") and key:
                self.attempts[key] = max(
                    self.attempts.get(key, 0), int(rec.get("attempt", 1))
                )
            elif event == "success" and key:
                try:
                    blob = base64.b64decode(rec["result"])
                except (KeyError, ValueError):
                    self.skipped_records += 1
                    continue
                if hashlib.sha256(blob).hexdigest() != rec.get("sha256"):
                    self.skipped_records += 1
                    continue
                self._blobs[key] = blob
                self.failed.pop(key, None)
            elif event == "failure" and key:
                self.failed[key] = str(rec.get("error", ""))

    def _write(self, rec: dict, fsync: bool = False) -> None:
        rec = dict(rec)
        rec["ts"] = round(time.time(), 3)
        self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
        self._fh.flush()
        if fsync:
            try:
                os.fsync(self._fh.fileno())
            except OSError:
                pass

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries -------------------------------------------------------
    def completed_keys(self) -> Set[str]:
        return set(self._blobs)

    def result_for(self, key: str) -> Optional[SimulationResults]:
        """The journaled result of a completed cell, else None."""
        blob = self._blobs.get(key)
        if blob is None:
            return None
        try:
            result = pickle.loads(blob)
        except Exception:
            self._blobs.pop(key, None)
            self.skipped_records += 1
            return None
        return result if isinstance(result, SimulationResults) else None

    # -- recording -----------------------------------------------------
    def record_attempt(self, key: Optional[str], attempt: int) -> None:
        if key:
            self.attempts[key] = max(self.attempts.get(key, 0), attempt)
            self._write({"event": "attempt", "key": key, "attempt": attempt})

    def record_retry(self, key: Optional[str], attempt: int, error: str) -> None:
        if key:
            self._write({
                "event": "retry", "key": key,
                "attempt": attempt, "error": error,
            })

    def record_success(self, key: Optional[str], results: SimulationResults,
                       attempt: int = 1, wall: float = 0.0) -> None:
        if not key:
            return
        blob = pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
        self._write({
            "event": "success",
            "key": key,
            "attempt": attempt,
            "wall": round(wall, 6),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "result": base64.b64encode(blob).decode("ascii"),
        }, fsync=True)
        self._blobs[key] = blob
        self.failed.pop(key, None)

    def record_failure(self, key: Optional[str], attempt: int, error: str) -> None:
        if key:
            self._write({
                "event": "failure", "key": key,
                "attempt": attempt, "error": error,
            }, fsync=True)
            self.failed[key] = error


# ---------------------------------------------------------------------------
# The resilient engine
# ---------------------------------------------------------------------------


class ResilientEngine(ExperimentEngine):
    """An :class:`ExperimentEngine` whose failures are bounded.

    Parameters beyond the base engine's:

    * ``retry`` — the :class:`RetryPolicy` (default: 3 attempts with
      exponential backoff over the transient classes).
    * ``cell_timeout`` — per-cell wall-clock deadline, seconds.
      Enforced inside the worker via the kernel watchdog
      (``max_wall_seconds``) and, for workers hung outside the kernel,
      by a parent-side wait guard of ``cell_timeout × deadline_grace +
      2`` seconds that tears the pool down.
    * ``journal`` — a :class:`RunJournal` (or a path) to checkpoint into
      and resume from: completed cells are served from the journal
      without executing.
    * ``strict`` — when False, a cell that exhausts its attempts never
      raises: it is returned as a :class:`CellError` artifact (the
      partial-results contract of ``isolate=True``) and recorded in
      :attr:`failure_report`.
    * ``degrade_after`` — pool failures tolerated before the engine
      demotes itself to serial in-process execution.

    Attempt accounting: a failure *inside* a cell (exception, watchdog
    stall, deadline breach) consumes one of the cell's attempts.  Pool
    shrapnel — sibling futures that die with ``BrokenProcessPool`` or
    are cancelled because some *other* cell broke the pool — is requeued
    without consuming the victim cells' budgets, and is bounded by
    ``degrade_after`` instead.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[CellCache] = None,
                 stats: Optional[EngineStats] = None,
                 retry: Optional[RetryPolicy] = None,
                 cell_timeout: Optional[float] = None,
                 journal: Union[RunJournal, str, Path, None] = None,
                 strict: bool = True,
                 degrade_after: int = 3,
                 deadline_grace: float = 3.0,
                 lp_workers=None):
        super().__init__(workers=workers, cache=cache, stats=stats,
                         lp_workers=lp_workers)
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None)")
        if degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        if deadline_grace < 1.0:
            raise ValueError("deadline_grace must be >= 1")
        self.retry = retry if retry is not None else RetryPolicy()
        self.cell_timeout = cell_timeout
        self.journal = (
            journal if isinstance(journal, RunJournal) or journal is None
            else RunJournal(journal)
        )
        self.strict = strict
        self.degrade_after = degrade_after
        self.deadline_grace = deadline_grace
        self.failure_report = FailureReport()
        self._pool_failures = 0

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        super().close()
        if self.journal is not None:
            self.journal.close()

    # -- base-engine seams ---------------------------------------------
    def run_cells(self, configs, aggregated: bool = False,
                  isolate: bool = False):
        # strict=False is the partial-results contract: failures become
        # artifacts instead of raising, exactly like isolate=True.
        with timed(_BATCH_SECONDS):
            return super().run_cells(
                configs, aggregated=aggregated,
                isolate=isolate or not self.strict,
            )

    def _fingerprint(self, config: SimulationConfig,
                     aggregated: bool) -> Optional[str]:
        # The journal needs keys even when the cache is disabled.
        if self.journal is not None:
            return config_fingerprint(config, aggregated)
        return super()._fingerprint(config, aggregated)

    def _lookup(self, config: SimulationConfig,
                key: Optional[str]) -> Optional[SimulationResults]:
        if self.journal is not None and key is not None:
            result = self.journal.result_for(key)
            if result is not None:
                self.stats.cells_resumed += 1
                return result
        return super()._lookup(config, key)

    # -- execution -----------------------------------------------------
    def _execute(self, misses, aggregated, isolate):
        if not misses:
            return
        traced = tracing_enabled()
        pending = [(i, config, key, 1) for i, config, key in misses]
        while pending:
            if self.workers == 1 or len(pending) == 1:
                for i, config, key, attempt in pending:
                    out, attempts = self._serial_attempts(
                        config, key, aggregated, traced, attempt
                    )
                    self._finalize(config, key, out, attempt=attempts)
                    yield i, key, out
                    if not out.ok and not isolate:
                        return  # fail fast, like the base serial path
                return
            pending, delay = yield from self._pool_round(
                pending, aggregated, traced
            )
            if pending and delay > 0.0:
                time.sleep(delay)

    def _serial_attempts(self, config, key, aggregated, traced,
                         attempt: int) -> Tuple[_CellOutcome, int]:
        """Run one cell inline until success or the policy gives up;
        returns the final outcome and the attempt count."""
        while True:
            self._journal_attempt(key, attempt)
            with maybe_span(
                "attempt", cat="engine.attempt",
                args={"attempt": attempt, "key": (key or "")[:12]},
            ):
                out = self._run_inline(
                    self._with_deadline(config), aggregated, traced
                )
            _ATTEMPT_SECONDS.observe(out.wall)
            if out.ok:
                return out, attempt
            self._note_timeout_if_any(out)
            if not self.retry.should_retry(out.error, attempt):
                return out, attempt
            self._absorb_attempt(out)
            self._count_retry(key, attempt, out.error.error)
            time.sleep(self.retry.delay(attempt, key or ""))
            attempt += 1

    def _pool_round(self, pending, aggregated, traced):
        """One parallel wave over *pending*; yields finished cells and
        returns ``(still_pending, backoff_delay)``."""
        pool = self._ensure_pool()
        futures = []
        for item in pending:
            i, config, key, attempt = item
            self._journal_attempt(key, attempt)
            futures.append((item, pool.submit(
                self.cell_runner,
                self._payload(self._with_deadline(config), aggregated, traced),
            )))
        next_pending: List[Tuple] = []
        delay = 0.0
        pool_failed = False
        for (i, config, key, attempt), future in futures:
            with maybe_span(
                "attempt", cat="engine.attempt",
                args={"attempt": attempt, "key": (key or "")[:12]},
            ) as span:
                try:
                    # Once the pool is known broken, the remaining
                    # futures fail (or were cancelled) immediately —
                    # keep a short guard instead of a full deadline wait.
                    wait = 15.0 if pool_failed else self._wait_timeout()
                    out = future.result(timeout=wait)
                except KeyboardInterrupt:
                    raise
                except _FuturesTimeout:
                    # The worker is hung somewhere the in-worker
                    # watchdog cannot reach; kill the pool and charge
                    # this cell.
                    out = self._timeout_outcome(config)
                    self._note_pool_failure(hard=True)
                    pool_failed = True
                except BaseException:
                    # Worker death (BrokenProcessPool) or post-reset
                    # cancellation: pool-level shrapnel.  Requeue
                    # without consuming the cell's attempt budget —
                    # bounded by degrade_after, not max_attempts.
                    if not pool_failed:
                        self._note_pool_failure(hard=False)
                        pool_failed = True
                    self._count_retry(key, attempt, "BrokenProcessPool")
                    next_pending.append((i, config, key, attempt))
                    if span is not None:
                        span.args["requeued"] = True
                    continue
                if span is not None:
                    span.args["ok"] = out.ok
            _ATTEMPT_SECONDS.observe(out.wall)
            if out.ok:
                self._finalize(config, key, out, attempt=attempt)
                yield i, key, out
                continue
            self._note_timeout_if_any(out)
            if self.retry.should_retry(out.error, attempt):
                self._absorb_attempt(out)
                self._count_retry(key, attempt, out.error.error)
                delay = max(delay, self.retry.delay(attempt, key or ""))
                next_pending.append((i, config, key, attempt + 1))
            else:
                self._finalize(config, key, out, attempt=attempt)
                yield i, key, out
        return next_pending, delay

    # -- helpers -------------------------------------------------------
    def _with_deadline(self, config: SimulationConfig) -> SimulationConfig:
        if self.cell_timeout is None:
            return config
        current = config.max_wall_seconds
        deadline = (
            self.cell_timeout if current is None
            else min(current, self.cell_timeout)
        )
        if current == deadline:
            return config
        return config.with_(max_wall_seconds=deadline)

    def _wait_timeout(self) -> Optional[float]:
        if self.cell_timeout is None:
            return None
        return self.cell_timeout * self.deadline_grace + 2.0

    def _timeout_outcome(self, config: SimulationConfig) -> _CellOutcome:
        exc = CellTimeout(
            f"cell exceeded its wall-clock deadline of "
            f"{self.cell_timeout}s (worker unresponsive; pool reset)"
        )
        return _CellOutcome(
            ok=False, error=CellError.from_exception(config, exc), exc=exc
        )

    def _note_timeout_if_any(self, out: _CellOutcome) -> None:
        name = self.retry.error_class(out.error) if out.error else ""
        if name in ("CellTimeout", "SimulationStalled"):
            self.stats.cell_timeouts += 1
            self.failure_report.cell_timeouts += 1
            _TIMEOUTS.inc()

    def _note_pool_failure(self, hard: bool) -> None:
        self._pool_failures += 1
        if hard:
            self._hard_reset_pool()
        else:
            self._reset_broken_pool()
        self.failure_report.pool_resets = self.stats.pool_resets
        if self._pool_failures >= self.degrade_after and self.workers > 1:
            # Graceful degradation: the pool keeps dying under us, so
            # stop using one.  Serial execution cannot lose workers.
            self.workers = 1
            self.stats.workers = 1
            self.failure_report.degraded_to_serial = True

    def _hard_reset_pool(self) -> None:
        """Tear down a pool whose workers may be hung (not just dead):
        terminate the worker processes, then shut the executor down."""
        pool = self._pool
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        self._reset_broken_pool()

    def _count_retry(self, key: Optional[str], attempt: int,
                     error: str) -> None:
        self.stats.retries += 1
        self.failure_report.retries += 1
        _RETRIES.inc()
        if self.journal is not None:
            self.journal.record_retry(key, attempt, error.splitlines()[0])

    def _absorb_attempt(self, out: _CellOutcome) -> None:
        """Account for a non-final (retried) attempt: the base engine
        only books the outcomes we yield, so failed attempts' wall/CPU
        time, spans, metrics, and profiles are folded in here."""
        self.stats.cell_wall_time += out.wall
        self.stats.cell_cpu_time += out.cpu
        tracer = current_tracer()
        if tracer is not None and out.trace is not None:
            tracer.merge(out.trace)
        if out.metrics and out.pid and out.pid != os.getpid():
            obs_registry().merge_snapshot(out.metrics)
        if out.profile is not None:
            self.stats.profile = merge_profiles(self.stats.profile, out.profile)
            self.stats.sim_events += out.profile["events"]

    def _journal_attempt(self, key: Optional[str], attempt: int) -> None:
        if self.journal is not None:
            self.journal.record_attempt(key, attempt)

    def _finalize(self, config: SimulationConfig, key: Optional[str],
                  out: _CellOutcome, attempt: Optional[int]) -> None:
        """Journal + report bookkeeping for a cell's final outcome."""
        attempts = attempt if attempt is not None else (
            self.journal.attempts.get(key, 1)
            if self.journal is not None and key else 1
        )
        if out.ok:
            if self.journal is not None:
                self.journal.record_success(
                    key, out.result, attempt=attempts, wall=out.wall
                )
            return
        if self.journal is not None:
            self.journal.record_failure(
                key, attempts, out.error.error.splitlines()[0]
            )
        self.failure_report.add(config, key, attempts, out.error)
