"""Chaos harness: prove the resilience layer against injected faults.

The chaos harness attacks the *execution* layer — the host-side worker
pool, cell scheduling, and on-disk cache — as opposed to
:mod:`repro.faults`, which injects faults into the *simulated* system
(daemon crashes, lossy pipes).  Three failure modes are injected,
deterministically targeted by cell fingerprint:

* **Worker kills** (``kill_once``) — the worker ``SIGKILL``\\ s itself
  before running the cell, surfacing in the parent as
  ``BrokenProcessPool`` mid-batch.
* **Cell hangs** (``hang_once``) — the worker sleeps *outside* the
  simulation kernel, where the in-worker watchdog cannot fire, so only
  the engine's parent-side deadline guard can recover.
* **Injected failures** (``raise_once``) — the cell fails with
  :class:`ChaosKilled` inside the normal outcome channel (safe under
  serial engines, where a real ``SIGKILL`` would take out the parent).

Each fault fires exactly once per cell: the first attempt claims a
marker file in :attr:`ChaosPlan.state_dir` (atomic ``open(..., "x")``,
so it works across processes), and retries run clean.  That makes every
chaos scenario deterministic: a resilient engine must converge to the
exact same results as an undisturbed run.

:func:`corrupt_cache_entry` complements the runtime faults by damaging
a :class:`~repro.experiments.engine.CellCache` entry on disk, which the
cache must quarantine — not serve, not crash on.
"""

from __future__ import annotations

import functools
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Tuple

from .engine import (
    CellCache,
    CellError,
    ExperimentEngine,
    _CellOutcome,
    _run_cell,
    config_fingerprint,
)

__all__ = [
    "ChaosKilled",
    "ChaosPlan",
    "chaos_key",
    "chaos_cell_runner",
    "install_chaos",
    "corrupt_cache_entry",
]


class ChaosKilled(RuntimeError):
    """An injected (chaos) cell failure; classified as transient."""


def chaos_key(config, aggregated: bool = False) -> str:
    """Deadline-insensitive fingerprint used to target chaos faults.

    A resilient engine rewrites ``max_wall_seconds`` on the config it
    ships to workers (the cell deadline), which would change the plain
    cache fingerprint; chaos targeting must hit the same cell whether or
    not a deadline is armed, so the watchdog fields are pinned to None
    before fingerprinting.
    """
    return config_fingerprint(
        config.with_(max_wall_seconds=None), aggregated
    )


@dataclass(frozen=True)
class ChaosPlan:
    """Declarative, picklable description of the faults to inject.

    Cells are addressed by :func:`chaos_key` (the content fingerprint
    with deadline fields pinned), so a plan survives pickling into pool
    workers and targets the same cells on every attempt regardless of
    scheduling order or armed deadlines.
    """

    #: Directory holding the once-only marker files (must be shared by
    #: parent and workers; any tmp dir on the same host works).
    state_dir: str
    #: Fingerprints whose first attempt SIGKILLs its worker process.
    kill_once: Tuple[str, ...] = ()
    #: Fingerprints whose first attempt fails with :class:`ChaosKilled`.
    raise_once: Tuple[str, ...] = ()
    #: Fingerprints whose first attempt sleeps outside the kernel.
    hang_once: Tuple[str, ...] = ()
    #: How long a hung cell sleeps, seconds.
    hang_seconds: float = 30.0
    #: Pid of the scheduling process; a kill targeted at it (serial
    #: engine, no pool) degrades to a raise so chaos never takes down
    #: the run itself.
    parent_pid: int = 0

    def claim(self, action: str, key: str) -> bool:
        """Atomically claim the once-only marker for (action, cell)."""
        marker = Path(self.state_dir) / f"{action}.{key}"
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            with open(marker, "x"):
                return True
        except FileExistsError:
            return False


def _chaos_run_cell(plan: ChaosPlan, payload) -> _CellOutcome:
    """Drop-in for ``_run_cell`` that injects the planned faults."""
    config, aggregated, *_rest = payload
    key = chaos_key(config, aggregated)
    if key in plan.kill_once and plan.claim("kill", key):
        if not plan.parent_pid or os.getpid() != plan.parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        # Serial engine: refuse to kill the parent, fail the cell instead.
        exc = ChaosKilled(f"injected worker kill for cell {key[:12]}")
        return _CellOutcome(
            ok=False, error=CellError.from_exception(config, exc), exc=exc,
            pid=os.getpid(),
        )
    if key in plan.raise_once and plan.claim("raise", key):
        exc = ChaosKilled(f"injected failure for cell {key[:12]}")
        return _CellOutcome(
            ok=False, error=CellError.from_exception(config, exc), exc=exc,
            pid=os.getpid(),
        )
    if key in plan.hang_once and plan.claim("hang", key):
        # Hang outside the kernel: the in-worker watchdog cannot see
        # this, so recovery is the parent-side deadline guard's job.
        time.sleep(plan.hang_seconds)
    return _run_cell(payload)


def chaos_cell_runner(plan: ChaosPlan) -> Callable[[tuple], _CellOutcome]:
    """A picklable cell runner with *plan*'s faults armed."""
    return functools.partial(_chaos_run_cell, plan)


def install_chaos(engine: ExperimentEngine, plan: ChaosPlan) -> ExperimentEngine:
    """Arm *plan* on *engine* (in place); returns the engine."""
    engine.cell_runner = chaos_cell_runner(plan)
    return engine


def corrupt_cache_entry(cache: CellCache, key: str,
                        mode: str = "garbage") -> Path:
    """Damage one on-disk cache entry, returning its path.

    ``garbage`` overwrites the pickle with junk bytes; ``truncate``
    keeps only the first half (a torn write that atomic replace is
    supposed to prevent — injected here to prove the checksum catches
    it anyway).  Both leave the stored checksum stale, so a subsequent
    ``get`` must quarantine the entry instead of unpickling it.
    """
    path = cache.path_for(key)
    if mode == "garbage":
        path.write_bytes(b"\x80\x04chaos-garbage" * 8)
    elif mode == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path
