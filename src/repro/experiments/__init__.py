"""``repro.experiments`` — per-table / per-figure reproduction harness.

Every evaluation artifact of the paper has a registered runner:

>>> from repro.experiments import run, list_experiments
>>> for e in list_experiments():
...     print(e.id, "-", e.title)          # doctest: +SKIP
>>> print(run("table3").format())          # doctest: +SKIP

Or from the command line::

    python -m repro.experiments list
    python -m repro.experiments figure17
    python -m repro.experiments all --full

Cells (one simulation per ``(config, replication)`` pair) are scheduled
by an :class:`~repro.experiments.engine.ExperimentEngine` — parallel
across processes when ``workers > 1`` (or ``REPRO_WORKERS`` is set) and
memoized on disk by a content-addressed cell cache:

>>> from repro.experiments import ExperimentEngine, use_engine, sweep
>>> with use_engine(ExperimentEngine(workers=4)) as eng:   # doctest: +SKIP
...     cells = sweep(cfg, "nodes", [2, 4, 8, 16])
...     print(eng.stats.summary())
"""

from .engine import (
    CellCache,
    CellError,
    EngineStats,
    ExperimentEngine,
    config_fingerprint,
    current_engine,
    results_equal,
    use_engine,
)
from .registry import Experiment, get, list_experiments, run
from .reporting import (
    ArtifactGroup,
    SeriesSet,
    Table,
    engine_stats_table,
    failure_report_table,
)
from .resilience import (
    FailureReport,
    ResilientEngine,
    RetryPolicy,
    RunJournal,
)
from .runners import MeanResults, metric_series, replicate, run_design, sweep

__all__ = [
    "run",
    "get",
    "list_experiments",
    "Experiment",
    "Table",
    "SeriesSet",
    "ArtifactGroup",
    "replicate",
    "sweep",
    "run_design",
    "metric_series",
    "MeanResults",
    "CellError",
    "ExperimentEngine",
    "ResilientEngine",
    "RetryPolicy",
    "RunJournal",
    "FailureReport",
    "EngineStats",
    "CellCache",
    "config_fingerprint",
    "results_equal",
    "current_engine",
    "use_engine",
    "engine_stats_table",
    "failure_report_table",
]
