"""``repro.experiments`` — per-table / per-figure reproduction harness.

Every evaluation artifact of the paper has a registered runner:

>>> from repro.experiments import run, list_experiments
>>> for e in list_experiments():
...     print(e.id, "-", e.title)          # doctest: +SKIP
>>> print(run("table3").format())          # doctest: +SKIP

Or from the command line::

    python -m repro.experiments list
    python -m repro.experiments figure17
    python -m repro.experiments all --full
"""

from .registry import Experiment, get, list_experiments, run
from .reporting import ArtifactGroup, SeriesSet, Table
from .runners import CellError, MeanResults, metric_series, replicate, sweep

__all__ = [
    "run",
    "get",
    "list_experiments",
    "Experiment",
    "Table",
    "SeriesSet",
    "ArtifactGroup",
    "replicate",
    "sweep",
    "metric_series",
    "MeanResults",
    "CellError",
]
