"""Shared utilities for experiment runners: sweeps, repetitions, means.

The paper runs every cell of a design r times and reports means within
90 % confidence intervals; :func:`replicate` does the same, reusing the
simulator with distinct replication substreams so repetitions are
independent but comparisons across factor levels share random numbers
(common random numbers, the variance-reduction the factorial design
relies on).
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field, fields
from statistics import mean
from typing import Callable, Dict, List, Sequence

from ..rocc.aggregate import simulate_aggregated
from ..rocc.config import SimulationConfig
from ..rocc.metrics import SimulationResults
from ..rocc.system import simulate

__all__ = ["CellError", "MeanResults", "replicate", "metric_series", "sweep"]

#: SimulationResults fields averaged by :func:`replicate`.
_NUMERIC_FIELDS = [
    "pd_cpu_time_per_node",
    "main_cpu_time",
    "pvmd_cpu_time_per_node",
    "other_cpu_time_per_node",
    "app_cpu_time_per_node",
    "node0_pd_cpu_time",
    "node0_app_cpu_time",
    "pd_cpu_utilization_per_node",
    "app_cpu_utilization_per_node",
    "main_cpu_utilization",
    "is_cpu_utilization_per_node",
    "network_utilization",
    "pd_network_utilization",
    "monitoring_latency_forwarding",
    "monitoring_latency_total",
    "throughput_per_daemon",
    "received_throughput",
    "forward_calls_per_node",
    "pipe_blocked_time",
    "barrier_wait_time",
    "daemon_downtime",
    "recovery_latency",
]


@dataclass
class CellError:
    """A failed replication, preserved as an artifact of the sweep.

    With ``isolate=True`` a crashing cell no longer aborts the whole
    experiment: the error (message + formatted traceback) rides along in
    :attr:`MeanResults.errors` and the sweep completes with whatever
    replications succeeded.
    """

    config_summary: str
    error: str
    traceback: str

    @classmethod
    def from_exception(cls, config: SimulationConfig, exc: BaseException) -> "CellError":
        summary = (
            f"{config.architecture.value} n={config.nodes} "
            f"b={config.batch_size} rep={config.replication}"
        )
        return cls(
            config_summary=summary,
            error=f"{type(exc).__name__}: {exc}",
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )


@dataclass
class MeanResults:
    """Replication means of a run, plus the raw per-rep results."""

    results: List[SimulationResults]
    #: Replications that crashed (only populated under ``isolate=True``).
    errors: List[CellError] = field(default_factory=list)

    def __getattr__(self, name: str):
        # Average numeric metrics; fall back to the first repetition for
        # everything else (config_summary, counters).  Unknown names must
        # raise AttributeError — never IndexError or recursion — so that
        # hasattr(), copy, and pickling behave.
        if name.startswith("_") or name in ("results", "errors"):
            # Dunder/protocol probes (__getstate__, __deepcopy__, ...)
            # and dataclass fields that genuinely are missing must not
            # be forwarded to the repetition results.
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        reps = object.__getattribute__(self, "results")
        if name in _NUMERIC_FIELDS:
            vals = [getattr(r, name) for r in reps]
            vals = [v for v in vals if v == v]  # drop NaN
            return mean(vals) if vals else float("nan")
        if not reps:
            raise AttributeError(
                f"{type(self).__name__!r} has no successful repetitions to "
                f"read {name!r} from (all replications failed?)"
            )
        try:
            return getattr(reps[0], name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None

    def raw(self, name: str) -> List[float]:
        """Per-repetition values of one metric."""
        return [getattr(r, name) for r in self.results]

    # Derived conveniences mirroring SimulationResults.
    @property
    def pd_cpu_seconds_per_node(self) -> float:
        return self.pd_cpu_time_per_node / 1e6

    @property
    def main_cpu_seconds(self) -> float:
        return self.main_cpu_time / 1e6

    @property
    def is_cpu_seconds_per_node(self) -> float:
        return (self.pd_cpu_time_per_node + self.main_cpu_time / self.nodes) / 1e6

    @property
    def monitoring_latency_forwarding_ms(self) -> float:
        return self.monitoring_latency_forwarding / 1e3

    @property
    def monitoring_latency_total_ms(self) -> float:
        return self.monitoring_latency_total / 1e3


def replicate(
    config: SimulationConfig,
    repetitions: int = 3,
    aggregated: bool = False,
    isolate: bool = False,
) -> MeanResults:
    """Run *repetitions* independent replications of *config*.

    With ``isolate=True`` a crashing replication (including a
    watchdog-aborted one) is captured as a :class:`CellError` instead of
    propagating, so long factorial sweeps survive one bad cell.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    runner: Callable[[SimulationConfig], SimulationResults] = (
        simulate_aggregated if aggregated else simulate
    )
    results: List[SimulationResults] = []
    errors: List[CellError] = []
    for i in range(repetitions):
        rep_config = config.with_(replication=config.replication + i)
        if not isolate:
            results.append(runner(rep_config))
            continue
        try:
            results.append(runner(rep_config))
        except Exception as exc:
            errors.append(CellError.from_exception(rep_config, exc))
    return MeanResults(results, errors)


def sweep(
    base: SimulationConfig,
    parameter: str,
    values: Sequence,
    repetitions: int = 3,
    aggregated: bool = False,
    isolate: bool = False,
    **extra,
) -> List[MeanResults]:
    """Replicate *base* once per value of *parameter*.

    Under ``isolate=True`` every cell completes (possibly with an empty
    ``results`` list and the failure recorded in ``errors``), so a sweep
    always returns one :class:`MeanResults` per requested value.
    """
    valid = {f.name for f in fields(SimulationConfig)}
    if parameter not in valid:
        raise ValueError(f"unknown config parameter {parameter!r}")
    cells: List[MeanResults] = []
    for v in values:
        if isolate:
            try:
                cell_config = base.with_(**{parameter: v}, **extra)
            except Exception as exc:
                bad = MeanResults([], [CellError.from_exception(base, exc)])
                cells.append(bad)
                continue
        else:
            cell_config = base.with_(**{parameter: v}, **extra)
        cells.append(
            replicate(
                cell_config,
                repetitions=repetitions,
                aggregated=aggregated,
                isolate=isolate,
            )
        )
    return cells


def metric_series(
    runs: Sequence[MeanResults], metric: str
) -> List[float]:
    """Extract one metric across a sweep."""
    return [getattr(r, metric) for r in runs]
