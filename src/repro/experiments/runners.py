"""Shared utilities for experiment runners: sweeps, repetitions, means.

The paper runs every cell of a design r times and reports means within
90 % confidence intervals; :func:`replicate` does the same, reusing the
simulator with distinct replication substreams so repetitions are
independent but comparisons across factor levels share random numbers
(common random numbers, the variance-reduction the factorial design
relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from statistics import mean
from typing import Callable, Dict, List, Sequence

from ..rocc.aggregate import simulate_aggregated
from ..rocc.config import SimulationConfig
from ..rocc.metrics import SimulationResults
from ..rocc.system import simulate

__all__ = ["MeanResults", "replicate", "metric_series", "sweep"]

#: SimulationResults fields averaged by :func:`replicate`.
_NUMERIC_FIELDS = [
    "pd_cpu_time_per_node",
    "main_cpu_time",
    "pvmd_cpu_time_per_node",
    "other_cpu_time_per_node",
    "app_cpu_time_per_node",
    "node0_pd_cpu_time",
    "node0_app_cpu_time",
    "pd_cpu_utilization_per_node",
    "app_cpu_utilization_per_node",
    "main_cpu_utilization",
    "is_cpu_utilization_per_node",
    "network_utilization",
    "pd_network_utilization",
    "monitoring_latency_forwarding",
    "monitoring_latency_total",
    "throughput_per_daemon",
    "received_throughput",
    "forward_calls_per_node",
    "pipe_blocked_time",
    "barrier_wait_time",
]


@dataclass
class MeanResults:
    """Replication means of a run, plus the raw per-rep results."""

    results: List[SimulationResults]

    def __getattr__(self, name: str):
        # Average numeric metrics; fall back to the first repetition for
        # everything else (config_summary, counters).
        reps = object.__getattribute__(self, "results")
        if name in _NUMERIC_FIELDS:
            vals = [getattr(r, name) for r in reps]
            vals = [v for v in vals if v == v]  # drop NaN
            return mean(vals) if vals else float("nan")
        return getattr(reps[0], name)

    def raw(self, name: str) -> List[float]:
        """Per-repetition values of one metric."""
        return [getattr(r, name) for r in self.results]

    # Derived conveniences mirroring SimulationResults.
    @property
    def pd_cpu_seconds_per_node(self) -> float:
        return self.pd_cpu_time_per_node / 1e6

    @property
    def main_cpu_seconds(self) -> float:
        return self.main_cpu_time / 1e6

    @property
    def is_cpu_seconds_per_node(self) -> float:
        return (self.pd_cpu_time_per_node + self.main_cpu_time / self.nodes) / 1e6

    @property
    def monitoring_latency_forwarding_ms(self) -> float:
        return self.monitoring_latency_forwarding / 1e3

    @property
    def monitoring_latency_total_ms(self) -> float:
        return self.monitoring_latency_total / 1e3


def replicate(
    config: SimulationConfig,
    repetitions: int = 3,
    aggregated: bool = False,
) -> MeanResults:
    """Run *repetitions* independent replications of *config*."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    runner: Callable[[SimulationConfig], SimulationResults] = (
        simulate_aggregated if aggregated else simulate
    )
    results = [
        runner(config.with_(replication=config.replication + i))
        for i in range(repetitions)
    ]
    return MeanResults(results)


def sweep(
    base: SimulationConfig,
    parameter: str,
    values: Sequence,
    repetitions: int = 3,
    aggregated: bool = False,
    **extra,
) -> List[MeanResults]:
    """Replicate *base* once per value of *parameter*."""
    valid = {f.name for f in fields(SimulationConfig)}
    if parameter not in valid:
        raise ValueError(f"unknown config parameter {parameter!r}")
    return [
        replicate(
            base.with_(**{parameter: v}, **extra),
            repetitions=repetitions,
            aggregated=aggregated,
        )
        for v in values
    ]


def metric_series(
    runs: Sequence[MeanResults], metric: str
) -> List[float]:
    """Extract one metric across a sweep."""
    return [getattr(r, metric) for r in runs]
