"""Shared utilities for experiment runners: sweeps, repetitions, means.

The paper runs every cell of a design r times and reports means within
90 % confidence intervals; :func:`replicate` does the same, reusing the
simulator with distinct replication substreams so repetitions are
independent but comparisons across factor levels share random numbers
(common random numbers, the variance-reduction the factorial design
relies on).

All cells are submitted through the ambient
:class:`~repro.experiments.engine.ExperimentEngine` (see
:func:`~repro.experiments.engine.use_engine`): :func:`sweep` and
:func:`run_design` flatten every ``(value, replication)`` pair into one
batch so a multi-worker engine can overlap all of them, and finished
cells are memoized in the engine's content-addressed cache.

When the ambient engine is a
:class:`~repro.experiments.resilience.ResilientEngine`, the same batch
additionally gets per-cell deadlines, transparent retries of transient
failures, and journal checkpointing — no runner changes needed.  Under
``strict=False`` a cell that exhausts its attempts arrives here as a
:class:`CellError` artifact (exactly like ``isolate=True``), so sweeps
return partial :class:`MeanResults` — the numeric means skip the lost
replications and the failures ride along in ``errors`` — and the
engine's ``failure_report`` carries the structured account.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from statistics import mean
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..expdesign.factorial import FactorialDesign
from ..rocc.config import SimulationConfig
from ..rocc.metrics import SimulationResults
from .engine import CellError, ExperimentEngine, current_engine

__all__ = [
    "CellError",
    "MeanResults",
    "replicate",
    "metric_series",
    "sweep",
    "run_design",
]

#: SimulationResults fields averaged by :func:`replicate`.
_NUMERIC_FIELDS = [
    "pd_cpu_time_per_node",
    "main_cpu_time",
    "pvmd_cpu_time_per_node",
    "other_cpu_time_per_node",
    "app_cpu_time_per_node",
    "node0_pd_cpu_time",
    "node0_app_cpu_time",
    "pd_cpu_utilization_per_node",
    "app_cpu_utilization_per_node",
    "main_cpu_utilization",
    "is_cpu_utilization_per_node",
    "network_utilization",
    "pd_network_utilization",
    "monitoring_latency_forwarding",
    "monitoring_latency_total",
    "throughput_per_daemon",
    "received_throughput",
    "forward_calls_per_node",
    "pipe_blocked_time",
    "barrier_wait_time",
    "daemon_downtime",
    "recovery_latency",
    "open_offered_rate",
    "open_active_users",
    "open_latency_mean",
]


@dataclass
class MeanResults:
    """Replication means of a run, plus the raw per-rep results.

    Results are immutable post-construction, so numeric means computed
    by ``__getattr__`` are memoized onto the instance: the first read of
    e.g. ``pd_cpu_time_per_node`` averages the replications, subsequent
    reads are plain attribute lookups (reporting code touches the same
    handful of metrics hundreds of times per artifact).
    """

    results: List[SimulationResults]
    #: Replications that crashed (only populated under ``isolate=True``).
    errors: List[CellError] = field(default_factory=list)

    def __getattr__(self, name: str):
        # Average numeric metrics; fall back to the first repetition for
        # everything else (config_summary, counters).  Unknown names must
        # raise AttributeError — never IndexError or recursion — so that
        # hasattr(), copy, and pickling behave.
        if name.startswith("_") or name in ("results", "errors"):
            # Dunder/protocol probes (__getstate__, __deepcopy__, ...)
            # and dataclass fields that genuinely are missing must not
            # be forwarded to the repetition results.
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        reps = object.__getattribute__(self, "results")
        if name in _NUMERIC_FIELDS:
            vals = [getattr(r, name) for r in reps]
            vals = [v for v in vals if v == v]  # drop NaN
            value = mean(vals) if vals else float("nan")
            # Memoize: results never change after construction, so the
            # instance attribute shadows __getattr__ from now on.
            object.__setattr__(self, name, value)
            return value
        if not reps:
            raise AttributeError(
                f"{type(self).__name__!r} has no successful repetitions to "
                f"read {name!r} from (all replications failed?)"
            )
        try:
            return getattr(reps[0], name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None

    def raw(self, name: str) -> List[float]:
        """Per-repetition values of one metric."""
        return [getattr(r, name) for r in self.results]

    def mean_ci(self, name: str, level: float = 0.90):
        """t-based CI of one metric over the successful replications.

        Failed replications (``errors``) never contribute — they hold no
        results — and non-finite per-rep values are excluded the same way
        the plain means drop NaN.  Fewer than two finite observations
        yield a *degenerate* interval (infinite half-width) rather than
        an error — a CI from one point is uninformative, not zero-width.
        """
        from ..expdesign.confidence import mean_confidence_interval

        return mean_confidence_interval(self.raw(name), level=level)

    # Derived conveniences mirroring SimulationResults.
    @property
    def pd_cpu_seconds_per_node(self) -> float:
        return self.pd_cpu_time_per_node / 1e6

    @property
    def main_cpu_seconds(self) -> float:
        return self.main_cpu_time / 1e6

    @property
    def is_cpu_seconds_per_node(self) -> float:
        return (self.pd_cpu_time_per_node + self.main_cpu_time / self.nodes) / 1e6

    @property
    def monitoring_latency_forwarding_ms(self) -> float:
        return self.monitoring_latency_forwarding / 1e3

    @property
    def monitoring_latency_total_ms(self) -> float:
        return self.monitoring_latency_total / 1e3


def _rep_configs(config: SimulationConfig, repetitions: int) -> List[SimulationConfig]:
    return [
        config.with_(replication=config.replication + i)
        for i in range(repetitions)
    ]


def _gather(outcomes: Sequence) -> MeanResults:
    results = [o for o in outcomes if isinstance(o, SimulationResults)]
    errors = [o for o in outcomes if isinstance(o, CellError)]
    return MeanResults(results, errors)


def replicate(
    config: SimulationConfig,
    repetitions: int = 3,
    aggregated: bool = False,
    isolate: bool = False,
    engine: Optional[ExperimentEngine] = None,
) -> MeanResults:
    """Run *repetitions* independent replications of *config*.

    With ``isolate=True`` a crashing replication (including a
    watchdog-aborted one) is captured as a :class:`CellError` instead of
    propagating, so long factorial sweeps survive one bad cell.  Cells
    go through *engine* (default: the ambient engine), which may run
    them in parallel and serve repeats from its cell cache.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    engine = engine or current_engine()
    outcomes = engine.run_cells(
        _rep_configs(config, repetitions), aggregated=aggregated, isolate=isolate
    )
    return _gather(outcomes)


def _run_grouped(
    engine: ExperimentEngine,
    groups: Mapping[int, List[SimulationConfig]],
    n_groups: int,
    aggregated: bool,
    isolate: bool,
    pre_failed: Optional[Dict[int, MeanResults]] = None,
) -> List[MeanResults]:
    """Run several cell groups as one flat engine batch, then regroup."""
    order: List[int] = []
    flat: List[SimulationConfig] = []
    for gi, configs in groups.items():
        order.extend([gi] * len(configs))
        flat.extend(configs)
    outcomes = engine.run_cells(flat, aggregated=aggregated, isolate=isolate)
    per_group: Dict[int, List] = {gi: [] for gi in groups}
    for gi, outcome in zip(order, outcomes):
        per_group[gi].append(outcome)
    cells: List[MeanResults] = []
    for gi in range(n_groups):
        if pre_failed and gi in pre_failed:
            cells.append(pre_failed[gi])
        else:
            cells.append(_gather(per_group[gi]))
    return cells


def sweep(
    base: SimulationConfig,
    parameter: str,
    values: Sequence,
    repetitions: int = 3,
    aggregated: bool = False,
    isolate: bool = False,
    engine: Optional[ExperimentEngine] = None,
    **extra,
) -> List[MeanResults]:
    """Replicate *base* once per value of *parameter*.

    Every ``(value, replication)`` cell of the sweep is submitted to the
    engine as one batch, so a multi-worker engine overlaps the whole
    sweep.  Under ``isolate=True`` every cell completes (possibly with
    an empty ``results`` list and the failure recorded in ``errors``),
    so a sweep always returns one :class:`MeanResults` per value.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    valid = {f.name for f in fields(SimulationConfig)}
    if parameter not in valid:
        raise ValueError(f"unknown config parameter {parameter!r}")
    unknown = sorted(set(extra) - valid)
    if unknown:
        raise ValueError(
            f"unknown config parameter(s) in extras: {', '.join(map(repr, unknown))}"
        )
    engine = engine or current_engine()
    groups: Dict[int, List[SimulationConfig]] = {}
    pre_failed: Dict[int, MeanResults] = {}
    for vi, v in enumerate(values):
        try:
            cell_config = base.with_(**{parameter: v}, **extra)
        except Exception as exc:
            if not isolate:
                raise
            pre_failed[vi] = MeanResults([], [CellError.from_exception(base, exc)])
            continue
        groups[vi] = _rep_configs(cell_config, repetitions)
    return _run_grouped(
        engine, groups, len(values), aggregated, isolate, pre_failed
    )


def run_design(
    design: FactorialDesign,
    make_config: Callable[[Dict[str, Any]], SimulationConfig],
    repetitions: int = 3,
    aggregated: bool = False,
    isolate: bool = False,
    engine: Optional[ExperimentEngine] = None,
) -> List[MeanResults]:
    """Run a full 2^k·r factorial design through the engine.

    *make_config* maps one run's ``{factor name: value}`` dict to a
    :class:`SimulationConfig`.  All ``2^k × repetitions`` cells are
    submitted as a single batch (maximal overlap on a parallel engine);
    the returned list holds one :class:`MeanResults` per run, in the
    design's standard (Yates) order.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    engine = engine or current_engine()
    groups: Dict[int, List[SimulationConfig]] = {}
    pre_failed: Dict[int, MeanResults] = {}
    base_configs = design.configs(make_config)
    for ri, cfg in enumerate(base_configs):
        if isolate:
            try:
                groups[ri] = _rep_configs(cfg, repetitions)
            except Exception as exc:
                pre_failed[ri] = MeanResults([], [CellError.from_exception(cfg, exc)])
        else:
            groups[ri] = _rep_configs(cfg, repetitions)
    return _run_grouped(
        engine, groups, len(base_configs), aggregated, isolate, pre_failed
    )


def metric_series(
    runs: Sequence[MeanResults], metric: str
) -> List[float]:
    """Extract one metric across a sweep."""
    return [getattr(r, metric) for r in runs]
