"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table4
    python -m repro.experiments figure17 figure18
    python -m repro.experiments all            # everything, quick mode
    python -m repro.experiments all --full     # paper-scale (slow)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .registry import get, list_experiments


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce tables/figures from the Paradyn IS paper",
    )
    parser.add_argument(
        "ids",
        nargs="+",
        help="experiment ids (e.g. table4 figure17), 'list', or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale instead of quick mode",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also save each artifact as <DIR>/<id>.json (+ .txt)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run simulation cells on N worker processes "
        "(default: $REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--lp-workers",
        default=None,
        metavar="K",
        help="partition each eligible simulation cell across K parallel "
        "LP worker processes, or 'auto' to partition only big cells on "
        "multi-core machines; multiplies with --workers "
        "(default: $REPRO_DES_PARALLEL, else sequential)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed cell cache",
    )
    parser.add_argument(
        "--workload",
        metavar="NAME[:k=v,...]",
        default=None,
        help="open-workload traffic spec passed to experiments that "
        "accept one (e.g. open_workload; 'stationary:rate=200', "
        "'open:avg_users=100,rpm=60')",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="run planned experiments (planned_now, ...) under the "
        "hybrid analytic-simulation planner; also enables forwarding "
        "--ci-target/--budget to them",
    )
    parser.add_argument(
        "--ci-target",
        type=float,
        default=None,
        metavar="FRACTION",
        help="adaptive-replication precision target: relative 90%% CI "
        "half-width per cell (planner default: 0.35)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="cap on total simulated cell-replications for a planned "
        "design (default: the fixed-r baseline count)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock deadline: a cell exceeding it is "
        "aborted (in-worker watchdog, plus a parent-side guard for "
        "hung workers) and retried per --max-retries",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per cell for transient failures (worker death, "
        "stalls, deadline breaches); 0 disables retrying (default: 2)",
    )
    parser.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help="record every cell attempt/success/failure to this JSONL "
        "run journal and, when it already exists, serve completed "
        "cells from it instead of re-simulating them",
    )
    parser.add_argument(
        "--strict",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="with --no-strict, cells that exhaust their retries are "
        "reported in a failure report and the run continues with "
        "partial results instead of aborting",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulation kernel in every executed cell and "
        "print the merged profile (implies --no-cache so cells run)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record spans of every executed cell and write a trace to "
        "PATH (.jsonl for JSONL, otherwise Chrome trace_event JSON "
        "loadable in Perfetto; implies --no-cache so cells run; "
        "default: $REPRO_TRACE)",
    )
    args = parser.parse_args(argv)

    if args.ids == ["list"]:
        for e in list_experiments():
            print(f"{e.id:10s} {e.title}")
        return 0

    ids = args.ids
    if ids == ["all"]:
        ids = [e.id for e in list_experiments()]

    from .engine import CellCache, use_engine
    from .resilience import ResilientEngine, RetryPolicy

    if args.profile:
        import os

        os.environ["REPRO_PROFILE"] = "1"

    from ..obs import (
        export_trace,
        registry,
        summarize,
        trace_path_from_env,
        use_tracing,
    )
    from contextlib import ExitStack

    trace_out = args.trace_out or trace_path_from_env()

    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    lp_workers = args.lp_workers
    if lp_workers is not None and lp_workers != "auto":
        try:
            lp_workers = int(lp_workers)
        except ValueError:
            parser.error("--lp-workers must be an integer or 'auto'")
        if lp_workers < 1:
            parser.error(f"--lp-workers must be >= 1, got {lp_workers}")
    if args.ci_target is not None and args.ci_target <= 0:
        parser.error("--ci-target must be positive")
    if args.budget is not None and args.budget < 1:
        parser.error("--budget must be >= 1")
    plan = None
    if args.plan or args.ci_target is not None or args.budget is not None:
        from ..planner import PlannerConfig, ReplicationPolicy

        replication = ReplicationPolicy()
        if args.ci_target is not None:
            replication = ReplicationPolicy(ci_target=args.ci_target)
        plan = PlannerConfig(replication=replication, budget=args.budget)
        # --plan routes the classic factorial ids to their planned
        # variants; the planned_* ids also take the flags directly.
        planned_alias = {
            "table4": "planned_now",
            "table5": "planned_smp",
            "table6": "planned_mpp",
            "figure30": "planned_validation",
        }
        if args.plan:
            ids = [planned_alias.get(i, i) for i in ids]
    workload = None
    if args.workload is not None:
        from ..workload.generators import TrafficSpec

        try:
            workload = TrafficSpec.parse(args.workload)
            workload.validate()
        except ValueError as exc:
            parser.error(str(exc))
    engine = ResilientEngine(
        workers=args.workers,
        lp_workers=lp_workers,
        cache=(
            CellCache(enabled=False)
            if (args.no_cache or args.profile or trace_out)
            else None
        ),
        retry=RetryPolicy(max_attempts=args.max_retries + 1),
        cell_timeout=args.cell_timeout,
        journal=args.resume,
        strict=args.strict,
    )
    status = 0
    with ExitStack() as stack:
        stack.enter_context(engine)
        stack.enter_context(use_engine(engine))
        tracer = (
            stack.enter_context(use_tracing()) if trace_out else None
        )
        for id_ in ids:
            try:
                experiment = get(id_)
            except KeyError as exc:
                print(exc, file=sys.stderr)
                status = 2
                continue
            extra = {}
            if workload is not None and experiment.accepts("workload"):
                extra["workload"] = workload
            if plan is not None and experiment.accepts("plan"):
                extra["plan"] = plan
            t0 = time.time()
            if tracer is not None:
                with tracer.span(id_, cat="experiment"):
                    artifact = experiment.run(quick=not args.full, **extra)
            else:
                artifact = experiment.run(quick=not args.full, **extra)
            elapsed = time.time() - t0
            print(artifact.format())
            if args.out:
                from pathlib import Path

                from .reporting import save_artifact

                path = save_artifact(artifact, Path(args.out) / f"{id_}.json")
                print(f"[saved to {path}]")
            print(f"\n[{id_} completed in {elapsed:.1f}s]\n")
        print(f"[engine: {engine.stats.summary()}]", file=sys.stderr)
        if engine.failure_report:
            print(engine.failure_report.format(), file=sys.stderr)
            status = status or 1
        if args.profile and engine.stats.profile is not None:
            from ..des.profiling import format_profile

            print(format_profile(engine.stats.profile), file=sys.stderr)
        if tracer is not None:
            path = export_trace(tracer, trace_out, registry())
            print(summarize(tracer, registry()), file=sys.stderr)
            print(f"[trace written to {path}]", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
