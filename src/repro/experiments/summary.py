"""The reproduction scorecard: claims × status, from the manifest.

``python -m repro.experiments summary`` prints which of the paper's
claims reproduce, with the experiment ids that regenerate the evidence
— the quickest way to audit the state of the reproduction without
running any simulation.
"""

from __future__ import annotations

from ..paper import CLAIMS, PAPER, Status
from .registry import register
from .reporting import ArtifactGroup, Table

__all__ = ["summary"]


@register(
    "summary",
    "Reproduction scorecard — every paper claim and its status",
    "whole paper",
)
def summary(quick: bool = True) -> ArtifactGroup:
    """Tabulate the claim manifest (no simulation involved)."""
    group = ArtifactGroup(
        title=(
            f"Reproduction scorecard: {PAPER['title']} "
            f"({PAPER['venue']} {PAPER['year']})"
        )
    )
    table = Table(
        title="claims",
        headers=["claim", "source", "status", "experiments", "note"],
    )
    for claim in CLAIMS:
        table.add_row(
            claim.id,
            claim.source,
            claim.status.value,
            " ".join(claim.experiments),
            claim.note or "-",
        )
    group.add(table)

    counts = Table(title="status counts", headers=["status", "claims"])
    for status in Status:
        n = sum(1 for c in CLAIMS if c.status is status)
        counts.add_row(status.value, n)
    counts.add_row("total", len(CLAIMS))
    group.add(counts)
    group.notes.append(
        "run any experiment id above with `python -m repro.experiments <id>`"
    )
    return group
