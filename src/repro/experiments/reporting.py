"""Textual rendering of reproduced tables and figures.

Every experiment runner returns an :class:`Artifact` — a
:class:`Table` (rows/columns, like the paper's Tables 1–8) or a
:class:`SeriesSet` (named curves over a shared x-axis, like the
figures) — that renders to aligned plain text.  Keeping artifacts as
data (not strings) lets tests assert on the numbers directly, and every
artifact also serializes to JSON (:func:`artifact_to_dict`,
:func:`save_artifact`) so external plotting tools can regenerate the
figures graphically.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = [
    "Table",
    "SeriesSet",
    "Artifact",
    "ArtifactGroup",
    "fmt_value",
    "artifact_to_dict",
    "save_artifact",
    "engine_stats_note",
    "engine_stats_table",
    "failure_report_note",
    "failure_report_table",
]


def fmt_value(v: Any, digits: int = 4) -> str:
    """Human formatting: floats get significant digits, rest str()."""
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return str(v)
    if isinstance(v, int):
        return str(v)
    if v != v:  # NaN
        return "-"
    if v == 0:
        return "0"
    if math.isinf(v):
        return "inf" if v > 0 else "-inf"
    magnitude = abs(v)
    if 1e-3 <= magnitude < 1e6:
        return f"{v:.{digits}g}"
    return f"{v:.{digits - 1}e}"


@dataclass
class Table:
    """A titled table with headers and typed rows."""

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        """All values in the named column."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(name) from None
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        cells = [[fmt_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class SeriesSet:
    """Named y-series over a common x-axis (one paper figure panel)."""

    title: str
    x_label: str
    y_label: str
    x: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        values = list(values)
        if len(values) != len(self.x):
            raise ValueError(
                f"series {name!r} has {len(values)} points, x has {len(self.x)}"
            )
        self.series[name] = values

    def format(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        names = list(self.series)
        widths = [max(len(self.x_label), 10)] + [max(len(n), 10) for n in names]
        header = [self.x_label.ljust(widths[0])] + [
            n.ljust(w) for n, w in zip(names, widths[1:])
        ]
        lines.append(f"[y: {self.y_label}]")
        lines.append("  ".join(header))
        lines.append("  ".join("-" * w for w in widths))
        for i, xv in enumerate(self.x):
            row = [fmt_value(xv).rjust(widths[0])] + [
                fmt_value(self.series[n][i]).rjust(w)
                for n, w in zip(names, widths[1:])
            ]
            lines.append("  ".join(row))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class ArtifactGroup:
    """A multi-panel artifact (one paper figure with several plots)."""

    title: str
    parts: List[Union[Table, SeriesSet, "ArtifactGroup"]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, part: Union[Table, SeriesSet, "ArtifactGroup"]) -> None:
        self.parts.append(part)

    def find(self, title_fragment: str) -> Union[Table, SeriesSet, "ArtifactGroup"]:
        """First part whose title contains *title_fragment*."""
        for p in self.parts:
            if title_fragment in p.title:
                return p
        raise KeyError(title_fragment)

    def format(self) -> str:
        bar = "#" * max(8, len(self.title) + 4)
        lines = [bar, f"# {self.title}", bar, ""]
        for p in self.parts:
            lines.append(p.format())
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


Artifact = Union[Table, SeriesSet, ArtifactGroup]


def engine_stats_note(stats) -> str:
    """One-line provenance note for an artifact's ``notes`` list.

    *stats* is an :class:`~repro.experiments.engine.EngineStats` (or the
    delta of one run); duck-typed so reporting stays import-light.
    """
    return f"engine: {stats.summary()}"


def engine_stats_table(stats) -> Table:
    """Render an :class:`~repro.experiments.engine.EngineStats` as a
    :class:`Table` (cells run vs cached, wall/CPU time, utilization)."""
    table = Table(
        title="Experiment engine activity",
        headers=["counter", "value"],
    )
    util = stats.worker_utilization
    table.add_row("workers", stats.workers)
    table.add_row("cells submitted", stats.cells_submitted)
    table.add_row("cells run", stats.cells_run)
    table.add_row("cache hits", stats.cache_hits)
    table.add_row("cell errors", stats.cell_errors)
    if stats.cells_pruned or stats.replications_saved:
        table.add_row("cells pruned (planner)", stats.cells_pruned)
        table.add_row("replications saved (planner)",
                      stats.replications_saved)
    table.add_row("wall time (s)", stats.wall_time)
    table.add_row("cell CPU time (s)", stats.cell_cpu_time)
    table.add_row("worker utilization", util)
    return table


def failure_report_note(report) -> str:
    """One-line provenance note for a sweep that lost cells.

    *report* is a :class:`~repro.experiments.resilience.FailureReport`;
    duck-typed like :func:`engine_stats_note`.
    """
    return f"resilience: {report.summary()}"


def failure_report_table(report) -> Table:
    """Render a :class:`~repro.experiments.resilience.FailureReport` as
    a :class:`Table` (one row per lost cell), so partial sweeps ship a
    structured account of what is missing alongside their numbers."""
    table = Table(
        title="Failed cells (after retries)",
        headers=["cell", "attempts", "error"],
    )
    for f in report.failures:
        table.add_row(f.config_summary, f.attempts, f.error)
    table.notes.append(failure_report_note(report))
    return table


def _json_safe(v: Any) -> Any:
    if isinstance(v, float) and (v != v or math.isinf(v)):
        return None
    if hasattr(v, "value") and not isinstance(v, (int, float)):  # enums
        return getattr(v, "value")
    return v


def artifact_to_dict(artifact: Artifact) -> Dict[str, Any]:
    """Lossless JSON-safe representation of any artifact."""
    if isinstance(artifact, Table):
        return {
            "type": "table",
            "title": artifact.title,
            "headers": list(artifact.headers),
            "rows": [[_json_safe(v) for v in row] for row in artifact.rows],
            "notes": list(artifact.notes),
        }
    if isinstance(artifact, SeriesSet):
        return {
            "type": "series",
            "title": artifact.title,
            "x_label": artifact.x_label,
            "y_label": artifact.y_label,
            "x": [_json_safe(v) for v in artifact.x],
            "series": {
                name: [_json_safe(v) for v in values]
                for name, values in artifact.series.items()
            },
            "notes": list(artifact.notes),
        }
    if isinstance(artifact, ArtifactGroup):
        return {
            "type": "group",
            "title": artifact.title,
            "parts": [artifact_to_dict(p) for p in artifact.parts],
            "notes": list(artifact.notes),
        }
    raise TypeError(f"not an artifact: {artifact!r}")


def save_artifact(artifact: Artifact, path: Union[str, Path]) -> Path:
    """Write an artifact as JSON (plus a .txt rendering alongside)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact_to_dict(artifact), indent=2))
    path.with_suffix(".txt").write_text(artifact.format() + "\n")
    return path
