"""Registry mapping paper artifacts (table/figure ids) to runners.

Each evaluation artifact of the paper is reproduced by a registered
runner keyed by its id (``table1`` ... ``figure31``).  Runners accept a
``quick`` flag: ``quick=True`` (the default, used by tests and the
benchmark suite) uses shortened simulated durations and fewer
repetitions; ``quick=False`` runs at paper scale.

Usage::

    from repro.experiments import run, list_experiments

    artifact = run("figure17")
    print(artifact.format())
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .engine import ExperimentEngine, current_engine, use_engine
from .reporting import Artifact, engine_stats_note

__all__ = ["Experiment", "register", "get", "run", "list_experiments", "REGISTRY"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    id: str
    title: str
    paper_ref: str
    runner: Callable[..., Artifact]
    description: str = ""

    def accepts(self, name: str) -> bool:
        """Whether the runner takes keyword argument *name*."""
        try:
            sig = inspect.signature(self.runner)
        except (TypeError, ValueError):  # builtins / C callables
            return True
        params = sig.parameters.values()
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
            return True
        return any(
            p.name == name
            and p.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
            for p in params
        )

    def _check_kwargs(self, kwargs: Dict) -> None:
        """Fail fast on kwargs the runner does not take.

        Without this, an unknown keyword surfaces as a bare
        ``TypeError`` from deep inside the runner (often only after
        cells already simulated); here it names the experiment and its
        actual signature instead.
        """
        unknown = [k for k in kwargs if not self.accepts(k)]
        if unknown:
            try:
                sig = str(inspect.signature(self.runner))
            except (TypeError, ValueError):  # pragma: no cover
                sig = "(...)"
            raise TypeError(
                f"experiment {self.id!r} got unexpected keyword argument(s) "
                f"{', '.join(sorted(unknown))}; its runner signature is "
                f"{self.runner.__name__}{sig}"
            )

    def run(
        self,
        quick: Optional[bool] = None,
        engine: Optional[ExperimentEngine] = None,
        workers: Optional[int] = None,
        **kwargs,
    ) -> Artifact:
        """Run the experiment, scheduling its cells on an engine.

        *engine* (or a fresh ``ExperimentEngine(workers=workers)`` when
        only *workers* is given) becomes ambient for the runner, so
        every ``replicate``/``sweep``/``run_design`` inside fans out
        through it; the engine-activity delta for this run is appended
        to the artifact's notes.
        """
        self._check_kwargs(kwargs)
        if quick is None:
            quick = os.environ.get("REPRO_FULL", "") != "1"
        if engine is None:
            engine = (
                ExperimentEngine(workers=workers)
                if workers is not None else current_engine()
            )
        before = engine.stats.copy()
        with use_engine(engine):
            artifact = self.runner(quick=quick, **kwargs)
        delta = engine.stats.since(before)
        if delta.cells_submitted and hasattr(artifact, "notes"):
            artifact.notes.append(engine_stats_note(delta))
        return artifact


REGISTRY: Dict[str, Experiment] = {}


def register(
    id: str, title: str, paper_ref: str, description: str = ""
) -> Callable[[Callable[..., Artifact]], Callable[..., Artifact]]:
    """Decorator registering a runner under a paper-artifact id."""

    def decorator(fn: Callable[..., Artifact]) -> Callable[..., Artifact]:
        if id in REGISTRY:
            raise ValueError(f"experiment {id!r} already registered")
        REGISTRY[id] = Experiment(
            id=id, title=title, paper_ref=paper_ref, runner=fn,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
        )
        return fn

    return decorator


def _ensure_loaded() -> None:
    """Import all experiment modules so their registrations run."""
    from . import (  # noqa: F401
        analytical_exp,
        crossval,
        extras,
        mpp_exp,
        now_exp,
        open_workload_exp,
        planned_exp,
        smp_exp,
        summary,
        validation,
        workload_exp,
    )


def get(id: str) -> Experiment:
    """Look up an experiment by id."""
    _ensure_loaded()
    try:
        return REGISTRY[id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {id!r}; available: {sorted(REGISTRY)}"
        ) from None


def run(id: str, quick: Optional[bool] = None, **kwargs) -> Artifact:
    """Run the experiment reproducing paper artifact *id*."""
    return get(id).run(quick=quick, **kwargs)


def list_experiments() -> List[Experiment]:
    """All registered experiments, sorted by id."""
    _ensure_loaded()
    return [REGISTRY[k] for k in sorted(REGISTRY)]
