"""Planned (hybrid analytic–simulation) variants of the factorial runs.

``planned_now`` / ``planned_smp`` / ``planned_mpp`` /
``planned_validation`` run the same designs as ``table4`` / ``table5``
/ ``table6`` / ``figure30``, but through :func:`repro.planner.
run_planned`: analytic screening prunes trusted cells, adaptive
replication spends the budget where variance demands it, and pruned
cells appear as explicitly-tagged surrogates.  Simulated cells are
bit-identical to the classic runners' (same configs, seeds and
replication numbering), which ``repro.verify``'s ``planner``
differential check asserts.

Each runner accepts a ``plan`` keyword (a
:class:`~repro.planner.PlannerConfig`); the experiments CLI builds it
from ``--plan`` / ``--ci-target`` / ``--budget``.
"""

from __future__ import annotations

from typing import Optional

from ..planner import PlannedDesign, PlannerConfig, run_planned
from .registry import register
from .reporting import ArtifactGroup, Table
from .specs import DesignSpec

__all__ = [
    "run_planned_spec",
    "planned_now",
    "planned_smp",
    "planned_mpp",
    "planned_validation",
]


def run_planned_spec(
    spec: DesignSpec, plan: Optional[PlannerConfig] = None
) -> PlannedDesign:
    """Execute one :class:`DesignSpec` under the planner."""
    return run_planned(
        spec.design,
        spec.make,
        repetitions=spec.repetitions,
        planner=plan if plan is not None else PlannerConfig(),
    )


def _decision_table(planned: PlannedDesign) -> Table:
    table = Table(
        title="Planner decisions (analytic screening)",
        headers=["run", "cell", "decision", "max_util", "reason"],
    )
    for d in planned.screening.decisions:
        table.add_row(
            d.index,
            d.label,
            "simulate" if d.simulate else "prune",
            d.prediction.max_utilization if d.prediction.applicable
            else float("nan"),
            d.reason,
        )
    return table


def _results_table(planned: PlannedDesign, spec: DesignSpec) -> Table:
    factor_names = [f.name for f in spec.design.factors]
    table = Table(
        title="Planned results (simulated cells + tagged surrogates)",
        headers=["run", *factor_names, *spec.metrics, "source"],
        notes=[
            "surrogate rows are analytic predictions (plus neighbor "
            "correction where available), NOT simulation output",
        ],
    )
    runs = list(spec.design.runs())
    for cell in planned.cells:
        run = runs[cell.index]
        values = [
            getattr(cell.value, m, float("nan")) for m in spec.metrics
        ]
        table.add_row(
            cell.index,
            *[run[name] for name in factor_names],
            *values,
            cell.tag,
        )
    return table


def _planned_artifact(
    spec: DesignSpec, plan: Optional[PlannerConfig], title: str
) -> ArtifactGroup:
    planned = run_planned_spec(spec, plan)
    group = ArtifactGroup(title=title)
    group.add(_decision_table(planned))
    group.add(_results_table(planned, spec))
    group.notes.append(f"planner: {planned.summary()}")
    return group


@register(
    "planned_now",
    "Planned NOW factorial — analytic screening + adaptive replication",
    "Table 4 (planned)",
)
def planned_now(
    quick: bool = True, plan: Optional[PlannerConfig] = None
) -> ArtifactGroup:
    """Hybrid planned run of the NOW 2^4 design (cf. ``table4``)."""
    from . import now_exp

    return _planned_artifact(
        now_exp.design_spec(quick), plan,
        "Planned NOW factorial (hybrid analytic-simulation)",
    )


@register(
    "planned_smp",
    "Planned SMP factorial — analytic screening + adaptive replication",
    "Table 5 (planned)",
)
def planned_smp(
    quick: bool = True, plan: Optional[PlannerConfig] = None
) -> ArtifactGroup:
    """Hybrid planned run of the SMP 2^4 design (cf. ``table5``)."""
    from . import smp_exp

    return _planned_artifact(
        smp_exp.design_spec(quick), plan,
        "Planned SMP factorial (hybrid analytic-simulation)",
    )


@register(
    "planned_mpp",
    "Planned MPP factorial — analytic screening + adaptive replication",
    "Table 6 (planned)",
)
def planned_mpp(
    quick: bool = True, plan: Optional[PlannerConfig] = None
) -> ArtifactGroup:
    """Hybrid planned run of the MPP 2^4 design (cf. ``table6``)."""
    from . import mpp_exp

    return _planned_artifact(
        mpp_exp.design_spec(quick), plan,
        "Planned MPP factorial (hybrid analytic-simulation)",
    )


@register(
    "planned_validation",
    "Planned testbed factorial — analytic screening + adaptive replication",
    "Figure 30 (planned)",
)
def planned_validation(
    quick: bool = True, plan: Optional[PlannerConfig] = None
) -> ArtifactGroup:
    """Hybrid planned run of the testbed 2^2 design (cf. ``figure30``)."""
    from . import validation

    return _planned_artifact(
        validation.design_spec(quick), plan,
        "Planned testbed factorial (hybrid analytic-simulation)",
    )
