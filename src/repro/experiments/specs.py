"""Design specifications shared by classic and planned runners.

The four factorial experiments (NOW, SMP, MPP, testbed validation) each
pair a :class:`~repro.expdesign.factorial.FactorialDesign` with a
config factory and a repetition count.  :class:`DesignSpec` bundles the
three so the classic fixed-r runners and the hybrid planner
(:mod:`repro.planner`) run the *same* cells — same configs, same seeds,
same replication numbering — and differ only in which cells they
simulate and how many replications they spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from ..expdesign.factorial import FactorialDesign
from ..rocc.config import SimulationConfig

__all__ = ["DesignSpec"]


@dataclass(frozen=True)
class DesignSpec:
    """One factorial experiment: design, config factory, repetitions."""

    name: str
    design: FactorialDesign
    make: Callable[[Dict[str, Any]], SimulationConfig]
    repetitions: int
    #: Metrics of record for the experiment's tables, in display order.
    metrics: Tuple[str, ...] = (
        "pd_cpu_time_per_node",
        "monitoring_latency_forwarding",
    )

    @property
    def baseline_replications(self) -> int:
        """Cell-replications of the fixed-r (unplanned) run."""
        return self.design.n_runs * self.repetitions
