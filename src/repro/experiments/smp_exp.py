"""Simulation experiments for the SMP system: Table 5, Figures 20–24.

§4.3: ``n`` CPUs behind one ready queue and a shared bus; as many
application processes as the experiment dictates; 1–4 Paradyn daemons
share the CPUs with the applications and the main Paradyn process.
"""

from __future__ import annotations

from functools import lru_cache
from statistics import mean
from typing import List, Tuple

from ..expdesign.effects import allocate_variation
from ..expdesign.factorial import Factor, FactorialDesign
from ..rocc.config import Architecture, SimulationConfig
from .registry import register
from .reporting import ArtifactGroup, SeriesSet, Table
from .runners import metric_series, replicate, run_design, sweep
from .specs import DesignSpec

__all__ = [
    "design_spec",
    "table5", "figure20", "figure21", "figure22", "figure23", "figure24",
]

_BF_BATCH = 32


def _smp_base(duration: float, **kw) -> SimulationConfig:
    return SimulationConfig(
        architecture=Architecture.SMP, duration=duration, **kw
    )


def _smp_design(quick: bool = False) -> FactorialDesign:
    # Quick mode lowers the BF batch level so batches complete within
    # the shortened duration (see now_exp._now_design).
    return FactorialDesign(
        [
            Factor("nodes", 5, 50, "A"),
            Factor("sampling_period", 1_000.0, 32_000.0, "B"),
            Factor("batch_size", 1, 32 if quick else 128, "C"),
            Factor("app_network_us", 200.0, 2_000.0, "D"),
        ]
    )


def design_spec(quick: bool = True) -> DesignSpec:
    """The SMP 2^4·r design as a :class:`DesignSpec` (planner seam)."""
    duration = 2_000_000.0 if quick else 10_000_000.0

    def make(run) -> SimulationConfig:
        n = int(run["nodes"])
        cfg = _smp_base(
            duration,
            nodes=n,
            app_processes_per_node=n,  # apps == CPUs (§4.3.1 caption)
            sampling_period=run["sampling_period"],
            batch_size=int(run["batch_size"]),
            seed=50,
        )
        return cfg.with_(
            workload=cfg.workload.with_network_demand(run["app_network_us"])
        )

    return DesignSpec(
        name="smp",
        design=_smp_design(quick),
        make=make,
        repetitions=2 if quick else 5,
    )


@lru_cache(maxsize=4)
def _smp_factorial(quick: bool) -> Tuple[FactorialDesign, tuple, tuple]:
    spec = design_spec(quick)
    design, make, reps = spec.design, spec.make, spec.repetitions

    cells = run_design(design, make, repetitions=reps)
    cpu_rows = [
        [
            (r.pd_cpu_time_per_node + r.main_cpu_time / r.nodes) / 1e6
            for r in cell.results
        ]
        for cell in cells
    ]
    lat_rows = [
        [r.monitoring_latency_forwarding / 1e3 for r in cell.results]
        for cell in cells
    ]
    return design, tuple(map(tuple, cpu_rows)), tuple(map(tuple, lat_rows))


@register(
    "table5",
    "Table 5 — SMP 2^4 factorial simulation results",
    "Table 5",
)
def table5(quick: bool = True) -> Table:
    """IS CPU time per node and monitoring latency for all 16 cells."""
    design, cpu_rows, lat_rows = _smp_factorial(quick)
    table = Table(
        title="Table 5: SMP factorial results "
        "(app processes = number of nodes)",
        headers=[
            "period_ms", "nodes", "batch", "app_net_us",
            "is_cpu_s_per_node", "latency_ms",
        ],
    )
    for run, cpu, lat in zip(design.runs(), cpu_rows, lat_rows):
        table.add_row(
            run["sampling_period"] / 1e3,
            run["nodes"],
            run["batch_size"],
            run["app_network_us"],
            mean(cpu),
            mean(lat),
        )
    return table


@register(
    "figure20",
    "Figure 20 — SMP allocation of variation",
    "Figure 20",
)
def figure20(quick: bool = True) -> ArtifactGroup:
    """Paper: node count (A) dominates IS CPU time; policy (C) and node
    count (A) dominate monitoring latency."""
    design, cpu_rows, lat_rows = _smp_factorial(quick)
    group = ArtifactGroup(
        title="Figure 20: SMP variation explained "
        "(A=nodes, B=sampling period, C=policy, D=application type)"
    )
    for name, rows in (("IS CPU time", cpu_rows), ("monitoring latency", lat_rows)):
        alloc = allocate_variation(design, rows)
        t = Table(
            title=f"variation explained for {name}",
            headers=["effect", "percent"],
            notes=[alloc.format()],
        )
        for share in alloc.top(8):
            t.add_row(share.label, 100.0 * share.fraction)
        t.add_row("error", 100.0 * alloc.error_fraction)
        group.add(t)
    return group


@register(
    "figure21",
    "Figure 21 — SMP daemon throughput vs CPU count, 1–4 daemons",
    "Figure 21",
)
def figure21(quick: bool = True) -> ArtifactGroup:
    """Under CF more daemons help at high CPU counts; under BF one daemon
    suffices up to 16 CPUs (§4.3.2)."""
    duration = 2_000_000.0 if quick else 20_000_000.0
    reps = 2 if quick else 5
    # The paper sweeps 1–16 CPUs; our cost model moves the single-daemon
    # saturation point to ~32 CPUs, so the sweep extends there to show
    # the same crossover (EXPERIMENTS.md, figure21).
    cpus = [1, 4, 8, 16, 32] if quick else [1, 2, 4, 8, 12, 16, 24, 32]
    group = ArtifactGroup(
        title="Figure 21: SMP Pd forwarding throughput (T=40ms, apps=CPUs)"
    )
    for policy, batch in (("CF", 1), (f"BF (batch {_BF_BATCH})", _BF_BATCH)):
        panel = SeriesSet(
            title=f"{policy}: throughput per daemon (samples/s) vs CPUs",
            x_label="cpus", y_label="samples_per_s_per_daemon",
            x=[float(c) for c in cpus],
        )
        for k in (1, 2, 3, 4):
            values = []
            for c in cpus:
                cfg = _smp_base(
                    duration,
                    nodes=c,
                    app_processes_per_node=c,
                    daemons=min(k, c),
                    sampling_period=40_000.0,
                    batch_size=batch,
                    seed=21,
                )
                values.append(
                    replicate(cfg, repetitions=reps).throughput_per_daemon
                )
            panel.add_series(f"{k} Pd" + ("s" if k > 1 else ""), values)
        group.add(panel)
    return group


def _is_cpu_per_sample(r) -> float:
    """IS (daemons + main) CPU µs per delivered sample.

    Throughput-normalized overhead: a starved CF daemon does *less*
    total work only because it delivers fewer samples, so raw CPU time
    can invert; per-delivered-sample cost cannot.
    """
    if r.received_throughput <= 0:
        return float("nan")
    busy_per_s = r.is_cpu_utilization_per_node * r.nodes * 1e6
    return busy_per_s / r.received_throughput


def _smp_metric_panels(x, runs_by_key, x_label, uninstrumented=None):
    specs = [
        ("IS CPU utilization/node (%)", "is_cpu_utilization_per_node", 100.0),
        ("Monitoring latency/samp. (ms)", "monitoring_latency_forwarding", 1e-3),
        ("Application CPU utilization/node (%)", "app_cpu_utilization_per_node", 100.0),
    ]
    panels = []
    for name, metric, scale in specs:
        panel = SeriesSet(
            title=name, x_label=x_label, y_label=name, x=[float(v) for v in x]
        )
        for key, runs in runs_by_key.items():
            panel.add_series(key, [scale * getattr(r, metric) for r in runs])
        if uninstrumented is not None and "Application" in name:
            panel.add_series(
                "uninstrumented",
                [scale * getattr(r, metric) for r in uninstrumented],
            )
        panels.append(panel)
    eff = SeriesSet(
        title="IS CPU per delivered sample (µs)",
        x_label=x_label,
        y_label="us_per_sample",
        x=[float(v) for v in x],
    )
    for key, runs in runs_by_key.items():
        eff.add_series(key, [_is_cpu_per_sample(r) for r in runs])
    panels.append(eff)
    return panels


def _smp_daemon_figure(
    title: str,
    parameter: str,
    values,
    x_label: str,
    quick: bool,
    *,
    nodes: int = 16,
    apps: int = 32,
    sampling_period: float = 40_000.0,
) -> ArtifactGroup:
    duration = 1_500_000.0 if quick else 10_000_000.0
    reps = 1 if quick else 3
    group = ArtifactGroup(title=title)
    daemon_counts = (1, 4) if quick else (1, 2, 3, 4)

    def config(v, **overrides):
        kw = dict(
            nodes=nodes,
            app_processes_per_node=apps,
            sampling_period=sampling_period,
            seed=22,
        )
        kw[parameter] = v
        kw.update(overrides)
        return _smp_base(duration, **kw)

    # The uninstrumented baseline is shared by the CF and BF sections.
    uninst = [
        replicate(config(v, instrumented=False), repetitions=reps)
        for v in values
    ]
    for policy, batch in (("CF", 1), ("BF", _BF_BATCH)):
        runs_by_key = {}
        for k in daemon_counts:
            runs = [
                replicate(config(v, daemons=k, batch_size=batch),
                          repetitions=reps)
                for v in values
            ]
            runs_by_key[f"{k} Pd" + ("s" if k > 1 else "")] = runs
        for panel in _smp_metric_panels(
            [v / 1e3 if parameter == "sampling_period" else v for v in values],
            runs_by_key,
            x_label,
            uninst,
        ):
            panel.title = f"({policy}) {panel.title}"
            group.add(panel)
    return group


@register(
    "figure22",
    "Figure 22 — SMP metrics vs node (CPU) count, 1–4 daemons",
    "Figure 22",
)
def figure22(quick: bool = True) -> ArtifactGroup:
    """T = 40 ms, 32 application processes; shows the bus bottleneck at
    large CPU counts (§4.3.3)."""
    nodes = [2, 8, 32] if quick else [2, 4, 8, 16, 32]
    return _smp_daemon_figure(
        "Figure 22: SMP metrics vs number of nodes (T=40ms, 32 apps)",
        "nodes",
        nodes,
        "nodes",
        quick,
    )


@register(
    "figure23",
    "Figure 23 — SMP metrics vs sampling period, 1–4 daemons",
    "Figure 23",
)
def figure23(quick: bool = True) -> ArtifactGroup:
    """n = 16, 32 apps; the small-period pipe-full anomaly (§4.3.3)."""
    periods = [2_000.0, 8_000.0, 40_000.0] if quick else [
        1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 40_000.0, 64_000.0
    ]
    return _smp_daemon_figure(
        "Figure 23: SMP metrics vs sampling period (n=16, 32 apps)",
        "sampling_period",
        periods,
        "period_ms",
        quick,
    )


@register(
    "figure24",
    "Figure 24 — SMP metrics vs application-process count, 1–4 daemons",
    "Figure 24",
)
def figure24(quick: bool = True) -> ArtifactGroup:
    """T = 40 ms, n = 16 CPUs; work scales with the process count."""
    apps = [4, 16, 64] if quick else [1, 2, 4, 8, 16, 32, 64]
    return _smp_daemon_figure(
        "Figure 24: SMP metrics vs number of application processes "
        "(T=40ms, n=16)",
        "app_processes_per_node",
        apps,
        "app_processes",
        quick,
    )
