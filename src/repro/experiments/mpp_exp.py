"""Simulation experiments for the MPP system: Table 6, Figures 25–28.

§4.4: contention-free scalable network, one application process and one
daemon per node, direct or binary-tree forwarding.  Large node counts
(Figures 26–27 at n = 256) use the aggregated large-n mode
(:mod:`repro.rocc.aggregate`); its agreement with the full simulation
is established at small n by the ablation benchmark.
"""

from __future__ import annotations

from functools import lru_cache
from statistics import mean
from typing import List, Tuple

from ..expdesign.effects import allocate_variation
from ..expdesign.factorial import Factor, FactorialDesign
from ..rocc.config import Architecture, ForwardingTopology, SimulationConfig
from .registry import register
from .reporting import ArtifactGroup, SeriesSet, Table
from .runners import replicate, run_design
from .specs import DesignSpec

__all__ = [
    "design_spec", "table6", "figure25", "figure26", "figure27", "figure28",
]

_BF_BATCH = 32


def _mpp_base(duration: float, **kw) -> SimulationConfig:
    return SimulationConfig(
        architecture=Architecture.MPP, duration=duration, **kw
    )


def _mpp_design(quick: bool = False) -> FactorialDesign:
    # Quick mode lowers the BF batch level so batches complete within
    # the shortened duration (see now_exp._now_design).
    return FactorialDesign(
        [
            Factor("nodes", 5, 50, "A"),
            Factor("sampling_period", 2_000.0, 50_000.0, "B"),
            Factor("batch_size", 1, 32 if quick else 128, "C"),
            Factor(
                "forwarding",
                ForwardingTopology.DIRECT,
                ForwardingTopology.TREE,
                "D",
            ),
        ]
    )


def design_spec(quick: bool = True) -> DesignSpec:
    """The MPP 2^4·r design as a :class:`DesignSpec` (planner seam)."""
    duration = 2_500_000.0 if quick else 10_000_000.0

    def make(run) -> SimulationConfig:
        return _mpp_base(
            duration,
            nodes=int(run["nodes"]),
            sampling_period=run["sampling_period"],
            batch_size=int(run["batch_size"]),
            forwarding=run["forwarding"],
            seed=60,
        )

    return DesignSpec(
        name="mpp",
        design=_mpp_design(quick),
        make=make,
        repetitions=2 if quick else 5,
    )


@lru_cache(maxsize=4)
def _mpp_factorial(quick: bool) -> Tuple[FactorialDesign, tuple, tuple]:
    spec = design_spec(quick)
    design, make, reps = spec.design, spec.make, spec.repetitions

    cells = run_design(design, make, repetitions=reps)
    cpu_rows = [
        [r.pd_cpu_time_per_node / 1e6 for r in cell.results] for cell in cells
    ]
    lat_rows = [
        [r.monitoring_latency_forwarding / 1e3 for r in cell.results]
        for cell in cells
    ]
    return design, tuple(map(tuple, cpu_rows)), tuple(map(tuple, lat_rows))


@register(
    "table6",
    "Table 6 — MPP 2^4 factorial simulation results",
    "Table 6",
)
def table6(quick: bool = True) -> Table:
    """Pd CPU time per node and monitoring latency, direct vs tree."""
    design, cpu_rows, lat_rows = _mpp_factorial(quick)
    table = Table(
        title="Table 6: MPP factorial results",
        headers=[
            "period_ms", "nodes", "batch", "forwarding",
            "pd_cpu_s_per_node", "latency_ms",
        ],
    )
    for run, cpu, lat in zip(design.runs(), cpu_rows, lat_rows):
        table.add_row(
            run["sampling_period"] / 1e3,
            run["nodes"],
            run["batch_size"],
            run["forwarding"].value,
            mean(cpu),
            mean(lat),
        )
    return table


@register(
    "figure25",
    "Figure 25 — MPP allocation of variation",
    "Figure 25",
)
def figure25(quick: bool = True) -> ArtifactGroup:
    """Paper: sampling period (B) dominates Pd CPU time, then policy (C);
    node count (A) and period (B) dominate monitoring latency."""
    design, cpu_rows, lat_rows = _mpp_factorial(quick)
    group = ArtifactGroup(
        title="Figure 25: MPP variation explained "
        "(A=nodes, B=sampling period, C=policy, D=network configuration)"
    )
    for name, rows in (("Pd CPU time", cpu_rows), ("monitoring latency", lat_rows)):
        alloc = allocate_variation(design, rows)
        t = Table(
            title=f"variation explained for {name}",
            headers=["effect", "percent"],
            notes=[alloc.format()],
        )
        for share in alloc.top(8):
            t.add_row(share.label, 100.0 * share.fraction)
        t.add_row("error", 100.0 * alloc.error_fraction)
        group.add(t)
    return group


def _mpp_panels(x, runs_by_key, x_label, uninstrumented=None, latency="total"):
    lat_metric = (
        "monitoring_latency_total"
        if latency == "total"
        else "monitoring_latency_forwarding"
    )
    specs = [
        ("Pd CPU utilization/node (%)", "pd_cpu_utilization_per_node", 100.0),
        ("Paradyn CPU utilization/node (%)", "main_cpu_utilization", 100.0),
        ("Appl. CPU utilization/node (%)", "app_cpu_utilization_per_node", 100.0),
        (f"Monitoring latency/sample (s, {latency})", lat_metric, 1e-6),
    ]
    panels = []
    for name, metric, scale in specs:
        panel = SeriesSet(
            title=name, x_label=x_label, y_label=name, x=[float(v) for v in x]
        )
        for key, runs in runs_by_key.items():
            panel.add_series(key, [scale * getattr(r, metric) for r in runs])
        if uninstrumented is not None and "Appl." in name:
            panel.add_series(
                "uninstrumented",
                [scale * getattr(r, metric) for r in uninstrumented],
            )
        panels.append(panel)
    return panels


@register(
    "figure26",
    "Figure 26 — MPP metrics vs sampling period at n=256 (aggregated)",
    "Figure 26",
)
def figure26(quick: bool = True) -> ArtifactGroup:
    """BF policy; CF shown for the direct-overhead comparison (§4.4.2).
    The BF total latency includes batch accumulation — the trade-off the
    paper highlights."""
    duration = 2_000_000.0 if quick else 10_000_000.0
    reps = 2 if quick else 5
    nodes = 64 if quick else 256
    periods_ms = [1, 4, 16, 64] if quick else [1, 2, 4, 8, 16, 32, 64]
    runs_by_key = {}
    for key, batch, fwd in (
        ("CF direct", 1, ForwardingTopology.DIRECT),
        ("BF direct", _BF_BATCH, ForwardingTopology.DIRECT),
        ("BF tree", _BF_BATCH, ForwardingTopology.TREE),
    ):
        runs_by_key[key] = [
            replicate(
                _mpp_base(
                    duration,
                    nodes=nodes,
                    sampling_period=p * 1000.0,
                    batch_size=batch,
                    forwarding=fwd,
                    seed=26,
                ),
                repetitions=reps,
                aggregated=True,
            )
            for p in periods_ms
        ]
    uninst = [
        replicate(
            _mpp_base(duration, nodes=nodes, instrumented=False, seed=26),
            repetitions=reps,
            aggregated=True,
        )
        for _ in periods_ms
    ]
    group = ArtifactGroup(
        title=f"Figure 26: MPP vs sampling period (n={nodes}, aggregated mode)"
    )
    for panel in _mpp_panels(periods_ms, runs_by_key, "period_ms", uninst):
        group.add(panel)
    return group


@register(
    "figure27",
    "Figure 27 — MPP metrics vs node count, direct vs tree forwarding",
    "Figure 27",
)
def figure27(quick: bool = True) -> ArtifactGroup:
    """T = 40 ms, BF; tree forwarding raises Pd CPU overhead (merge work)
    without helping latency at these rates (§4.4.2)."""
    duration = 2_000_000.0 if quick else 10_000_000.0
    reps = 2 if quick else 5
    nodes = [2, 8, 32, 128] if quick else [2, 4, 8, 16, 32, 64, 128, 256]
    runs_by_key = {}
    for key, fwd in (
        ("direct", ForwardingTopology.DIRECT),
        ("tree", ForwardingTopology.TREE),
    ):
        runs_by_key[key] = [
            replicate(
                _mpp_base(
                    duration,
                    nodes=n,
                    sampling_period=40_000.0,
                    batch_size=_BF_BATCH,
                    forwarding=fwd,
                    seed=27,
                ),
                repetitions=reps,
                aggregated=n > 16,
            )
            for n in nodes
        ]
    uninst = [
        replicate(
            _mpp_base(duration, nodes=n, instrumented=False, seed=27),
            repetitions=reps,
            aggregated=n > 16,
        )
        for n in nodes
    ]
    group = ArtifactGroup(
        title="Figure 27: MPP vs number of nodes (T=40ms, BF, "
        "aggregated above 16 nodes)"
    )
    for panel in _mpp_panels(nodes, runs_by_key, "nodes", uninst):
        group.add(panel)
    return group


@register(
    "figure28",
    "Figure 28 — effect of barrier-operation frequency",
    "Figure 28",
)
def figure28(quick: bool = True) -> ArtifactGroup:
    """Frequent barriers idle the application, raising the daemon's share
    of the (busy) CPU and lowering application CPU occupancy (§4.4.3)."""
    duration = 1_500_000.0 if quick else 10_000_000.0
    reps = 2 if quick else 5
    nodes = 8 if quick else 64  # paper: 256; full simulation required
    barrier_ms = [0.1, 1, 10, 100, 1000] if quick else [
        0.01, 0.1, 1, 10, 100, 1000, 10000
    ]
    runs = [
        replicate(
            _mpp_base(
                duration,
                nodes=nodes,
                sampling_period=40_000.0,
                batch_size=_BF_BATCH,
                barrier_period=b * 1000.0,
                seed=28,
            ),
            repetitions=reps,
        )
        for b in barrier_ms
    ]
    group = ArtifactGroup(
        title=f"Figure 28: barrier-period sweep (n={nodes}, T=40ms, BF)"
    )
    specs = [
        ("Pd CPU utilization/node (%)", "pd_cpu_utilization_per_node", 100.0),
        ("Paradyn CPU utilization/node (%)", "main_cpu_utilization", 100.0),
        ("Appl. CPU utilization/node (%)", "app_cpu_utilization_per_node", 100.0),
        ("Monitoring latency/sample (s)", "monitoring_latency_total", 1e-6),
    ]
    for name, metric, scale in specs:
        panel = SeriesSet(
            title=name, x_label="barrier_period_ms", y_label=name,
            x=[float(b) for b in barrier_ms],
        )
        panel.add_series("BF", [scale * getattr(r, metric) for r in runs])
        group.add(panel)
    # The paper's headline panel: the daemon's share of *busy* CPU time,
    # which rises as barriers idle the application.
    share_panel = SeriesSet(
        title="Pd share of busy CPU time (%)",
        x_label="barrier_period_ms",
        y_label="percent",
        x=[float(b) for b in barrier_ms],
    )
    share_panel.add_series(
        "BF",
        [
            100.0
            * r.pd_cpu_time_per_node
            / max(
                1e-9,
                r.pd_cpu_time_per_node
                + r.app_cpu_time_per_node
                + r.pvmd_cpu_time_per_node
                + r.other_cpu_time_per_node,
            )
            for r in runs
        ],
    )
    group.add(share_panel)
    return group
