"""Extension experiments beyond the paper's artifact list.

These implement the §6 outlook and §1 motivation quantitatively:

* ``extra_adaptive`` — the overhead-regulation study: static CF at an
  aggressive rate vs the adaptive controller under two strategies.
* ``extra_perturbation`` — the instrumentation-perturbation table: the
  "10 % to more than 50 %" degradation range the paper's introduction
  cites, mapped across sampling periods and policies.

They are registered like the paper artifacts (``python -m
repro.experiments extra_adaptive``) but use the ``extra_`` prefix so the
paper-reproduction index stays unambiguous.
"""

from __future__ import annotations

from ..rocc.adaptive import RegulatorConfig
from ..rocc.config import SimulationConfig
from ..rocc.perturbation import measure_perturbation
from ..rocc.system import ParadynISSystem, simulate
from .registry import register
from .reporting import ArtifactGroup, Table

__all__ = ["extra_adaptive", "extra_perturbation"]


@register(
    "extra_adaptive",
    "Extension — adaptive IS management holding an overhead budget",
    "§6 discussion (dynamic cost model outlook)",
)
def extra_adaptive(quick: bool = True) -> ArtifactGroup:
    """Static vs regulated overhead at a 1 % budget, two strategies."""
    duration = 8_000_000.0 if quick else 30_000_000.0
    base = SimulationConfig(
        nodes=2, sampling_period=1_000.0, batch_size=1,
        duration=duration, seed=44,
    )
    budget = 0.01

    group = ArtifactGroup(
        title="Extension: adaptive overhead regulation (budget 1 %)"
    )
    table = Table(
        title="static vs regulated",
        headers=[
            "strategy", "settled_overhead_pct", "run_avg_overhead_pct",
            "final_period_ms", "final_batch", "samples_delivered",
        ],
    )

    static = simulate(base)
    table.add_row(
        "static CF @ 1ms",
        100 * static.pd_cpu_utilization_per_node,
        100 * static.pd_cpu_utilization_per_node,
        1.0,
        1,
        static.samples_received,
    )

    for label, reg in (
        ("regulated: period backoff", RegulatorConfig(budget=budget)),
        (
            "regulated: batch first",
            RegulatorConfig(budget=budget, adapt_batch=True, max_batch=64),
        ),
    ):
        system = ParadynISSystem(base.with_(adaptive=reg))
        results = system.run()
        decisions = system.regulators[0].decisions
        tail = [d for d in decisions if d.time > duration / 2]
        settled = sum(d.observed_utilization for d in tail) / max(len(tail), 1)
        table.add_row(
            label,
            100 * settled,
            100 * results.pd_cpu_utilization_per_node,
            system.apps[0].sampler_state.period / 1e3,
            system.daemons[0].batch_size,
            results.samples_received,
        )
    group.add(table)
    group.notes.append(
        "batch-first regulation keeps several times more samples per "
        "second at the same settled overhead — the CF→BF conclusion, "
        "reached automatically"
    )
    return group


@register(
    "extra_perturbation",
    "Extension — instrumentation perturbation across operating points",
    "§1 motivation (10–50 % degradation range)",
)
def extra_perturbation(quick: bool = True) -> Table:
    """Application slowdown vs sampling period and policy."""
    duration = 2_000_000.0 if quick else 10_000_000.0
    table = Table(
        title="Instrumentation perturbation of the application",
        headers=[
            "period_ms", "policy", "slowdown_pct", "direct_pct",
            "indirect_pct",
        ],
        notes=[
            "slowdown = lost application cycles vs the uninstrumented "
            "baseline (common random numbers); direct = IS CPU occupancy; "
            "indirect = the rest (scheduling displacement, pipe blocking)",
        ],
    )
    periods_ms = [0.5, 2, 10, 40] if quick else [0.5, 1, 2, 5, 10, 20, 40]
    for period in periods_ms:
        for policy, batch in (("CF", 1), ("BF", 32)):
            report = measure_perturbation(
                SimulationConfig(
                    nodes=2,
                    app_processes_per_node=2,
                    sampling_period=period * 1000.0,
                    batch_size=batch,
                    duration=duration,
                    seed=61,
                )
            )
            table.add_row(
                period,
                policy,
                report.slowdown_percent,
                report.direct_overhead_percent,
                report.indirect_percent,
            )
    return table
