#!/usr/bin/env python3
"""Direct vs binary-tree forwarding on an MPP (§4.4, Figures 26–27).

Simulates a massively-parallel system where daemons either send
instrumentation data straight to the main Paradyn process or relay it
up a binary tree of daemons that merge en-route batches.  Large node
counts use the aggregated large-n mode (one detailed node + phantom
traffic), the same technique the benchmarks use for the 256-node runs.

Also shows the analytic (Section 3) predictions next to the simulation.

Run:
    python examples/mpp_tree_forwarding.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.analytical import MPPAnalyticalModel
from repro.rocc import (
    Architecture,
    ForwardingTopology,
    SimulationConfig,
    simulate,
    simulate_aggregated,
)


def run(nodes: int, tree: bool):
    cfg = SimulationConfig(
        architecture=Architecture.MPP,
        nodes=nodes,
        sampling_period=40_000.0,
        batch_size=32,
        forwarding=ForwardingTopology.TREE if tree else ForwardingTopology.DIRECT,
        duration=(500_000.0 if QUICK else 4_000_000.0),
        seed=4,
    )
    return simulate_aggregated(cfg) if nodes > 16 else simulate(cfg)


def main() -> None:
    print("MPP forwarding topology comparison (T = 40 ms, BF batch 32)")
    print()
    print(f"{'nodes':>6s} {'topology':>9s} {'Pd CPU %/node':>14s} "
          f"{'analytic %':>11s} {'latency (ms)':>13s} {'merges':>7s}")
    for nodes in ((8, 32) if QUICK else (8, 32, 128)):
        for tree in (False, True):
            r = run(nodes, tree)
            analytic = MPPAnalyticalModel(
                nodes=nodes, sampling_period=40_000.0, batch_size=32, tree=tree
            )
            print(
                f"{nodes:6d} {'tree' if tree else 'direct':>9s} "
                f"{100 * r.pd_cpu_utilization_per_node:14.4f} "
                f"{100 * analytic.pd_cpu_utilization():11.4f} "
                f"{r.monitoring_latency_total_ms:13.1f} "
                f"{r.merges_total:7d}"
            )
    print()
    print("Reading: tree forwarding pays extra daemon CPU for the merge "
          "work at non-leaf nodes while latency stays essentially the "
          "same — which is why the paper recommends BF over a direct "
          "topology for reducing direct overhead (§4.4.2).  Note the "
          "analytic column ignores per-sample collection costs, so it "
          "understates the simulated utilization, exactly as in the "
          "paper's back-of-the-envelope treatment.")


if __name__ == "__main__":
    main()
