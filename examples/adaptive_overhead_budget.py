#!/usr/bin/env python3
"""Adaptive IS management: hold instrumentation overhead to a budget.

The paper's closing discussion (§6) proposes that "users can specify
tolerable limits for IS overheads ... the IS can use the model to adapt
its behavior in order to regulate overheads", pointing at Paradyn's
dynamic cost model.  This example exercises that loop, an extension
this library builds on top of the ROCC simulator:

An aggressive configuration (1 ms sampling under CF) would burn ~25 %
of each node's CPU on the daemon.  The overhead regulator watches the
daemon's CPU utilization every 250 ms and backs the sampling period
off (or, with ``adapt_batch``, grows the batch first) until the
overhead sits inside the user's budget.

Run:
    python examples/adaptive_overhead_budget.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.rocc import (
    ParadynISSystem,
    RegulatorConfig,
    SimulationConfig,
    simulate,
)


def main() -> None:
    base = SimulationConfig(
        nodes=2,
        sampling_period=1_000.0,  # 1 ms: brutal under CF
        batch_size=1,
        duration=(1_000_000.0 if QUICK else 10_000_000.0),  # 10 s
        seed=44,
    )
    budget = 0.01

    static = simulate(base)
    print("Static CF @ 1 ms sampling:")
    print(f"  Pd CPU utilization/node : {100 * static.pd_cpu_utilization_per_node:.2f} %"
          f"  (budget: {100 * budget:.0f} %)")
    print(f"  samples delivered       : {static.samples_received}")
    print()

    for label, reg in [
        ("period backoff only",
         RegulatorConfig(budget=budget)),
        ("batch adaptation first",
         RegulatorConfig(budget=budget, adapt_batch=True, max_batch=64)),
    ]:
        system = ParadynISSystem(base.with_(adaptive=reg))
        results = system.run()
        regulator = system.regulators[0]
        final_period = system.apps[0].sampler_state.period
        final_batch = system.daemons[0].batch_size
        # Overhead over the final controlled window, not the whole run
        # (the run average includes the pre-convergence transient).
        tail_start = base.duration / 2
        tail = [d for d in regulator.decisions if d.time > tail_start]
        tail_util = sum(d.observed_utilization for d in tail) / len(tail)
        print(f"Adaptive ({label}):")
        print(f"  decisions taken         : {len(regulator.decisions)} "
              f"({sum(d.acted for d in regulator.decisions)} acted)")
        print(f"  final sampling period   : {final_period / 1e3:.1f} ms "
              f"(batch {final_batch})")
        print(f"  overhead, settled window: {100 * tail_util:.2f} %")
        print(f"  run-average overhead    : "
              f"{100 * results.pd_cpu_utilization_per_node:.2f} %")
        print(f"  samples delivered       : {results.samples_received}")
        print()

    print("Reading: both regulators pull a ~25 % overhead inside the 1 % "
          "budget; adapting the batch first preserves far more samples "
          "per second than slowing the sampling clock — the same "
          "conclusion the paper's CF→BF comparison reaches, arrived at "
          "automatically.")


if __name__ == "__main__":
    main()
