#!/usr/bin/env python3
"""Open workloads: external request streams hitting a monitored NOW.

The paper evaluates the instrumentation system only under *closed*
workloads — each node's application processes loop forever, so the
offered load is a function of the system's own speed.  This example
drives the complementary *open* model: externally-generated request
streams (``repro.workload.generators``) arrive regardless of how busy
the nodes are, each costing one application CPU burst plus one network
transfer on the monitored machines.

Four traffic classes hit the same 4-node instrumented NOW:

* ``stationary`` — Poisson arrivals, Zipf-skewed across nodes;
* ``bursty``     — sinusoidally modulated rate (a compressed "day");
* ``flashcrowd`` — baseline load with an 8x surge in the middle;
* ``open``       — AsyncFlow-style users x per-user rate with the
  active-user population resampled every window.

All generators are lazy iterators (the schedule never materializes in
RAM) and fully seeded: run the script twice and every number repeats.

Run:
    python examples/open_workload_sweep.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.rocc import NetworkMode, SimulationConfig, simulate
from repro.workload.generators import TrafficSpec

DURATION = 1_000_000.0 if QUICK else 8_000_000.0  # simulated µs

CLASSES = [
    TrafficSpec.parse("stationary:rate=300,alpha=0.8"),
    TrafficSpec.parse("bursty:rate=300,period_s=1.0,depth=0.8"),
    TrafficSpec.parse(
        "flashcrowd:rate=150,multiplier=8,first_at_s=0.3,duration_s=0.3"
    ),
    TrafficSpec.parse("open:avg_users=150,rpm=120,window_s=0.25"),
]


def run(spec):
    cfg = SimulationConfig(
        nodes=4,
        sampling_period=40_000.0,
        duration=DURATION,
        seed=2026,
        network_mode=NetworkMode.CONTENTION_FREE,
        traffic=spec,
    )
    return simulate(cfg)


def main() -> None:
    baseline = run(None)
    print("Open-workload classes on a 4-node instrumented NOW "
          f"(T = 40 ms, {DURATION / 1e6:.0f} simulated s)")
    header = (f"{'workload':12s} {'offered/s':>10s} {'served':>8s} "
              f"{'latency ms':>11s} {'users':>7s} {'Pd CPU %':>9s}")
    print("-" * len(header))
    print(header)
    print("-" * len(header))
    print(f"{'(none)':12s} {0.0:10.1f} {0:8d} {'-':>11s} {'-':>7s} "
          f"{100 * baseline.pd_cpu_utilization_per_node:9.3f}")
    for spec in CLASSES:
        r = run(spec)
        latency = (f"{r.open_latency_mean / 1e3:11.2f}"
                   if r.open_latency_mean == r.open_latency_mean else
                   f"{'-':>11s}")
        users = (f"{r.open_active_users:7.1f}"
                 if r.open_active_users == r.open_active_users else
                 f"{'-':>7s}")
        print(f"{spec.name:12s} {r.open_offered_rate:10.1f} "
              f"{r.open_completed:8d} {latency} {users} "
              f"{100 * r.pd_cpu_utilization_per_node:9.3f}")
    print("-" * len(header))
    print("Open requests contend with the closed loops and the IS on the")
    print("same CPUs; the IS overhead column barely moves because Paradyn's")
    print("sampling cost depends on the period, not on the offered load.")


if __name__ == "__main__":
    main()
