#!/usr/bin/env python3
"""Quickstart: simulate the Paradyn IS and compare the CF and BF policies.

This is the 60-second tour of the library: build a ROCC simulation of an
8-node network of workstations running an instrumented NAS-like
application, then measure how the batch-and-forward (BF) policy changes
the instrumentation system's direct overhead and monitoring latency
relative to collect-and-forward (CF) — the paper's headline experiment.

Run:
    python examples/quickstart.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.rocc import SimulationConfig, simulate


def main() -> None:
    base = SimulationConfig(
        nodes=8,                  # workstations on the shared network
        sampling_period=40_000.0,  # 40 ms between performance samples
        duration=(500_000.0 if QUICK else 5_000_000.0),  # 5 simulated seconds
        seed=2026,
    )

    cf = simulate(base.with_(batch_size=1))    # CF: forward every sample
    bf = simulate(base.with_(batch_size=32))   # BF: forward batches of 32

    print("Paradyn IS simulation — CF vs BF (8-node NOW, T = 40 ms)")
    print("-" * 64)
    header = f"{'metric':40s} {'CF':>10s} {'BF':>10s}"
    print(header)
    print("-" * len(header))

    rows = [
        ("Pd CPU time per node (s)",
         cf.pd_cpu_seconds_per_node, bf.pd_cpu_seconds_per_node),
        ("main Paradyn CPU time (s)",
         cf.main_cpu_seconds, bf.main_cpu_seconds),
        ("forwarding latency (ms)",
         cf.monitoring_latency_forwarding_ms,
         bf.monitoring_latency_forwarding_ms),
        ("total latency incl. batching (ms)",
         cf.monitoring_latency_total_ms, bf.monitoring_latency_total_ms),
        ("application CPU utilization (%)",
         100 * cf.app_cpu_utilization_per_node,
         100 * bf.app_cpu_utilization_per_node),
        ("samples delivered",
         cf.samples_received, bf.samples_received),
    ]
    for name, a, b in rows:
        print(f"{name:40s} {a:10.3f} {b:10.3f}")

    reduction = 1 - bf.pd_cpu_seconds_per_node / cf.pd_cpu_seconds_per_node
    print("-" * len(header))
    print(f"BF reduces the daemon's direct CPU overhead by "
          f"{100 * reduction:.0f}% (the paper reports >60%).")
    print("The price is monitoring latency: a batch must fill before it "
          "is forwarded.")


if __name__ == "__main__":
    main()
