#!/usr/bin/env python3
"""Cross-validate the Section-3 analysis against the simulator.

The paper keeps its operational-analysis expectations deliberately
modest: "we do not expect analytical results to be accurate; instead,
we want to use these results to show the gross changes in the metric
values" (§3).  This example measures exactly how good the
back-of-the-envelope is: it sweeps the sampling period on a NOW and
prints the analytic vs simulated daemon utilization and forwarding
latency side by side, once with the paper's Table-2 demands and once
with the simulator's cost decomposition plugged into the same formulas.

Run:
    python examples/analytic_vs_simulation.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.analytical import ISDemands, NOWAnalyticalModel
from repro.rocc import NetworkMode, SimulationConfig, simulate


def main() -> None:
    nodes, batch = 4, 1
    base = SimulationConfig(
        nodes=nodes,
        batch_size=batch,
        duration=(500_000.0 if QUICK else 4_000_000.0),
        network_mode=NetworkMode.CONTENTION_FREE,
        seed=9,
    )
    periods_ms = [10, 40] if QUICK else [2, 5, 10, 20, 40]

    print("NOW, CF policy, 4 nodes — analytic (eqs 1-6) vs simulation")
    print()
    header = (f"{'T (ms)':>7s} | {'Pd util % (paper eqs)':>21s} "
              f"{'(cost-model eqs)':>17s} {'(simulated)':>12s} | "
              f"{'R (ms, analytic)':>16s} {'(simulated)':>12s}")
    print(header)
    print("-" * len(header))
    for t_ms in periods_ms:
        period = t_ms * 1000.0
        paper_model = NOWAnalyticalModel(
            nodes=nodes, sampling_period=period, batch_size=batch
        )
        cost_model = NOWAnalyticalModel(
            nodes=nodes, sampling_period=period, batch_size=batch,
            demands=ISDemands.from_cost_models(
                base.daemon_costs, base.main_costs, batch
            ),
        )
        sim = simulate(base.with_(sampling_period=period))
        print(
            f"{t_ms:7.0f} | {100 * paper_model.pd_cpu_utilization():21.3f} "
            f"{100 * cost_model.pd_cpu_utilization():17.3f} "
            f"{100 * sim.pd_cpu_utilization_per_node:12.3f} | "
            f"{paper_model.monitoring_latency() / 1e3:16.3f} "
            f"{sim.monitoring_latency_forwarding_ms:12.3f}"
        )
    print()
    print("Reading: utilizations agree to within a few percent (the flow-"
          "balance assumption holds at these loads); the analytic latency "
          "misses the CPU contention with the application — it sees only "
          "the IS's own queueing — so the simulated residence time is "
          "higher, exactly the gap the paper warns about in §3.")


if __name__ == "__main__":
    main()
