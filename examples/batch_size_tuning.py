#!/usr/bin/env python3
"""What should the batch size be? (§4.2.4, Figures 10 and 19)

Sweeps the BF batch size on an 8-node system and prints the overhead /
latency trade-off next to the operational-analysis prediction, locating
the "knee" the paper recommends operating at: overhead falls
super-linearly just past batch 1 and then flattens, while total
monitoring latency keeps growing linearly with the batch size.

Run:
    python examples/batch_size_tuning.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.analytical import NOWAnalyticalModel
from repro.rocc import NetworkMode, SimulationConfig, simulate


def main() -> None:
    batches = [1, 2, 4] if QUICK else [1, 2, 4, 8, 16, 32, 64]
    base = SimulationConfig(
        nodes=8,
        sampling_period=20_000.0,
        duration=(1_000_000.0 if QUICK else 6_000_000.0),
        network_mode=NetworkMode.CONTENTION_FREE,
        seed=12,
    )

    print("Batch-size tuning (8 nodes, T = 20 ms)")
    print()
    print(f"{'batch':>6s} {'Pd CPU %':>9s} {'analytic %':>11s} "
          f"{'fwd lat (ms)':>13s} {'total lat (ms)':>15s}")
    rows = []
    for b in batches:
        r = simulate(base.with_(batch_size=b))
        a = NOWAnalyticalModel(nodes=8, sampling_period=20_000.0, batch_size=b)
        rows.append((b, r))
        print(
            f"{b:6d} {100 * r.pd_cpu_utilization_per_node:9.4f} "
            f"{100 * a.pd_cpu_utilization():11.4f} "
            f"{r.monitoring_latency_forwarding_ms:13.2f} "
            f"{r.monitoring_latency_total_ms:15.1f}"
        )

    # The library's knee detector (§4.2.4 operationalized), here with a
    # latency ceiling a real-time-ish consumer might impose.
    from repro.rocc import recommend_batch_size

    rec = recommend_batch_size(base, candidates=batches)
    print()
    print(f"Recommended batch size: {rec.batch_size}  ({rec.reason}; "
          f"{rec.overhead_reduction:.0%} overhead reduction vs CF)")
    capped = recommend_batch_size(base, candidates=batches,
                                  max_latency=100_000.0)
    print(f"With a 100 ms latency ceiling: batch {capped.batch_size} "
          f"({capped.reason})")
    print("Past the knee, a larger batch buys little CPU but costs "
          "latency linearly (total latency ≈ batch × period / 2) — the "
          "paper recommends a batch size near the knee (§4.2.4).")


if __name__ == "__main__":
    main()
