#!/usr/bin/env python3
"""Fault tolerance: CF vs BF under daemon churn and a lossy network.

The paper's CF/BF comparison assumes an ideal instrumentation system —
no daemon ever dies, no message is ever lost.  This experiment repeats
the comparison on a deliberately hostile 8-node NOW: daemons crash and
restart in a round-robin every 1.5 simulated seconds, and the shared
network drops 40 % of all forwarded messages.  Every daemon runs the
same recovery policy (a small bounded resend queue with exponential
backoff — a daemon that must retransmit constantly falls behind).

The qualitative expectation: **BF loses fewer samples than CF** when
message loss dominates.  Under CF every sample is its own message, so
the loss process sees ~b× more loss events, saturates the bounded
resend queue, and drops to overflow — while a BF daemon retries its few
batch messages comfortably.  The counterweight is crash exposure: a
crashing BF daemon loses its partially filled batch (up to b samples),
a CF daemon at most one.  With churn alone CF is therefore the safer
policy; add a lossy network and the balance flips.  The absolute drop
counts are deterministic per seed (run twice to check).

Run:
    python examples/fault_tolerance_sweep.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.faults import FaultPlan, NetworkFault, RecoveryPolicy
from repro.rocc import SimulationConfig, simulate

DURATION = (1_000_000.0 if QUICK else 10_000_000.0)  # 10 simulated seconds


def hostile_plan() -> FaultPlan:
    churn = FaultPlan.daemon_churn(
        nodes=range(8),
        first_at=1_000_000.0,   # first crash at t = 1 s
        period=1_500_000.0,     # one crash every 1.5 s
        downtime=400_000.0,     # each outage lasts 0.4 s
        until=DURATION,
    )
    lossy = NetworkFault(loss_probability=0.4)
    return FaultPlan(tuple(churn.faults) + (lossy,))


def run(batch_size: int):
    cfg = SimulationConfig(
        nodes=8,
        sampling_period=40_000.0,
        batch_size=batch_size,
        duration=DURATION,
        seed=2026,
        faults=hostile_plan(),
        recovery=RecoveryPolicy(
            max_retries=3,
            backoff_base=80_000.0,
            backoff_factor=2.0,
            backoff_jitter=0.5,
            resend_queue_limit=2,
        ),
    )
    return simulate(cfg)


def main() -> None:
    cf = run(batch_size=1)
    bf = run(batch_size=32)

    print("Fault tolerance under daemon churn + 40% message loss "
          "(8-node NOW, T = 40 ms)")
    print("-" * 66)
    header = f"{'metric':42s} {'CF':>10s} {'BF':>10s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("samples generated", cf.samples_generated, bf.samples_generated),
        ("samples delivered", cf.samples_received, bf.samples_received),
        ("samples dropped", cf.samples_dropped, bf.samples_dropped),
        ("  ... to message loss",
         cf.drops_by_reason.get("loss", 0), bf.drops_by_reason.get("loss", 0)),
        ("  ... to resend-queue overflow",
         cf.drops_by_reason.get("overflow", 0),
         bf.drops_by_reason.get("overflow", 0)),
        ("  ... in daemon crashes",
         cf.drops_by_reason.get("crash", 0), bf.drops_by_reason.get("crash", 0)),
        ("messages lost by the network", cf.messages_lost, bf.messages_lost),
        ("retransmissions", cf.retransmissions, bf.retransmissions),
        ("daemon crashes", cf.daemon_crashes, bf.daemon_crashes),
    ]
    for name, a, b in rows:
        print(f"{name:42s} {a:10d} {b:10d}")
    frows = [
        ("delivery ratio (%)",
         100 * cf.delivery_ratio, 100 * bf.delivery_ratio),
        ("total daemon downtime (s)",
         cf.daemon_downtime_seconds, bf.daemon_downtime_seconds),
        ("mean recovery latency (ms)",
         cf.recovery_latency_ms, bf.recovery_latency_ms),
        ("Pd CPU time per node (s)",
         cf.pd_cpu_seconds_per_node, bf.pd_cpu_seconds_per_node),
    ]
    for name, a, b in frows:
        print(f"{name:42s} {a:10.2f} {b:10.2f}")
    print("-" * len(header))
    if bf.samples_dropped < cf.samples_dropped:
        print("BF loses fewer samples than CF here: ~32x fewer messages "
              "means ~32x fewer loss events, so BF's resend queue keeps up "
              "while CF's overflows.")
    else:
        print("Note: on this seed CF kept up with BF — raise the loss rate "
              "or shrink resend_queue_limit to expose the difference.")
    print("Counts above are deterministic per seed: rerun to verify.")


if __name__ == "__main__":
    main()
