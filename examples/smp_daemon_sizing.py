#!/usr/bin/env python3
"""How many Paradyn daemons does an SMP need? (§4.3.2, Figure 21)

Sweeps the number of CPUs on a shared-memory multiprocessor (one
application process per CPU) and compares 1 vs 4 Paradyn daemons under
the CF and BF policies.  The paper's finding, reproduced here: under CF
a single daemon is eventually swamped — adding daemons recovers the
lost forwarding throughput — while under BF one daemon suffices far
longer because batching amortizes the forwarding work.

Run:
    python examples/smp_daemon_sizing.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.rocc import Architecture, SimulationConfig, simulate


def total_throughput(cpus: int, daemons: int, batch: int) -> float:
    cfg = SimulationConfig(
        architecture=Architecture.SMP,
        nodes=cpus,
        app_processes_per_node=cpus,  # total apps on the SMP
        daemons=min(daemons, cpus),
        sampling_period=40_000.0,
        batch_size=batch,
        duration=(500_000.0 if QUICK else 3_000_000.0),
        seed=7,
    )
    r = simulate(cfg)
    return r.throughput_per_daemon * min(daemons, cpus)


def main() -> None:
    cpus_list = [4, 8, 16, 32]
    print("SMP daemon sizing (T = 40 ms, one app process per CPU)")
    print()
    for policy, batch in (("CF (batch 1)", 1), ("BF (batch 32)", 32)):
        print(f"--- {policy} ---")
        print(f"{'CPUs':>6s} {'demand/s':>9s} {'1 Pd total/s':>13s} "
              f"{'4 Pds total/s':>14s} {'1-Pd deficit':>13s}")
        for cpus in cpus_list:
            demand = cpus / 0.040
            one = total_throughput(cpus, 1, batch)
            four = total_throughput(cpus, 4, batch)
            deficit = max(0.0, 1 - one / demand)
            print(f"{cpus:6d} {demand:9.0f} {one:13.0f} {four:14.0f} "
                  f"{100 * deficit:12.0f}%")
        print()
    print("Reading: under CF the single daemon falls behind as CPUs grow "
          "(deficit > 0), and extra daemons recover throughput; under BF "
          "one daemon tracks demand much longer — the paper's §4.3.2 "
          "conclusion.")


if __name__ == "__main__":
    main()
