#!/usr/bin/env python3
"""Workload characterization: trace → statistics → fits → simulation.

Walks the full §2.3–2.4 pipeline of the paper:

1. "Measure" a NAS pvmbt run with the synthetic AIX tracing facility.
2. Summarize per-process occupancy statistics (Table 1).
3. Fit candidate distributions to the request lengths and pick the best
   family per (process, resource) pair (Figure 8 / Table 2).
4. Parameterize the ROCC simulator from the fits and validate it against
   the "measurement" (Table 3).

Run:
    python examples/workload_characterization.py
"""

import os

# Smoke tests set REPRO_EXAMPLE_QUICK=1 to shrink the simulated time so
# every example finishes in well under a second.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip().lower() in (
    "1", "on", "true", "yes",
)

from repro.rocc import SimulationConfig, simulate
from repro.workload import (
    PVMBT,
    AIXTraceFacility,
    ProcessType,
    ResourceKind,
    TracingConfig,
    build_parameters,
    fit_requests,
    summarize,
)


def main() -> None:
    duration = 1_000_000.0 if QUICK else 10_000_000.0  # simulated tracing span

    print("=== 1. Tracing NAS pvmbt under the Paradyn IS (synthetic AIX) ===")
    facility = AIXTraceFacility(
        PVMBT,
        TracingConfig(duration=duration, sampling_period=40_000.0, seed=1,
                      trace_main_process=True),
    )
    trace = facility.trace()
    print(f"captured {len(trace)} occupancy records over "
          f"{trace.span() / 1e6:.1f} s\n")

    print("=== 2. Table 1: occupancy-request statistics (µs) ===")
    print(summarize(trace).format())
    print()

    print("=== 3. Table 2: fitted request-length distributions ===")
    for fit in fit_requests(trace):
        best = fit.distribution
        print(f"  {fit.process_type.value:16s} {fit.resource.value:8s} "
              f"-> {fit.family:12s} mean={best.mean:8.1f} std={best.std:8.1f}")
        for cand in sorted(fit.candidates, key=lambda c: -c.loglik):
            marker = "*" if cand.family == fit.family else " "
            print(f"     {marker} {cand.family:12s} loglik={cand.loglik:12.1f} "
                  f"ks={cand.ks_statistic:.4f}")
    print()

    print("=== 4. Table 3: validate the parameterized model ===")
    params = build_parameters(trace)
    sim = simulate(
        SimulationConfig(nodes=1, duration=duration, sampling_period=40_000.0,
                         workload=params, seed=1)
    )
    measured_app = trace.busy_time(
        process_type=ProcessType.APPLICATION, resource=ResourceKind.CPU
    ) / 1e6
    measured_pd = trace.busy_time(
        process_type=ProcessType.PARADYN_DAEMON, resource=ResourceKind.CPU
    ) / 1e6
    print(f"  {'':24s} {'app CPU (s)':>12s} {'Pd CPU (s)':>12s}")
    print(f"  {'measurement based':24s} {measured_app:12.2f} {measured_pd:12.2f}")
    print(f"  {'simulation model based':24s} "
          f"{sim.app_cpu_time_per_node / 1e6:12.2f} "
          f"{sim.pd_cpu_time_per_node / 1e6:12.2f}")
    print("\n(the paper's Table 3: measured 85.71/0.74 vs simulated "
          "87.96/0.59 over 100 s)")


if __name__ == "__main__":
    main()
