#!/usr/bin/env python
"""Gate DES benchmark results against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_des.py -q \
        --benchmark-json results.json
    python scripts/check_bench_regression.py results.json            # absolute
    python scripts/check_bench_regression.py results.json --mode relative
    python scripts/check_bench_regression.py results.json --update   # re-baseline

Two comparison modes against ``BENCH_DES.json``:

``absolute``
    Each benchmark's min time must stay within ``tolerance`` of the
    recorded min.  Meaningful only on the machine that generated the
    baseline (use it locally when hunting a regression).

``relative``
    Each benchmark's min time is first normalized to the timeout-chain
    floor, and the *ratio* is compared.  Machine speed cancels out, so
    this is what CI gates on: it catches one kernel path eroding
    relative to the others (e.g. holds losing their edge over timeouts)
    without flaking on runner speed variance.

``--update`` rewrites the ``baseline`` section (and the tolerance
metadata if ``--tolerance`` was given) from the results file, keeping
the history section intact.  Exit status: 0 = within tolerance,
1 = regression, 2 = usage/data error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_DES.json"


def load_baseline(path: Path) -> dict:
    """Load and structurally validate the committed baseline file.

    Raises ``ValueError`` with an actionable message for every way the
    file can be unusable (missing, unparsable, or lacking the ``meta`` /
    ``baseline`` sections), so ``main`` can report it without a
    traceback.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(
            f"cannot read baseline {path}: {exc}; run the benchmarks and "
            f"re-create it with --update"
        ) from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"baseline {path} must be a JSON object")
    for section in ("meta", "baseline"):
        if not isinstance(data.get(section), dict):
            raise ValueError(
                f"baseline {path} is missing its {section!r} section; "
                f"re-create it with --update"
            )
    return data


def load_results(path: Path) -> dict:
    """Map benchmark name -> min seconds from a --benchmark-json file."""
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read results {path}: {exc}") from exc
    except ValueError as exc:
        raise ValueError(f"results {path} is not valid JSON: {exc}") from exc
    out = {}
    try:
        for bench in data.get("benchmarks", []):
            out[bench["name"]] = float(bench["stats"]["min"])
    except (TypeError, KeyError, AttributeError) as exc:
        raise ValueError(
            f"results {path} is not pytest --benchmark-json output: "
            f"bad benchmark entry ({exc!r})"
        ) from exc
    if not out:
        raise ValueError(f"no benchmarks found in {path}")
    return out


def check(
    results: dict,
    baseline: dict,
    mode: str,
    tolerance: float,
) -> list:
    """Return a list of (name, measured, allowed, detail) regressions."""
    normalize_to = baseline["meta"].get("normalize_to")
    entries = baseline["baseline"]
    regressions = []

    floor = None
    if mode == "relative":
        if normalize_to not in results:
            raise ValueError(
                f"relative mode needs the {normalize_to!r} benchmark in the results"
            )
        floor = results[normalize_to]

    for name, entry in entries.items():
        if name not in results:
            print(f"  skip {name}: not in results file")
            continue
        measured = results[name]
        if mode == "relative":
            if name == normalize_to:
                continue  # the floor is 1.0 by construction
            measured_ratio = measured / floor
            allowed = entry["ratio"] * (1.0 + tolerance)
            ok = measured_ratio <= allowed
            detail = (
                f"ratio {measured_ratio:.3f} vs baseline {entry['ratio']:.3f} "
                f"(allowed {allowed:.3f})"
            )
            value = measured_ratio
        else:
            allowed = entry["min"] * (1.0 + tolerance)
            ok = measured <= allowed
            detail = (
                f"min {measured:.5f}s vs baseline {entry['min']:.5f}s "
                f"(allowed {allowed:.5f}s)"
            )
            value = measured
        status = "ok  " if ok else "FAIL"
        print(f"  {status} {name}: {detail}")
        if not ok:
            regressions.append((name, value, allowed, detail))
    return regressions


def update_baseline(baseline_path: Path, baseline: dict, results: dict, tolerance) -> None:
    normalize_to = baseline["meta"].get("normalize_to")
    floor = results.get(normalize_to)
    new = {}
    for name, measured in sorted(results.items()):
        ratio = measured / floor if floor else 1.0
        new[name] = {"min": round(measured, 5), "ratio": round(ratio, 3)}
    baseline["baseline"] = new
    if tolerance is not None:
        baseline["meta"]["tolerance"] = tolerance
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline updated: {baseline_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest --benchmark-json output")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="baseline JSON file"
    )
    parser.add_argument(
        "--mode",
        choices=("absolute", "relative"),
        default="absolute",
        help="compare raw seconds (absolute) or floor-normalized ratios (relative)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression (default: baseline meta, 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline section from the results instead of checking",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_baseline(args.baseline)
        results = load_results(args.results)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update:
        update_baseline(args.baseline, baseline, results, args.tolerance)
        return 0

    try:
        tolerance = (
            args.tolerance
            if args.tolerance is not None
            else float(baseline["meta"].get("tolerance", 0.25))
        )
    except (TypeError, ValueError):
        print(
            f"error: baseline {args.baseline} has a non-numeric "
            f"meta.tolerance: {baseline['meta'].get('tolerance')!r}",
            file=sys.stderr,
        )
        return 2
    print(f"checking {len(results)} benchmarks ({args.mode}, tolerance {tolerance:.0%})")
    try:
        regressions = check(results, baseline, args.mode, tolerance)
    except (KeyError, TypeError, ValueError) as exc:
        print(
            f"error: baseline {args.baseline} and results "
            f"{args.results} do not line up: {exc!r}; re-create the "
            f"baseline with --update",
            file=sys.stderr,
        )
        return 2
    if regressions:
        print(f"{len(regressions)} benchmark(s) regressed beyond {tolerance:.0%}:")
        for name, value, allowed, detail in regressions:
            over = (value / allowed - 1.0) * 100.0 if allowed else float("inf")
            print(f"  {name}: {over:+.1f}% over the allowed bound ({detail})")
        return 1
    print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
