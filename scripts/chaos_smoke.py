#!/usr/bin/env python
"""Chaos smoke: injected worker kills + cache corruption + resume.

End-to-end proof of the resilience layer (`repro.experiments.resilience`)
against the chaos harness (`repro.experiments.chaos`), suitable for CI:

1. **Reference** — a 16-cell sweep on a plain serial engine, no cache:
   the ground truth every resilient run must reproduce bit-identically.
2. **Chaos sweep** — the same 16 cells on a 4-worker resilient engine
   with 3 injected worker SIGKILLs and 1 corrupted on-disk cache entry.
   The run must complete via retries/quarantine with identical results.
3. **Interrupted sweep + resume** — the first 10 cells are journaled,
   then the full sweep resumes from the journal: the remaining 6 cells
   (and only those) are simulated, and the results are identical.

Exit status 0 = all phases passed, 1 = any check failed.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.chaos import (
    ChaosPlan,
    chaos_key,
    corrupt_cache_entry,
    install_chaos,
)
from repro.experiments.engine import (
    CellCache,
    ExperimentEngine,
    config_fingerprint,
    results_equal,
)
from repro.experiments.resilience import ResilientEngine, RetryPolicy
from repro.rocc.config import SimulationConfig

CELLS = 16
KILLS = 3
RESUME_PREFIX = 10

_failures = []


def check(ok: bool, what: str) -> None:
    print(f"  {'ok  ' if ok else 'FAIL'} {what}")
    if not ok:
        _failures.append(what)


def make_cells():
    base = SimulationConfig(nodes=2, duration=2e5)
    return [base.with_(replication=i) for i in range(CELLS)]


def main() -> int:
    cells = make_cells()

    print(f"[1/3] reference sweep ({CELLS} cells, serial, no cache)")
    t0 = time.time()
    with ExperimentEngine(workers=1, cache=CellCache(enabled=False)) as ref:
        reference = ref.run_cells(cells)
    print(f"  done in {time.time() - t0:.1f}s")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp = Path(tmp)

        print(f"[2/3] chaos sweep ({KILLS} worker kills, 1 corrupt cache entry)")
        cache = CellCache(root=tmp / "cache", enabled=True)
        # Pre-warm one entry, then damage it on disk: the sweep must
        # quarantine it and recompute rather than serve garbage.
        with ExperimentEngine(workers=1, cache=cache) as warm:
            warm.run_cells([cells[5]])
        corrupt_cache_entry(
            cache, config_fingerprint(cells[5], False), mode="truncate"
        )
        plan = ChaosPlan(
            state_dir=str(tmp / "chaos-state"),
            kill_once=tuple(chaos_key(c) for c in cells[:KILLS]),
            parent_pid=os.getpid(),
        )
        t0 = time.time()
        with ResilientEngine(
            workers=4,
            cache=cache,
            retry=RetryPolicy(max_attempts=3),
            degrade_after=KILLS + 1,
        ) as engine:
            install_chaos(engine, plan)
            chaotic = engine.run_cells(cells)
        stats = engine.stats
        print(
            f"  done in {time.time() - t0:.1f}s: {stats.summary()}"
        )
        check(
            all(results_equal(a, b) for a, b in zip(reference, chaotic)),
            f"all {CELLS} results identical to the reference",
        )
        check(not engine.failure_report.failures, "no cells lost")
        check(
            stats.retries >= KILLS,
            f"kills were retried (retries={stats.retries})",
        )
        check(
            stats.pool_resets >= 1,
            f"pool was reset after worker death (resets={stats.pool_resets})",
        )
        check(
            cache.corrupt_entries == 1,
            f"corrupt cache entry quarantined (corrupt={cache.corrupt_entries})",
        )
        check(
            any(cache.quarantine_dir.iterdir())
            if cache.quarantine_dir.exists() else False,
            "quarantine directory holds the damaged entry",
        )

        print(f"[3/3] interrupted sweep + journal resume")
        journal = tmp / "run.jsonl"
        with ResilientEngine(
            workers=2, cache=CellCache(enabled=False), journal=journal
        ) as first:
            first.run_cells(cells[:RESUME_PREFIX])
        interrupted_runs = first.stats.cells_run
        with ResilientEngine(
            workers=2, cache=CellCache(enabled=False), journal=journal
        ) as second:
            resumed = second.run_cells(cells)
        remainder = CELLS - RESUME_PREFIX
        check(
            interrupted_runs == RESUME_PREFIX,
            f"interrupted run simulated {RESUME_PREFIX} cells "
            f"(ran {interrupted_runs})",
        )
        check(
            second.stats.cells_resumed == RESUME_PREFIX,
            f"resume served {RESUME_PREFIX} cells from the journal "
            f"(served {second.stats.cells_resumed})",
        )
        check(
            second.stats.cells_run == remainder,
            f"resume simulated only the {remainder}-cell remainder "
            f"(ran {second.stats.cells_run})",
        )
        check(
            all(results_equal(a, b) for a, b in zip(reference, resumed)),
            "resumed results identical to the reference",
        )

    if _failures:
        print(f"chaos smoke FAILED: {len(_failures)} check(s)", file=sys.stderr)
        return 1
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
