#!/usr/bin/env python
"""Planner smoke: a planned NOW sweep must save real work, honestly.

End-to-end proof of the hybrid analytic–simulation planner
(`repro.planner`), suitable for CI:

1. **Planned NOW sweep** — the quick 2^4 NOW factorial design runs
   under the default planner.  At least 30 % of the cells must be
   pruned to analytic surrogates, the calibration gate must pass, and
   the total simulated cell-replications must stay under the fixed-r
   baseline.
2. **Honesty labelling** — every pruned cell's reported value must be
   tagged as a surrogate; every simulated cell's tag must carry its
   replication count.
3. **Bit-identity** — the ``differential.planner`` check re-runs a
   small design planned and unplanned and diffs every overlapping
   replication field by field; any difference fails.

Exit status 0 = all phases passed, 1 = any check failed.

Usage::

    PYTHONPATH=src python scripts/planner_smoke.py
"""

from __future__ import annotations

import sys
import time

from repro.experiments import now_exp
from repro.experiments.engine import CellCache, ExperimentEngine
from repro.planner import run_planned
from repro.verify.cli import _differential_config
from repro.verify.differential import check_planner

MIN_PRUNED_FRACTION = 0.30

_failures = []


def check(ok: bool, what: str) -> None:
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {what}")
    if not ok:
        _failures.append(what)


def main() -> int:
    print("== phase 1: planned quick NOW sweep ==")
    t0 = time.time()
    spec = now_exp.design_spec(quick=True)
    with ExperimentEngine(workers=1, cache=CellCache(enabled=False)) as e:
        plan = run_planned(
            spec.design, spec.make, repetitions=spec.repetitions, engine=e
        )
    print(f"  {plan.summary()} ({time.time() - t0:.1f}s)")
    n_cells = spec.design.n_runs
    check(
        plan.cells_pruned >= MIN_PRUNED_FRACTION * n_cells,
        f"pruned {plan.cells_pruned}/{n_cells} cells "
        f"(need >= {MIN_PRUNED_FRACTION:.0%})",
    )
    check(not plan.calibration_failed, "calibration gate passed")
    check(
        plan.replications_used < plan.baseline_replications,
        f"simulated {plan.replications_used}/"
        f"{plan.baseline_replications} baseline cell-replications",
    )

    print("== phase 2: honesty labelling ==")
    surrogate_tags = [
        c.tag for c in plan.cells if c.source == "surrogate"
    ]
    simulated_tags = [
        c.tag for c in plan.cells if c.source == "simulated"
    ]
    check(
        all("surrogate" in t for t in surrogate_tags),
        "every pruned cell tagged as surrogate",
    )
    check(
        all("reps" in t for t in simulated_tags),
        "every simulated cell tagged with its replication count",
    )

    print("== phase 3: differential.planner bit-identity ==")
    t0 = time.time()
    violations = check_planner(_differential_config(quick=True, seed=0))
    for v in violations:
        print(f"  violation: {v}")
    check(
        not violations,
        f"planned == unplanned on every overlapping replication "
        f"({time.time() - t0:.1f}s)",
    )

    if _failures:
        print(f"\n{len(_failures)} check(s) FAILED:")
        for f in _failures:
            print(f"  - {f}")
        return 1
    print("\nall planner smoke checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
