"""Benchmarks regenerating the SMP simulation artifacts: Table 5,
Figures 20–24."""

from repro.experiments import run


def test_table5(run_once):
    """Table 5: the 2^4·r SMP factorial."""
    table = run_once(run, "table5", quick=True)
    assert len(table.rows) == 16
    assert all(v > 0 for v in table.column("is_cpu_s_per_node"))


def test_figure20(run_once):
    """Figure 20: node count among the dominant factors for IS CPU."""
    fig = run_once(run, "figure20", quick=True)
    table = fig.find("IS CPU time")
    rows = dict(zip(table.column("effect"), table.column("percent")))
    top3 = sorted(rows, key=rows.get, reverse=True)[:3]
    assert "A" in top3  # number of nodes matters (paper: most important)
    lat = fig.find("monitoring latency")
    lrows = dict(zip(lat.column("effect"), lat.column("percent")))
    ltop = sorted(lrows, key=lrows.get, reverse=True)[:3]
    assert "C" in ltop  # forwarding policy drives latency


def test_figure21(run_once):
    """Figure 21: CF needs more daemons at scale; BF does not."""
    fig = run_once(run, "figure21", quick=True)
    cf = fig.find("CF: throughput per daemon")
    # At the largest CPU count, four daemons beat one in total.
    one = cf.series["1 Pd"][-1] * 1
    four = cf.series["4 Pds"][-1] * 4
    assert four > 1.5 * one
    bf = fig.find("BF (batch 32): throughput per daemon")
    # Under BF a single daemon tracks demand at 16 CPUs (= 400/s).
    idx16 = bf.x.index(16.0)
    assert bf.series["1 Pd"][idx16] > 330.0


def test_figure22(run_once):
    """Figure 22: SMP metrics vs node count, CF vs BF.

    Raw IS CPU time can invert when the starved CF daemon delivers less
    work, so the comparison uses the throughput-normalized panel: BF
    spends less IS CPU per delivered sample everywhere.
    """
    fig = run_once(run, "figure22", quick=True)
    cf = fig.find("(CF) IS CPU per delivered sample")
    bf = fig.find("(BF) IS CPU per delivered sample")
    for key in cf.series:
        for c, b in zip(cf.series[key], bf.series[key]):
            assert b < c


def test_figure23(run_once):
    """Figure 23: overhead falls with the sampling period."""
    fig = run_once(run, "figure23", quick=True)
    panel = fig.find("(CF) IS CPU utilization/node")
    for ys in panel.series.values():
        assert ys[0] > ys[-1]


def test_figure24(run_once):
    """Figure 24: overhead grows with the application-process count
    while the IS keeps up; once the CF daemon saturates, the
    throughput-normalized comparison still favours BF."""
    fig = run_once(run, "figure24", quick=True)
    panel = fig.find("(BF) IS CPU utilization/node")
    for ys in panel.series.values():
        assert ys[1] > ys[0]  # more apps -> more IS work (pre-saturation)
    cf = fig.find("(CF) IS CPU per delivered sample")
    bf = fig.find("(BF) IS CPU per delivered sample")
    for key in cf.series:
        assert bf.series[key][-1] < cf.series[key][-1]
