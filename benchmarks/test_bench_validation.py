"""Benchmarks regenerating the Section-5 validation artifacts:
Figure 30 + Table 7, Figure 31 + Table 8."""

from repro.experiments import run


def test_figure30(run_once):
    """Figure 30: >60 % Pd and ~80 % main overhead reduction under BF."""
    fig = run_once(run, "figure30", quick=True)
    summary = fig.find("overhead reduction")
    for pd_red in summary.column("pd_reduction_pct"):
        assert pd_red > 60.0
    for main_red in summary.column("main_reduction_pct"):
        assert 70.0 < main_red < 90.0
    # Table 7: policy and period together explain nearly everything.
    t7 = fig.find("Table 7: variation explained for Pd CPU time")
    rows = dict(zip(t7.column("effect"), t7.column("percent")))
    assert rows["A"] + rows["B"] + rows["AB"] > 90.0


def test_figure31(run_once):
    """Figure 31 / Table 8: the BF gain is application-independent."""
    fig = run_once(run, "figure31", quick=True)
    t8 = fig.find("Table 8: variation explained for Pd")
    rows = dict(zip(t8.column("effect"), t8.column("percent")))
    assert rows["A"] > 90.0  # policy
    assert rows["B"] < 5.0  # application program (paper: ~0.3 %)
    pca = fig.find("PCA cross-check")
    assert pca.column("explained_variance_ratio")[0] > 0.5
