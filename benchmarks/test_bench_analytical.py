"""Benchmarks regenerating the Section-3 analytic figures: 9, 10, 12–15."""

from repro.experiments import run


def test_figure9(run_once):
    """Figure 9: analytic NOW vs nodes and sampling period."""
    fig = run_once(run, "figure9", quick=True)
    lat = fig.find("(b) vs sampling period, n=8 — Monitoring latency")
    # Latency near 3.4e-4 s at T = 40 ms for CF (paper's value).
    idx = lat.x.index(32.0)
    assert 2e-4 < lat.series["CF"][idx] < 5e-4


def test_figure10(run_once):
    """Figure 10: analytic NOW vs batch size — utilization ∝ 1/b."""
    fig = run_once(run, "figure10", quick=True)
    panel = fig.find("Pd CPU utilization/node")
    ys = panel.series["T=40ms"]
    assert ys[0] / ys[-1] == 128.0 / 1.0


def test_figure12(run_once):
    """Figure 12: analytic SMP vs period with 1–4 daemons."""
    fig = run_once(run, "figure12", quick=True)
    panel = fig.find("(CF) IS CPU utilization/node")
    # More daemons -> higher IS utilization under the §3.2 λ definition.
    assert panel.series["4 Pds"][0] > panel.series["1 Pd"][0]


def test_figure13(run_once):
    """Figure 13: analytic SMP vs application processes."""
    fig = run_once(run, "figure13", quick=True)
    panel = fig.find("(CF) IS CPU utilization/node")
    ys = panel.series["1 Pd"]
    assert all(a <= b for a, b in zip(ys, ys[1:]))  # grows with apps


def test_figure14(run_once):
    """Figure 14: analytic MPP vs period, direct vs tree."""
    fig = run_once(run, "figure14", quick=True)
    panel = fig.find("Pd CPU utilization/node")
    assert all(
        t > d for d, t in zip(panel.series["direct"], panel.series["tree"])
    )


def test_figure15(run_once):
    """Figure 15: analytic MPP vs node count, direct vs tree."""
    fig = run_once(run, "figure15", quick=True)
    panel = fig.find("Monitoring latency")
    # Latency under tree includes merge demand: strictly higher.
    assert all(
        t > d for d, t in zip(panel.series["direct"], panel.series["tree"])
    )
