"""Benchmarks regenerating the NOW simulation artifacts: Table 4,
Figures 16–19."""

from repro.experiments import run


def test_table4(run_once):
    """Table 4: the 2^4·r NOW factorial."""
    table = run_once(run, "table4", quick=True)
    assert len(table.rows) == 16
    # CF rows cost more Pd CPU than their BF counterparts (same period,
    # nodes, app type).
    cells = {
        (r[0], r[1], r[2], r[3]): r[4] for r in table.rows
    }
    for (period, nodes, batch, net), cpu in cells.items():
        if batch == 1:
            bf = next(
                v for k, v in cells.items()
                if k[0] == period and k[1] == nodes and k[3] == net and k[2] > 1
            )
            assert bf < cpu


def test_figure16(run_once):
    """Figure 16: sampling period dominates Pd CPU-time variation."""
    fig = run_once(run, "figure16", quick=True)
    table = fig.find("Pd CPU time")
    rows = dict(zip(table.column("effect"), table.column("percent")))
    assert max(rows, key=rows.get) == "B"


def test_figure17(run_once):
    """Figure 17: local CPU time and throughput, CF vs BF."""
    fig = run_once(run, "figure17", quick=True)
    cpu = fig.find("(a) Pd CPU time")
    assert all(
        b < c for c, b in zip(cpu.series["CF"], cpu.series["BF"])
    )
    # Overhead falls as the sampling period grows.
    assert cpu.series["CF"][0] > cpu.series["CF"][-1]
    # (b): "the impact of the policy is more profound with respect to
    # the data forwarding throughput" (§4.2.2) — with many application
    # processes on a node, BF sustains several times CF's throughput
    # (our strict-RR scheduler starves the per-sample CF daemon; see
    # EXPERIMENTS.md figure17 for the divergence note on CPU time).
    thr_b = fig.find("(b) forwarding throughput")
    assert thr_b.series["BF"][-1] > 3 * thr_b.series["CF"][-1]


def test_figure18(run_once):
    """Figure 18: global metrics vs node count and period."""
    fig = run_once(run, "figure18", quick=True)
    pd = fig.find("(a) T=40ms — Pd CPU utilization/node")
    # Per-node overhead roughly flat in node count; BF below CF.
    assert max(pd.series["CF"]) < 2.5 * min(pd.series["CF"])
    assert all(b < c for c, b in zip(pd.series["CF"], pd.series["BF"]))
    app = fig.find("(a) T=40ms — Appl. CPU utilization")
    assert "uninstrumented" in app.series


def test_figure19(run_once):
    """Figure 19: the batch-size knee."""
    fig = run_once(run, "figure19", quick=True)
    panel = fig.find("Pd CPU utilization/node")
    for ys in panel.series.values():
        assert ys[1] < 0.8 * ys[0]  # sharp initial drop
        assert abs(ys[-1] - ys[-2]) < 0.15 * ys[0]  # plateau
