"""Scale benchmarks: events/sec and peak RSS as cells grow.

The calendar-queue scheduler and the streaming statistics layer exist
so that one *large* cell stays fast and memory-flat; these benchmarks
measure exactly that promise at 64, 256, and 1024 NOW nodes.

Peak RSS (``ru_maxrss``) is monotonic over a process's lifetime, so
each node count runs in its own subprocess and reports a JSON record;
running them in-process would let the 64-node run inherit the 1024-node
high-water mark (or vice versa).

Committed baseline: ``BENCH_SCALE.json``, gated in CI by
``scripts/check_bench_regression.py --mode relative`` (wall times
normalized to the 64-node run, so runner speed cancels out while
superlinear scaling — the regression these benchmarks exist to catch —
does not).  Set ``REPRO_SCALE_RESULTS=<path>`` to emit the results in
``--benchmark-json``-compatible form for that gate::

    PYTHONPATH=src REPRO_SCALE_RESULTS=scale_results.json \
        python -m pytest benchmarks/test_bench_scale.py -q
    python scripts/check_bench_regression.py scale_results.json \
        --baseline BENCH_SCALE.json --mode relative
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

NODE_COUNTS = (64, 256, 1024)
DURATION = 1_000_000.0  # one simulated second
SEED = 1

_SRC = Path(__file__).resolve().parent.parent / "src"

# Self-contained probe: run one NOW cell, report wall time, kernel event
# count (scheduler dequeues), and the process's peak RSS as one JSON
# line on stdout.  argv: nodes duration seed.
_PROBE = r"""
import json, resource, sys, time
from repro.rocc.config import Architecture, SimulationConfig
from repro.rocc.system import ParadynISSystem

nodes, duration, seed = int(sys.argv[1]), float(sys.argv[2]), int(sys.argv[3])
system = ParadynISSystem(SimulationConfig(
    architecture=Architecture.NOW, nodes=nodes, duration=duration, seed=seed,
))
t0 = time.perf_counter()
results = system.run()
wall = time.perf_counter() - t0
stats = system.env.scheduler.stats()
maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss  # KiB on Linux
print(json.dumps({
    "nodes": nodes,
    "wall_seconds": wall,
    "events": stats["dequeues"],
    "events_per_second": stats["dequeues"] / wall if wall > 0 else 0.0,
    "queue_impl": stats["impl"],
    "maxrss_kb": maxrss,
    "samples_received": results.samples_received,
}))
"""


def _run_probe(nodes: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("PYTHONHASHSEED", "0")
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE, str(nodes), str(DURATION), str(SEED)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, (
        f"{nodes}-node probe failed:\n{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def scale_probes():
    """One subprocess run per node count, shared by every test below."""
    probes = {n: _run_probe(n) for n in NODE_COUNTS}
    out = os.environ.get("REPRO_SCALE_RESULTS")
    if out:
        payload = {"benchmarks": [
            {"name": f"scale_now_{n}n", "stats": {"min": p["wall_seconds"]}}
            for n, p in probes.items()
        ]}
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return probes


@pytest.mark.parametrize("nodes", NODE_COUNTS)
def test_scale_cell_completes(scale_probes, nodes):
    """Each cell runs to the full horizon and does real work."""
    probe = scale_probes[nodes]
    assert probe["events"] > 0
    assert probe["samples_received"] > 0
    assert probe["events_per_second"] > 0


def test_scale_throughput_does_not_collapse(scale_probes):
    """Events/sec at 1024 nodes stays within 3x of the 64-node rate.

    An O(1) scheduler keeps per-event cost roughly flat as the schedule
    deepens; a heap regression shows up here as a widening gap long
    before the absolute gate in BENCH_SCALE.json trips.
    """
    small = scale_probes[64]["events_per_second"]
    large = scale_probes[1024]["events_per_second"]
    assert large > small / 3.0, (
        f"events/sec collapsed: {small:,.0f} at 64n -> {large:,.0f} at 1024n"
    )


def test_scale_memory_is_flat(scale_probes):
    """Peak RSS at 1024 nodes stays within 1.9x of 256 nodes.

    The streaming statistics layer (P^2 quantiles + reservoir, capped
    tallies, capped raw latency series) makes per-*sample* memory O(1),
    and variate-stream buffers grow geometrically with consumption
    instead of prefilling full blocks, so per-node memory is dominated
    by the irreducible object graph: ~13 independent PCG64 streams per
    node (the common-random-numbers design) at ~1.5 KiB each, plus the
    daemon/application/CPU/pipe entities.  Measured on the reference
    machine: 47 MiB at 256n vs 78 MiB at 1024n (1.66x); before the
    buffer-growth fix the same sweep was 161 -> 530 MiB (3.29x).  The
    1.9x bound holds that per-node slope: an eager per-stream prefill
    or an unbounded per-sample buffer reappearing anywhere trips it
    immediately.
    """
    rss_256 = scale_probes[256]["maxrss_kb"]
    rss_1024 = scale_probes[1024]["maxrss_kb"]
    assert rss_1024 <= rss_256 * 1.9, (
        f"peak RSS grew {rss_1024 / rss_256:.2f}x from 256n "
        f"({rss_256} KiB) to 1024n ({rss_1024} KiB)"
    )
