"""Benchmarks regenerating the MPP simulation artifacts: Table 6,
Figures 25–28."""

from repro.experiments import run


def test_table6(run_once):
    """Table 6: the 2^4·r MPP factorial (direct vs tree)."""
    table = run_once(run, "table6", quick=True)
    assert len(table.rows) == 16
    assert set(table.column("forwarding")) == {"direct", "tree"}


def test_figure25(run_once):
    """Figure 25: sampling period then policy dominate Pd CPU time."""
    fig = run_once(run, "figure25", quick=True)
    table = fig.find("Pd CPU time")
    rows = dict(zip(table.column("effect"), table.column("percent")))
    ordered = sorted(rows, key=rows.get, reverse=True)
    assert ordered[0] == "B"
    assert "C" in ordered[:3]


def test_figure26(run_once):
    """Figure 26: overhead/latency trade-off at scale."""
    fig = run_once(run, "figure26", quick=True)
    pd = fig.find("Pd CPU utilization/node")
    assert all(
        b < c for c, b in zip(pd.series["CF direct"], pd.series["BF direct"])
    )
    lat = fig.find("Monitoring latency")
    # BF total latency far above CF (batch accumulation): the trade-off.
    assert all(
        b > c for c, b in zip(lat.series["CF direct"], lat.series["BF direct"])
    )
    # Tree vs direct does not change latency materially (§4.4.2).
    for t, d in zip(lat.series["BF tree"], lat.series["BF direct"]):
        assert abs(t - d) < 0.3 * d + 1e-9


def test_figure27(run_once):
    """Figure 27: tree forwarding costs daemon CPU, latency unchanged."""
    fig = run_once(run, "figure27", quick=True)
    pd = fig.find("Pd CPU utilization/node")
    assert all(
        t > d * 0.99 for d, t in zip(pd.series["direct"], pd.series["tree"])
    )
    # With per-sample collection costs included, the merge work adds a
    # modest (not 2x) increment per node at batch 32 — the analytic
    # Figure 15 benchmark covers the collection-free 2x limit.
    assert pd.series["tree"][-1] > 1.03 * pd.series["direct"][-1]


def test_figure28(run_once):
    """Figure 28: frequent barriers idle the app, raising the daemon's
    share of busy CPU."""
    fig = run_once(run, "figure28", quick=True)
    app = fig.find("Appl. CPU utilization/node")
    ys = app.series["BF"]
    assert ys[0] < ys[-1]  # more frequent barriers -> less app CPU
    share = fig.find("Pd share of busy CPU time")
    assert share.series["BF"][0] > share.series["BF"][-1]
