"""Benchmarks regenerating the workload-characterization artifacts:
Table 1, Figure 8, Table 2, Table 3 (DESIGN.md per-experiment index)."""

import pytest

from repro.experiments import run


def test_table1(run_once):
    """Table 1: occupancy statistics of the synthetic pvmbt trace."""
    table = run_once(run, "table1", quick=True)
    rows = dict(zip(table.column("process"), table.column("cpu_mean")))
    assert rows["application"] == pytest.approx(2213.0, rel=0.15)
    assert rows["pvm_daemon"] == pytest.approx(294.0, rel=0.25)


def test_figure8(run_once):
    """Figure 8: fits + Q-Q for application CPU/network requests."""
    fig = run_once(run, "figure8", quick=True)
    cpu_fits = fig.find("cpu requests: candidate fits")
    best = cpu_fits.rows[0]  # sorted by log-likelihood
    assert best[0] == "lognormal"
    net_fits = fig.find("network requests: candidate fits")
    families = net_fits.column("family")
    assert "exponential" in families[:2]  # exp wins or ties weibull


def test_table2(run_once):
    """Table 2: fitted model parameters per process class."""
    table = run_once(run, "table2", quick=True)
    fam = {
        (p, r): f
        for p, r, f in zip(
            table.column("process"), table.column("resource"),
            table.column("family"),
        )
    }
    assert fam[("application", "cpu")] == "lognormal"
    assert fam[("paradyn_daemon", "cpu")] == "exponential"


def test_table3(run_once):
    """Table 3: measured vs simulated CPU times agree."""
    table = run_once(run, "table3", quick=True)
    app = table.column("app_cpu_s")
    assert app[1] == pytest.approx(app[0], rel=0.15)
