"""Benchmark-suite configuration.

Each paper table/figure has one benchmark that regenerates it in quick
mode (see DESIGN.md's per-experiment index).  Experiment artifacts are
heavyweight, so every benchmark runs its payload exactly once via
``benchmark.pedantic`` — the timing is the cost of reproducing the
artifact, and the assertions inside each benchmark verify the paper's
shape claims on the regenerated data.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
