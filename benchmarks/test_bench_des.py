"""Kernel benchmarks: raw event throughput of the DES substrate.

These are the ablation baseline for DESIGN.md §5.1 — they quantify how
expensive the generator-based kernel is per event, which bounds every
ROCC simulation above it.
"""

from repro.des import Environment, Resource, Store
from repro.rocc.config import Architecture, ForwardingTopology, SimulationConfig
from repro.rocc.system import simulate


def _timeout_chain(n_events: int) -> float:
    env = Environment()

    def clock(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(clock(env))
    env.run()
    return env.now


def test_timeout_event_throughput(benchmark):
    """Pure timeout scheduling: the kernel's floor cost per event."""
    result = benchmark(_timeout_chain, 20_000)
    assert result == 20_000.0


def _hold_chain(n_events: int) -> float:
    env = Environment()

    def clock(env):
        hold = env.hold
        for _ in range(n_events):
            yield hold(1.0)

    env.process(clock(env))
    env.run()
    return env.now


def test_hold_event_throughput(benchmark):
    """Allocation-free process sleeps: the fast path the ROCC model
    loops (CPU quanta, sampling ticks, network serialization) run on.
    Equivalent workload to ``_timeout_chain``; the gap between the two
    is the saving from ``env.hold``."""
    result = benchmark(_hold_chain, 20_000)
    assert result == 20_000.0


def _resource_churn(n_ops: int) -> int:
    env = Environment()
    res = Resource(env, capacity=2)
    done = [0]

    def user(env):
        for _ in range(n_ops // 10):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)
            done[0] += 1

    for _ in range(10):
        env.process(user(env))
    env.run()
    return done[0]


def test_resource_acquire_release_throughput(benchmark):
    """Request/hold/release cycles across ten competing processes."""
    result = benchmark(_resource_churn, 10_000)
    assert result == 10_000


def _store_churn(n_items: int) -> int:
    env = Environment()
    store = Store(env, capacity=64)
    got = [0]

    def producer(env):
        for i in range(n_items):
            yield store.put(i)

    def consumer(env):
        for _ in range(n_items):
            yield store.get()
            got[0] += 1

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return got[0]


def test_store_put_get_throughput(benchmark):
    """Bounded-buffer handoffs (the pipe hot path)."""
    result = benchmark(_store_churn, 10_000)
    assert result == 10_000


def _interleaved_model(n_processes: int, cycles: int) -> float:
    """A miniature ROCC-like node: processes alternating two resources."""
    env = Environment()
    cpu = Resource(env, capacity=1)
    net = Resource(env, capacity=1)

    def proc(env):
        for _ in range(cycles):
            with cpu.request() as r:
                yield r
                yield env.timeout(3.0)
            with net.request() as r:
                yield r
                yield env.timeout(1.0)

    for _ in range(n_processes):
        env.process(proc(env))
    env.run()
    return env.now


def test_multiprocess_contention_throughput(benchmark):
    result = benchmark(_interleaved_model, 20, 100)
    assert result >= 20 * 100 * 3.0  # serial bound on the CPU resource


def _mpp_tree_cell() -> int:
    """One second of a 64-node MPP tree cell: the single-large-cell
    workload the ROADMAP's scale north-star cares about."""
    results = simulate(SimulationConfig(
        architecture=Architecture.MPP,
        nodes=64,
        forwarding=ForwardingTopology.TREE,
        duration=1_000_000.0,
        seed=1,
    ))
    return results.samples_received


def test_mpp_tree_cell_64n(run_once):
    """End-to-end kernel cost of a single large cell (64-node MPP tree).

    This is the headline number for the in-cell hot path: everything —
    scheduler, network transfers, CPU slices, pipes, metrics — sits on
    it.  History in BENCH_DES.json records the pre-calendar-queue heap
    kernel at ~0.94s on the reference machine."""
    received = run_once(_mpp_tree_cell)
    assert received > 0
