"""Ablation benchmarks for the design decisions called out in DESIGN.md §5.

Each compares two model variants and checks both the performance cost
and the behavioural consequence of the choice.
"""

import pytest

from repro.rocc import (
    Architecture,
    DaemonCostModel,
    SimulationConfig,
    simulate,
    simulate_aggregated,
)
from repro.rocc.cpu import ProcessorSharingCPU, RoundRobinCPU
from repro.variates.distributions import Exponential


def _rr_vs_ps(cpu_cls, n_jobs: int = 40, demand: float = 5_000.0) -> float:
    """Mean completion time of identical jobs under RR vs PS."""
    from repro.des import Environment
    from repro.workload import ProcessType

    env = Environment()
    cpu = cpu_cls(env, n_cpus=1, quantum=10_000.0)
    finished = []

    def job(env):
        yield cpu.execute(demand, ProcessType.APPLICATION)
        finished.append(env.now)

    for _ in range(n_jobs):
        env.process(job(env))
    env.run()
    return sum(finished) / len(finished)


def test_rr_vs_ps(run_once):
    """DESIGN.md §5.2: RR-with-quantum vs processor sharing.

    For equal jobs shorter than the quantum, RR serves them serially
    (mean completion = (n+1)/2 · D) while PS finishes everything at
    n · D: same makespan, very different per-job latency profile.
    """
    rr_mean = run_once(_rr_vs_ps, RoundRobinCPU)
    ps_mean = _rr_vs_ps(ProcessorSharingCPU)
    n, d = 40, 5_000.0
    assert rr_mean == pytest.approx((n + 1) / 2 * d, rel=0.01)
    assert ps_mean == pytest.approx(n * d, rel=0.01)


def test_full_vs_aggregate(run_once):
    """DESIGN.md §5.3: the aggregated large-n mode must agree with the
    full simulation on per-node overhead at small n — and be much
    cheaper (its cost is ~O(1) in n rather than O(n))."""
    cfg = SimulationConfig(
        architecture=Architecture.MPP, nodes=12, duration=3_000_000.0,
        sampling_period=20_000.0, batch_size=8, seed=55,
    )
    aggr = run_once(simulate_aggregated, cfg)
    full = simulate(cfg)
    assert aggr.pd_cpu_time_per_node == pytest.approx(
        full.pd_cpu_time_per_node, rel=0.1
    )
    assert aggr.app_cpu_utilization_per_node == pytest.approx(
        full.app_cpu_utilization_per_node, rel=0.05
    )


def test_pipe_capacity(run_once):
    """DESIGN.md §5.4: finite pipes are what block the application at
    small sampling periods; huge pipes make the blocking vanish."""
    base = SimulationConfig(
        architecture=Architecture.SMP, nodes=2, app_processes_per_node=8,
        sampling_period=1_000.0, duration=2_000_000.0, seed=23,
    )
    small = run_once(simulate, base.with_(pipe_capacity=16))
    large = simulate(base.with_(pipe_capacity=100_000))
    assert small.pipe_blocked_puts > 0
    assert large.pipe_blocked_puts == 0
    assert small.app_cpu_time_per_node <= large.app_cpu_time_per_node


def test_batch_flush_timeout(run_once):
    """DESIGN.md §5.5: the BF flush-timeout extension bounds latency for
    slow sample streams at a small overhead cost."""
    base = SimulationConfig(
        nodes=2, sampling_period=40_000.0, batch_size=256,
        duration=4_000_000.0, seed=29,
    )
    no_flush = run_once(simulate, base)
    flush = simulate(base.with_(batch_flush_timeout=200_000.0))
    # Without a flush, 256 x 40 ms batches never complete in 4 s.
    assert no_flush.samples_received == 0
    assert flush.samples_received > 0
    assert flush.monitoring_latency_total < 256 * 40_000.0


def test_adaptive_regulation(run_once):
    """§6 extension: the overhead regulator pulls a ~25 % static overhead
    inside a 1 % budget, and batch-first adaptation retains more samples
    than period backoff."""
    from repro.rocc import ParadynISSystem, RegulatorConfig

    base = SimulationConfig(
        nodes=2, sampling_period=1_000.0, batch_size=1,
        duration=8_000_000.0, seed=44,
    )

    def settled_overhead(reg: RegulatorConfig):
        system = ParadynISSystem(base.with_(adaptive=reg))
        results = system.run()
        tail = [
            d for d in system.regulators[0].decisions if d.time > 4_000_000.0
        ]
        util = sum(d.observed_utilization for d in tail) / len(tail)
        return util, results.samples_received

    util_period, recv_period = run_once(
        settled_overhead, RegulatorConfig(budget=0.01)
    )
    util_batch, recv_batch = settled_overhead(
        RegulatorConfig(budget=0.01, adapt_batch=True, max_batch=64)
    )
    static = simulate(base)
    assert static.pd_cpu_utilization_per_node > 0.15
    assert util_period < 0.015
    assert util_batch < 0.015
    assert recv_batch > 1.5 * recv_period


def test_daemon_cost_split(run_once):
    """The collection/forwarding split governs the BF ceiling: with all
    cost in forwarding, batching approaches a 1/b law; with all cost in
    collection, batching cannot help."""
    base = SimulationConfig(
        nodes=2, sampling_period=10_000.0, duration=2_000_000.0, seed=31,
    )

    def reduction(costs: DaemonCostModel) -> float:
        cf = simulate(base.with_(daemon_costs=costs, batch_size=1))
        bf = simulate(base.with_(daemon_costs=costs, batch_size=32))
        return 1 - bf.pd_cpu_time_per_node / cf.pd_cpu_time_per_node

    all_forward = DaemonCostModel(
        collection_cpu=Exponential(1e-6), forward_cpu=Exponential(267.0)
    )
    all_collect = DaemonCostModel(
        collection_cpu=Exponential(267.0), forward_cpu=Exponential(1e-6)
    )
    r_forward = run_once(reduction, all_forward)
    r_collect = reduction(all_collect)
    assert r_forward > 0.9
    assert abs(r_collect) < 0.1
