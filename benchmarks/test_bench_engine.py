"""Engine microbenchmarks: one sweep, three schedules.

A representative sweep (8 sampling periods × 3 replications = 24 cells)
runs serially, on a 4-worker process pool, and from a fully warm
content-addressed cell cache.  The benchmark clock records each
schedule's cost; the assertions check the engine's contract — metrics
identical to the serial run in every schedule, near-linear speedup when
the host actually has cores to offer, and ≥ 10× from the warm cache.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import (
    CellCache,
    ExperimentEngine,
    results_equal,
    sweep,
)
from repro.rocc import SimulationConfig

_BASE = SimulationConfig(nodes=4, duration=1_500_000.0, seed=11)
_PERIODS_US = [p * 1000.0 for p in (2, 4, 6, 8, 12, 16, 24, 32)]
_REPS = 3
_N_CELLS = len(_PERIODS_US) * _REPS

#: Serial reference shared across the three benchmarks (computed once).
_state = {}


def _run_sweep(engine):
    return sweep(
        _BASE, "sampling_period", _PERIODS_US, repetitions=_REPS, engine=engine
    )


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _serial_reference():
    if "serial" not in _state:
        engine = ExperimentEngine(workers=1, cache=CellCache(enabled=False))
        _state["serial"] = _timed(lambda: _run_sweep(engine))
    return _state["serial"]


def _assert_identical(cells, reference):
    assert len(cells) == len(reference)
    for cell, ref in zip(cells, reference):
        assert len(cell.results) == _REPS
        for r, rr in zip(cell.results, ref.results):
            assert results_equal(r, rr)


def test_bench_engine_sweep_serial(run_once):
    """Baseline: 24 cells inline on one core."""

    def payload():
        engine = ExperimentEngine(workers=1, cache=CellCache(enabled=False))
        out = _timed(lambda: _run_sweep(engine))
        assert engine.stats.cells_run == _N_CELLS
        return out

    _state["serial"] = run_once(payload)
    cells, _ = _state["serial"]
    assert all(len(c.results) == _REPS for c in cells)


def test_bench_engine_sweep_parallel(run_once):
    """The same sweep fanned out over a 4-worker process pool."""
    ref_cells, ref_wall = _serial_reference()

    def payload():
        with ExperimentEngine(workers=4, cache=CellCache(enabled=False)) as eng:
            out = _timed(lambda: _run_sweep(eng))
            assert eng.stats.cells_run == _N_CELLS
            return out

    cells, wall = run_once(payload)
    _assert_identical(cells, ref_cells)
    if (os.cpu_count() or 1) >= 4:
        # Near-linear on 4 real cores; ≥ 2× is the acceptance floor.
        assert ref_wall / wall >= 2.0, (
            f"parallel speedup {ref_wall / wall:.2f}x < 2x "
            f"(serial {ref_wall:.2f}s, parallel {wall:.2f}s)"
        )


def test_bench_engine_sweep_cached_warm(run_once, tmp_path):
    """The same sweep again, every cell served from the cell cache."""
    ref_cells, ref_wall = _serial_reference()
    engine = ExperimentEngine(workers=1, cache=CellCache(tmp_path))
    _run_sweep(engine)  # cold pass populates the cache
    assert engine.stats.cells_run == _N_CELLS

    def payload():
        return _timed(lambda: _run_sweep(engine))

    cells, wall = run_once(payload)
    _assert_identical(cells, ref_cells)
    assert engine.stats.cache_hits == _N_CELLS  # warm pass executed nothing
    assert ref_wall / wall >= 10.0, (
        f"warm-cache speedup {ref_wall / wall:.2f}x < 10x "
        f"(serial {ref_wall:.2f}s, cached {wall:.2f}s)"
    )
